//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire formats use: [`Bytes`]
//! (cheaply cloneable immutable buffer), [`BytesMut`] (growable builder),
//! and the big-endian [`Buf`]/[`BufMut`] cursor traits. Unlike upstream,
//! `Bytes` is backed by `Arc<[u8]>` + a window, which preserves the
//! crucial properties (O(1) clone, slicing without copying, `Buf`
//! consumption by advancing the window).
//!
//! `Serialize`/`Deserialize` (vendored serde) render a `Bytes` as a JSON
//! byte array, matching how upstream serde handles `Vec<u8>`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy sub-range (panics when out of bounds, like upstream).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off the first `at` bytes, leaving the remainder in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.as_slice()
                .iter()
                .map(|&b| serde::Value::UInt(b as u64))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let items = Vec::<u8>::from_value(v)?;
        Ok(Bytes::from(items))
    }
}

/// A growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching the upstream crate's `get_*` defaults.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_i16(&mut self) -> i16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        i16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: narrow the shared window.
        self.split_to(len)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor. All multi-byte writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.inner.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_u16(0x0102);
        b.put_i16(-3);
        b.put_u8(7);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_i16(), -3);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }
}
