//! Offline stand-in for `serde_derive`.
//!
//! The container builds with no crates-io access, so the workspace vendors
//! a miniature serde (see `vendor/serde`): `Serialize`/`Deserialize` are
//! value-based traits (`to_value` / `from_value` over `serde::Value`), and
//! this crate derives them with a hand-rolled token-stream parser — no
//! `syn`/`quote`, only the compiler-provided `proc_macro` API.
//!
//! Supported shapes (everything this workspace uses):
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! Attributes (`#[serde(...)]`, doc comments) are skipped, and generic
//! parameters are rejected with a compile error rather than silently
//! miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: named fields or a tuple arity.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// What the derive input turned out to be.
enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility up to `struct` / `enum`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` and friends
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum in derive input"),
        }
    }
    let kind = tokens[i].to_string();
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    // `where` clauses only occur with generics in this workspace; the next
    // token is the body group (brace) or tuple group (paren).
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(&inner)),
                }
            } else {
                Shape::Enum {
                    name,
                    variants: parse_variants(&inner),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Struct {
            name,
            fields: Fields::Tuple(tuple_arity(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
            name,
            fields: Fields::Unit,
        },
        other => panic!("serde_derive: unexpected token after type name: {other:?}"),
    }
}

/// Count fields in a tuple group: top-level commas + 1, ignoring a
/// trailing comma, tracking `<...>` depth so generic arguments don't split.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 && idx + 1 < tokens.len() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

/// Field names of a `struct { ... }` body, in declaration order.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:`, then skip the type up to a top-level comma.
                debug_assert!(
                    matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
                    "serde_derive: expected `:` after field name"
                );
                let mut angle = 0i32;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in struct body: {other}"),
        }
    }
    fields
}

/// Variants of an `enum { ... }` body.
fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Fields::Tuple(tuple_arity(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        i += 1;
                        Fields::Named(parse_named_fields(&inner))
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional discriminant up to the separating comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push(Variant { name, fields });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

// ----------------------------------------------------------- serialization

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut pushes = String::new();
            for f in names {
                pushes.push_str(&format!(
                    "m.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!("let mut m = ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(m)")
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut pushes = String::new();
            for idx in 0..*n {
                pushes.push_str(&format!(
                    "s.push(::serde::Serialize::to_value(&self.{idx}));\n"
                ));
            }
            format!("let mut s = ::std::vec::Vec::new();\n{pushes}::serde::Value::Seq(s)")
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                     ::std::string::String::from(\"{vn}\"), {inner})]),\n",
                    binds.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binds = fs.join(", ");
                let items: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                     ::std::string::String::from(\"{vn}\"), \
                     ::serde::Value::Map(vec![{}]))]),\n",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

// --------------------------------------------------------- deserialization

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\")?"))
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::expected(\"map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"seq for struct {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"seq of len {n}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Fields::Tuple(1) => payload_arms.push_str(&format!(
                "\"{vn}\" => return ::std::result::Result::Ok(\
                 {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __s = __inner.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"seq for variant {vn}\"))?;\n\
                     if __s.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"seq of len {n}\")); }}\n\
                     return ::std::result::Result::Ok({name}::{vn}({}));\n}}\n",
                    inits.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| format!("{f}: ::serde::__field(__mm, \"{f}\")?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __mm = __inner.as_map().ok_or_else(|| \
                     ::serde::Error::expected(\"map for variant {vn}\"))?;\n\
                     return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n}}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
         match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
         if let ::std::option::Option::Some(__m) = __v.as_map() {{\n\
         if __m.len() == 1 {{\n\
         let (__k, __inner) = &__m[0];\n\
         match __k.as_str() {{\n{payload_arms}_ => {{}}\n}}\n}}\n}}\n\
         ::std::result::Result::Err(::serde::Error::expected(\"enum {name}\"))\n\
         }}\n}}\n"
    )
}
