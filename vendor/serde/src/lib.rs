//! Offline stand-in for `serde`.
//!
//! The build container has no crates-io access, so the workspace vendors a
//! miniature serde in the style of `miniserde`: instead of the visitor
//! machinery, [`Serialize`] lowers a value into a self-describing
//! [`Value`] tree and [`Deserialize`] lifts it back. The vendored
//! `serde_json` (see `vendor/serde_json`) renders and parses that tree.
//!
//! Design constraints inherited from the workspace:
//! * **Determinism** — map serialization sorts non-ordered map keys, so a
//!   fixed seed produces byte-identical JSON across runs (the replay and
//!   serving determinism tests rely on this).
//! * **Field order** — derived structs serialize fields in declaration
//!   order, matching real serde's output shape.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key/value pairs in serialization order.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map lookup by key (None for non-maps and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn expected(what: &str) -> Error {
        Error(format!("expected {what}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// What a derived struct does when the field's key is absent.
    /// `Option` overrides this to produce `None`; everything else errors.
    fn missing() -> Result<Self, Error> {
        Err(Error::expected("a value (field missing)"))
    }
}

/// Derived-code helper: look a field up in a struct map.
pub fn __field<T: Deserialize>(m: &[(String, Value)], key: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("field `{key}`: {}", e.0))),
        None => T::missing().map_err(|_| Error(format!("missing field `{key}`"))),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer"))?;
                <$t>::try_from(i).map_err(|_| Error::expected("integer in range"))
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::expected("unsigned integer in range"))
            }
        }
    )*};
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::expected("array of exact length"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("2-tuple"))?;
        if s.len() != 2 {
            return Err(Error::expected("2-tuple"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("3-tuple"))?;
        if s.len() != 3 {
            return Err(Error::expected("3-tuple"));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("4-tuple"))?;
        if s.len() != 4 {
            return Err(Error::expected("4-tuple"));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
            D::from_value(&s[3])?,
        ))
    }
}

/// Render a key for JSON-object serialization of maps. Non-string keys
/// (e.g. newtype node IDs) become their compact JSON rendering.
fn key_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => format_f64(f),
        other => {
            let mut out = String::new();
            write_compact(&other, &mut out);
            out
        }
    }
}

/// Reconstruct a key value from its JSON-object string form.
fn key_value(s: &str) -> Vec<Value> {
    let mut candidates = Vec::new();
    if let Ok(u) = s.parse::<u64>() {
        candidates.push(Value::UInt(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        candidates.push(Value::Int(i));
    }
    candidates.push(Value::Str(s.to_string()));
    candidates
}

fn map_to_value<'a, K, V, I>(iter: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut entries: Vec<(String, Value)> =
        iter.map(|(k, v)| (key_string(k), v.to_value())).collect();
    if sort {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Value::Map(entries)
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    let m = v.as_map().ok_or_else(|| Error::expected("map"))?;
    m.iter()
        .map(|(ks, vv)| {
            let key = key_value(ks)
                .iter()
                .find_map(|cand| K::from_value(cand).ok())
                .ok_or_else(|| Error(format!("unparseable map key `{ks}`")))?;
            Ok((key, V::from_value(vv)?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted so hash-iteration order never leaks into output bytes.
        map_to_value(self.iter(), true)
    }
}
impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// -------------------------------------------------- compact JSON rendering
// (lives here so map keys can be rendered without depending on serde_json)

/// Format a float the way the vendored serde_json does: `Display`, with a
/// trailing `.0` added to integral values so they read back as floats, and
/// non-finite values rendered as `null` (JSON has no NaN/Inf).
pub fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Escape a string into a JSON string literal (without quotes).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Compact (no-whitespace) JSON rendering of a value.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_f64(*f)),
        Value::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(k, out);
                out.push_str("\":");
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}
