//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! serde's [`Value`] tree.
//!
//! Output is deterministic: struct fields keep declaration order, hash
//! maps are emitted key-sorted (the vendored serde does the sorting), and
//! floats use a fixed `Display`-based rendering. The replay tests compare
//! whole files byte-for-byte and rely on this.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Lower any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Lift a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parse a JSON document and deserialize it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(Error("trailing characters after JSON value".to_string()));
    }
    T::from_value(&v)
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                out.push('"');
                serde::escape_json(k, out);
                out.push_str("\": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => serde::write_compact(other, out),
    }
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        _ => return Err(Error("expected `,` or `]`".to_string())),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        _ => return Err(Error("expected `,` or `}`".to_string())),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected input: {other:?}"))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".to_string()))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                        );
                    }
                    _ => return Err(Error("bad escape".to_string())),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".to_string()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
    }

    #[test]
    fn round_trips_containers() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
    }

    #[test]
    fn pretty_printing_shape() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
