//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark is auto-calibrated to run for
//! roughly `TARGET_RUN_TIME`, then reports the mean per-iteration time
//! (plus derived throughput) on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Roughly how long each benchmark's measured phase runs.
const TARGET_RUN_TIME: Duration = Duration::from_millis(200);

pub use std::hint::black_box;

/// Measured throughput basis for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-measurement timer handle passed to bench closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count that runs ~TARGET_RUN_TIME.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || n >= 1 << 24 {
                break elapsed.as_secs_f64() / n as f64;
            }
            n *= 4;
        };
        let iters =
            ((TARGET_RUN_TIME.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 28);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_s = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn human_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn report(name: &str, mean_s: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: {}", human_time(mean_s));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!(
            "  thrpt: {:.3e} {unit}",
            count / mean_s.max(1e-12)
        ));
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(name, b.mean_s, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            b.mean_s,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_s,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
