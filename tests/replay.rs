//! Replay tests: every layer of the stack must be bit-for-bit
//! reproducible per seed (DESIGN.md decision 1). These tests run the
//! same scenario twice through fresh state and require identical
//! results, including the stochastic (noisy) configurations.

use ofpc_core::scenario::Fig1Scenario;
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_engine::matcher::{MatcherConfig, PatternMatcher};
use ofpc_photonics::SimRng;
use ofpc_transponder::ber::measure_ber;
use ofpc_transponder::commodity::CommodityTransponder;

#[test]
fn noisy_dot_product_replays() {
    let run = || {
        let mut rng = SimRng::seed_from_u64(101);
        let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng);
        unit.calibrate(128);
        (0..10)
            .map(|i| unit.dot_nonneg(&vec![0.3 + 0.05 * i as f64; 32], &vec![0.6; 32]))
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn noisy_matcher_replays() {
    let run = || {
        let mut rng = SimRng::seed_from_u64(102);
        let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
        m.calibrate(128);
        let pattern: Vec<bool> = (0..64).map(|i| i % 5 < 2).collect();
        (0..10)
            .map(|i| {
                let mut data = pattern.clone();
                data[i * 3 % 64] = !data[i * 3 % 64];
                m.match_block(&data, &pattern).distance_estimate
            })
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn ber_measurement_replays() {
    let run = || {
        let mut rng = SimRng::seed_from_u64(103);
        let span = ofpc_photonics::fiber::FiberSpan::smf(120.0);
        let mut a = CommodityTransponder::realistic(0.0, &mut rng);
        let mut b = CommodityTransponder::realistic(span.total_loss_db(), &mut rng);
        measure_ber(&mut a, &mut b, &span, 2_000, &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn full_scenario_replays() {
    let run = || {
        let mut s = Fig1Scenario::build(104);
        let mut rng = SimRng::seed_from_u64(104);
        s.inject_traffic(15, 0, 750_000, &mut rng);
        s.run();
        s.system
            .net
            .stats
            .delivered
            .iter()
            .map(|r| (r.packet_id, r.delivered_ps, r.computed, r.hops))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn serving_runtime_replays_byte_identical() {
    // Two fresh serving runs with the same seed must serialize to
    // byte-identical metrics JSON — arrivals, batching decisions, EDF
    // dispatch order, shedding, and energy accounting all included.
    use ofpc_engine::Primitive;
    use ofpc_net::{NodeId, Topology};
    use ofpc_serve::{ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, TenantSpec};
    use ofpc_transponder::compute::ComputeTransponderConfig;

    let run = || {
        let mut sys = ofpc_core::OnFiberNetwork::new(Topology::line(3, 10.0), 105);
        sys.upgrade_site(NodeId(1), 1);
        sys.upgrade_site(NodeId(2), 1);
        let config = ServeConfig {
            seed: 105,
            horizon_ps: 1_000_000_000,
            drain_grace_ps: 500_000_000,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_ps: 5_000_000,
            },
            tenants: vec![
                TenantSpec {
                    name: "steady".to_string(),
                    weight: 3,
                    queue_capacity: 96,
                    arrivals: ArrivalSpec::Poisson { rate_rps: 12e6 },
                    primitive: Primitive::VectorDotProduct,
                    operand_len: 2048,
                    deadline_ps: 2_000_000_000,
                },
                TenantSpec {
                    name: "bursty".to_string(),
                    weight: 1,
                    queue_capacity: 32,
                    arrivals: ArrivalSpec::Mmpp {
                        calm_rps: 2e6,
                        burst_rps: 20e6,
                        mean_calm_s: 100e-6,
                        mean_burst_s: 40e-6,
                    },
                    primitive: Primitive::VectorDotProduct,
                    operand_len: 2048,
                    deadline_ps: 2_000_000_000,
                },
            ],
            verify_every: 128,
        };
        let report = ServeRuntime::over_network(
            &sys,
            NodeId(0),
            &ComputeTransponderConfig::realistic(),
            4,
            config,
        )
        .run();
        serde_json::to_string_pretty(&report).expect("report serializes")
    };
    let a = run();
    assert_eq!(a, run(), "same-seed serving runs must be byte-identical");
    // The run actually exercised the pipeline (not a trivially empty
    // report replaying).
    assert!(a.contains("\"arrivals\""));
}

#[test]
fn different_seeds_differ() {
    // Anti-test: seeds must actually matter for noisy paths. Use the
    // matcher's continuous distance estimate (the dot product's ADC
    // quantization can collapse nearby values to the same code).
    let run = |seed| {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut m = PatternMatcher::new(MatcherConfig::realistic(), &mut rng);
        m.calibrate(128);
        let pattern: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        (0..5)
            .map(|_| m.match_block(&pattern, &pattern).distance_estimate)
            .collect::<Vec<f64>>()
    };
    assert_ne!(run(1), run(2));
}
