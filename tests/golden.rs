//! Golden-replay regression suite: the mini experiment scenarios must
//! regenerate byte-identical to the fixtures pinned under
//! `results/golden/`. Any behavioral drift in the serving, fault, or
//! telemetry stacks fails here with a readable first-divergence diff;
//! intentional changes are re-pinned with
//! `cargo run -p ofpc-bench --bin golden_regen` and reviewed like any
//! other diff.

use ofpc_bench::golden;
use ofpc_par::WorkerPool;

fn check(name: &str) {
    let (_, generate) = golden::cases()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown golden case {name:?}"));
    let path = format!("results/golden/{name}.json");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read fixture {path}: {e}; run `cargo run -p ofpc-bench --bin golden_regen`")
    });
    let current = generate(&WorkerPool::sequential());
    if let Some(diff) = golden::first_divergence(name, &fixture, &current) {
        panic!("{diff}");
    }
}

#[test]
fn e12_serving_knee_matches_golden() {
    check("e12_mini");
}

#[test]
fn e13_fault_replay_matches_golden() {
    check("e13_mini");
}

#[test]
fn e14_telemetry_snapshot_matches_golden() {
    check("e14_mini");
}

#[test]
fn e17_design_space_frontier_matches_golden() {
    check("e17_mini");
}

#[test]
fn e18_resilience_matches_golden() {
    check("e18_mini");
}

#[test]
fn e20_sharded_controller_matches_golden() {
    check("e20_mini");
}

#[test]
fn e21_ingest_front_end_matches_golden() {
    check("e21_mini");
}

#[test]
fn kernels_differential_matches_golden() {
    check("kernels_mini");
}

#[test]
fn kernels_replay_is_byte_identical_across_worker_counts() {
    // Both halves of the kernel fixture — scalar and vectorized — fan
    // the batch out over the pool; the document must not depend on how
    // many workers carried it.
    let narrow = ofpc_bench::golden::kernels_mini(&WorkerPool::new(1));
    let two = ofpc_bench::golden::kernels_mini(&WorkerPool::new(2));
    let wide = ofpc_bench::golden::kernels_mini(&WorkerPool::new(8));
    assert_eq!(narrow, two, "1-worker vs 2-worker kernel bytes diverged");
    assert_eq!(narrow, wide, "1-worker vs 8-worker kernel bytes diverged");
}

#[test]
fn vectorized_verify_replays_e12_byte_identically_across_worker_counts() {
    // The vectorized verification engine is deterministic per seed too:
    // the whole mini-E12 sweep must replay byte-identically at any
    // worker count with verification on the fused kernels.
    use ofpc_engine::dot::KernelBackend;
    let narrow = golden::e12_mini_with_backend(&WorkerPool::new(1), KernelBackend::Vectorized);
    let two = golden::e12_mini_with_backend(&WorkerPool::new(2), KernelBackend::Vectorized);
    let wide = golden::e12_mini_with_backend(&WorkerPool::new(8), KernelBackend::Vectorized);
    assert_eq!(
        narrow, two,
        "1-worker vs 2-worker vectorized-verify E12 diverged"
    );
    assert_eq!(
        narrow, wide,
        "1-worker vs 8-worker vectorized-verify E12 diverged"
    );
}

#[test]
fn scalar_verify_differs_from_fixture_only_in_verify_stats() {
    // Swapping the verification backend must not perturb the simulation
    // itself: against the pinned vectorized fixture, the only lines
    // allowed to change under a scalar-verify replay are the
    // verify-error statistics. (E17/E18 carry no verify unit, so the
    // claim is scoped to the serving minis.)
    use ofpc_engine::dot::KernelBackend;
    let fixture = std::fs::read_to_string("results/golden/e12_mini.json").expect("fixture");
    let current = golden::e12_mini_with_backend(&WorkerPool::sequential(), KernelBackend::Scalar);
    let g: Vec<&str> = fixture.lines().collect();
    let c: Vec<&str> = current.lines().collect();
    assert_eq!(g.len(), c.len(), "line counts diverged");
    let mut changed = 0;
    for (i, (a, b)) in g.iter().zip(&c).enumerate() {
        if a != b {
            changed += 1;
            assert!(
                a.contains("verify_mean_abs_error"),
                "line {} changed outside the verify stats:\n  golden : {a}\n  current: {b}",
                i + 1
            );
        }
    }
    assert!(
        changed > 0,
        "scalar verify produced identical bytes — backend not applied"
    );
}

#[test]
fn e21_replay_is_byte_identical_across_worker_counts() {
    // Each epoch fans the shards out over the pool and the rebalance
    // barrier runs sequentially in between; the report must not depend
    // on how many workers carried the shards.
    let narrow = ofpc_bench::ingest::e21_mini(&WorkerPool::new(1));
    let two = ofpc_bench::ingest::e21_mini(&WorkerPool::new(2));
    let wide = ofpc_bench::ingest::e21_mini(&WorkerPool::new(8));
    assert_eq!(narrow, two, "1-worker vs 2-worker E21 bytes diverged");
    assert_eq!(narrow, wide, "1-worker vs 8-worker E21 bytes diverged");
}

#[test]
fn e18_replay_is_byte_identical_across_worker_counts() {
    // The three protection-mode runs fan out over the pool; the
    // comparison document must not depend on how many workers carried
    // them.
    let narrow = ofpc_bench::resil::e18_mini(&WorkerPool::new(1));
    let two = ofpc_bench::resil::e18_mini(&WorkerPool::new(2));
    let wide = ofpc_bench::resil::e18_mini(&WorkerPool::new(8));
    assert_eq!(narrow, two, "1-worker vs 2-worker E18 bytes diverged");
    assert_eq!(narrow, wide, "1-worker vs 8-worker E18 bytes diverged");
}

#[test]
fn fixtures_carry_the_report_schema_version() {
    for (name, _) in golden::cases() {
        let path = format!("results/golden/{name}.json");
        let fixture = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
        let expected = format!(
            "{{\n  \"schema_version\": {},\n  \"data\":",
            ofpc_bench::table::SCHEMA_VERSION
        );
        assert!(
            fixture.starts_with(&expected),
            "fixture {name} missing the versioned envelope; \
             run `cargo run -p ofpc-bench --bin golden_regen`"
        );
    }
}

#[test]
fn fixtures_exist_for_every_case() {
    for (name, _) in golden::cases() {
        let path = format!("results/golden/{name}.json");
        assert!(
            std::path::Path::new(&path).exists(),
            "missing fixture {path}; run `cargo run -p ofpc-bench --bin golden_regen`"
        );
    }
}
