//! §5 "On-fiber photonic computing in datacenters": photonic compute
//! transceivers deployed in the spine of a leaf–spine fabric serve
//! inference requests as traffic crosses the DC — same architecture as
//! the WAN transponders, microsecond-scale paths.

use ofpc_core::protocol::tag_request;
use ofpc_engine::Primitive;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;

#[test]
fn spine_transceivers_compute_cross_rack_traffic() {
    // 4 leaves × 2 spines, 100 m fibers. Engines at both spines.
    let topo = Topology::leaf_spine(4, 2, 0.1);
    let mut net = Network::new(topo, SimRng::seed_from_u64(1));
    net.install_shortest_path_routes();
    let spine0 = NodeId(4);
    let spine1 = NodeId(5);
    let weights = vec![0.25; 16];
    net.add_engine(
        spine0,
        1,
        OpSpec::Dot {
            weights: weights.clone(),
        },
        0.0,
    );
    net.add_engine(spine1, 1, OpSpec::Dot { weights }, 0.0);
    net.install_compute_detour(Primitive::VectorDotProduct, spine0);

    // Cross-rack inference requests from every leaf to every other leaf.
    let mut id = 0u32;
    for src in 0..4u32 {
        for dst in 0..4u32 {
            if src == dst {
                continue;
            }
            let p = tag_request(
                Network::node_addr(NodeId(src), 1),
                Network::node_addr(NodeId(dst), 1),
                id,
                Primitive::VectorDotProduct,
                1,
                &[0.5; 16],
            );
            net.inject(id as u64 * 1_000, NodeId(src), p);
            id += 1;
        }
    }
    net.run_to_idle();
    assert_eq!(net.stats.delivered_count(), 12);
    assert_eq!(
        net.stats.computed_count(),
        12,
        "every request computed in the spine"
    );
    // DC-scale latency: two 100 m hops ≈ 1 µs, plus engine time.
    let p99_ms = net.stats.latency_percentile_ms(0.99).unwrap();
    assert!(p99_ms < 0.01, "p99 {p99_ms} ms should be microsecond-scale");
    // The engine sits on the natural leaf→spine→leaf path: exactly 2 hops.
    for r in &net.stats.delivered {
        assert_eq!(r.hops, 2, "{r:?}");
    }
}

#[test]
fn dc_engine_capacity_shared_across_racks() {
    // One spine engine, all 4 racks hammering it: FIFO sharing works and
    // every delivered request computes (the engine runs at line rate).
    let topo = Topology::leaf_spine(4, 1, 0.05);
    let mut net = Network::new(topo, SimRng::seed_from_u64(2));
    net.install_shortest_path_routes();
    let spine = NodeId(4);
    net.add_engine(spine, 7, OpSpec::Nonlinear, 0.0);
    net.install_compute_detour(Primitive::NonlinearFunction, spine);
    let mut id = 0u32;
    for burst in 0..50u64 {
        for src in 0..4u32 {
            let dst = (src + 1) % 4;
            let p = tag_request(
                Network::node_addr(NodeId(src), 1),
                Network::node_addr(NodeId(dst), 1),
                id,
                Primitive::NonlinearFunction,
                7,
                &[0.5; 8],
            );
            net.inject(burst * 10_000, NodeId(src), p);
            id += 1;
        }
    }
    net.run_to_idle();
    assert_eq!(net.stats.delivered_count(), 200);
    assert_eq!(net.stats.computed_count(), 200);
    assert_eq!(
        net.engines_at(spine)[0].executions,
        200,
        "single spine engine served all racks"
    );
}
