//! Serving-layer integration tests: weighted fairness under overload,
//! explicit (never silent) load shedding, and the batching win the E12
//! experiment demonstrates — enforced here so regressions fail CI, not
//! just skew a table.

use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_serve::{ArrivalSpec, BatchPolicy, ServeConfig, ServeReport, ServeRuntime, TenantSpec};
use ofpc_transponder::compute::ComputeTransponderConfig;

/// ~15.5M req/s of slot capacity with this deployment/model (two slots,
/// four WDM channels, 2048-element batches of 8).
const CAPACITY_RPS: f64 = 15.5e6;

fn run(per_tenant_rps: f64, weights: (u32, u32), batching: bool) -> ServeReport {
    let mut sys = ofpc_core::OnFiberNetwork::new(Topology::line(3, 10.0), 9);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    let tenant = |name: &str, weight: u32| TenantSpec {
        name: name.to_string(),
        weight,
        queue_capacity: 96,
        arrivals: ArrivalSpec::Poisson {
            rate_rps: per_tenant_rps,
        },
        primitive: Primitive::VectorDotProduct,
        operand_len: 2048,
        deadline_ps: 2_000_000_000,
    };
    let config = ServeConfig {
        seed: 9,
        horizon_ps: 2_000_000_000, // 2 ms
        drain_grace_ps: 1_000_000_000,
        batch: if batching {
            BatchPolicy {
                max_batch: 8,
                max_wait_ps: 5_000_000,
            }
        } else {
            BatchPolicy::disabled()
        },
        tenants: vec![tenant("t0", weights.0), tenant("t1", weights.1)],
        verify_every: 0,
    };
    ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        4,
        config,
    )
    .run()
}

#[test]
fn overload_fairness_follows_weights() {
    // 2× overload, weights 3:1, identical offered load per tenant: each
    // tenant's share of total goodput must be at least its weighted fair
    // share minus tolerance.
    let report = run(CAPACITY_RPS, (3, 1), true);
    assert!(
        report.shed > 0,
        "2x overload must shed (shed {})",
        report.shed
    );
    let total: f64 = report.tenants.iter().map(|t| t.goodput_rps).sum();
    let share0 = report.tenants[0].goodput_rps / total;
    let share1 = report.tenants[1].goodput_rps / total;
    let tolerance = 0.10;
    assert!(
        share0 >= 0.75 - tolerance,
        "tenant 0 (weight 3) got {share0:.3} of goodput, expected ≥ {:.3}",
        0.75 - tolerance
    );
    assert!(
        share1 >= 0.25 - tolerance,
        "tenant 1 (weight 1) got {share1:.3} of goodput, expected ≥ {:.3}",
        0.25 - tolerance
    );
}

#[test]
fn equal_weights_split_evenly_under_overload() {
    let report = run(CAPACITY_RPS, (1, 1), true);
    assert!(report.shed > 0);
    let total: f64 = report.tenants.iter().map(|t| t.goodput_rps).sum();
    for t in &report.tenants {
        let share = t.goodput_rps / total;
        assert!(
            (share - 0.5).abs() < 0.08,
            "tenant {:?} share {share:.3}, expected ~0.5",
            t.tenant
        );
    }
}

#[test]
fn shedding_is_never_silent() {
    // Conservation at 2× overload: every arrival is completed, shed with
    // a recorded reason, or still queued at the horizon — and the shed
    // total equals the sum of per-reason counters.
    let report = run(CAPACITY_RPS, (3, 1), true);
    assert_eq!(
        report.arrivals,
        report.completed + report.shed + report.unfinished,
        "requests lost without an outcome"
    );
    let by_reason: u64 = report
        .tenants
        .iter()
        .map(|t| t.shed_queue_full + t.shed_expired_queued + t.shed_expired_serving)
        .sum();
    assert_eq!(report.shed, by_reason, "shed without a reason");
    assert!(by_reason > 0);
}

#[test]
fn batching_beats_unbatched_goodput_at_high_load() {
    let batched = run(CAPACITY_RPS, (1, 1), true);
    let unbatched = run(CAPACITY_RPS, (1, 1), false);
    assert!(
        batched.goodput_rps > unbatched.goodput_rps * 1.5,
        "batched {:.2e} vs unbatched {:.2e}",
        batched.goodput_rps,
        unbatched.goodput_rps
    );
    // Amortization also shows up as energy per request.
    assert!(batched.joules_per_completed < unbatched.joules_per_completed);
}

#[test]
fn light_load_sheds_nothing() {
    let report = run(0.05 * CAPACITY_RPS, (3, 1), true);
    assert_eq!(report.shed, 0);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.completed, report.arrivals);
}
