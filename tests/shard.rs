//! Differential correctness suite for the sharded incremental
//! controller (ofpc-shard).
//!
//! The crate's contract: incrementality is a pure optimization. After
//! **every** event — arrival, departure, fiber cut, splice, site fail,
//! repair — the incremental state must equal a from-scratch
//! `full_resolve`, slot for slot; and the E20 report bytes must not
//! depend on the worker count. This suite drives seeded random event
//! streams over 5–20-site topologies checking exactly that, plus a
//! 10k-event churn property test over the structural invariants, and
//! an objective-quality bound against the monolithic solver.

use ofpc_bench::shard::{e20_mini, run_e20, E20Spec};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::options::enumerate_options;
use ofpc_core::topo::{multi_region, MultiRegionSpec};
use ofpc_engine::Primitive;
use ofpc_net::{LinkId, NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;
use ofpc_shard::{RegionMap, ShardEvent, ShardedController};
use std::collections::BTreeSet;

const PRIMS: [Primitive; 3] = [
    Primitive::VectorDotProduct,
    Primitive::PatternMatching,
    Primitive::NonlinearFunction,
];

fn random_demand(id: u32, nodes: usize, rng: &mut SimRng) -> Demand {
    let src = NodeId(rng.below(nodes) as u32);
    let mut dst = src;
    while dst == src {
        dst = NodeId(rng.below(nodes) as u32);
    }
    let dag = if rng.chance(0.25) {
        TaskDag::chain(vec![PRIMS[rng.below(3)], PRIMS[rng.below(3)]])
    } else {
        TaskDag::single(PRIMS[rng.below(3)])
    };
    Demand::new(id, src, dst, dag)
}

/// Drive `steps` random events through `ctl`, comparing against a
/// from-scratch re-solve after every single event.
fn differential_stream(
    mut ctl: ShardedController,
    links: usize,
    nodes: usize,
    steps: usize,
    seed: u64,
) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut live: Vec<u32> = Vec::new();
    let mut next_id = 0u32;
    for step in 0..steps {
        let roll = rng.uniform();
        let event = if roll < 0.45 || live.is_empty() {
            let d = random_demand(next_id, nodes, &mut rng);
            live.push(next_id);
            next_id += 1;
            ShardEvent::Arrive(d)
        } else if roll < 0.65 {
            let idx = rng.below(live.len());
            ShardEvent::Depart(live.swap_remove(idx))
        } else if roll < 0.75 {
            ShardEvent::CutLink(LinkId(rng.below(links) as u32))
        } else if roll < 0.85 {
            ShardEvent::RepairLink(LinkId(rng.below(links) as u32))
        } else if roll < 0.93 {
            ShardEvent::FailSite(NodeId(rng.below(nodes) as u32))
        } else {
            ShardEvent::RepairSite(NodeId(rng.below(nodes) as u32))
        };
        ctl.apply(event.clone());
        ctl.check_invariants()
            .unwrap_or_else(|e| panic!("invariant after step {step} ({event:?}): {e}"));
        let mut scratch = ctl.clone();
        scratch.full_resolve();
        assert_eq!(
            ctl.placements(),
            scratch.placements(),
            "incremental drifted from scratch at step {step} ({event:?}, seed {seed})"
        );
    }
}

#[test]
fn differential_five_site_two_regions() {
    // The smallest interesting split: a 5-node line, 3 + 2.
    let topo = Topology::line(5, 80.0);
    let links = topo.link_count();
    let regions = RegionMap::from_assignment(vec![0, 0, 0, 1, 1]);
    let capacity = vec![2, 0, 1, 0, 2];
    let ctl = ShardedController::new(topo, regions, capacity, 6);
    differential_stream(ctl, links, 5, 160, 501);
}

#[test]
fn differential_ring_three_regions() {
    // A 9-node ring cut into three arcs: every region borders two
    // others, so cross-region demands route both ways.
    let topo = Topology::ring(9, 120.0);
    let links = topo.link_count();
    let regions = RegionMap::from_assignment(vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    let capacity: Vec<usize> = (0..9).map(|i| if i % 2 == 0 { 2 } else { 0 }).collect();
    let ctl = ShardedController::new(topo, regions, capacity, 6);
    differential_stream(ctl, links, 9, 160, 902);
}

#[test]
fn differential_eighteen_site_multi_region() {
    // The generated multi-region shape E20 uses, scaled to 3×6 = 18
    // sites — the top of the ISSUE's 5–20-site differential band.
    let mut rng = SimRng::seed_from_u64(1803);
    let wan = multi_region(&MultiRegionSpec::new(3, 6), &mut rng);
    let nodes = wan.topo.node_count();
    let links = wan.topo.link_count();
    let capacity: Vec<usize> = (0..nodes).map(|i| if i % 3 == 0 { 2 } else { 0 }).collect();
    let regions = RegionMap::from_assignment(wan.region_of.clone());
    let ctl = ShardedController::new(wan.topo, regions, capacity, 8);
    differential_stream(ctl, links, nodes, 140, 1804);
}

#[test]
fn single_region_matches_monolithic_ordered_greedy() {
    // With one region and every demand local, the sharded controller
    // must reproduce the monolithic id-ordered greedy exactly.
    let mut rng = SimRng::seed_from_u64(77);
    let topo = Topology::random_geometric(10, 1500.0, 600.0, &mut rng);
    let slots: Vec<usize> = (0..10).map(|i| if i % 2 == 0 { 2 } else { 0 }).collect();
    let demands: Vec<Demand> = (0..14).map(|i| random_demand(i, 10, &mut rng)).collect();

    let mut ctl = ShardedController::new(topo.clone(), RegionMap::single(10), slots.clone(), 8);
    for d in &demands {
        ctl.apply(ShardEvent::Arrive(d.clone()));
    }

    let instance = enumerate_options(&topo, &slots, &demands, 8);
    let mono = ofpc_controller::greedy::solve_greedy_ordered(&instance);
    for (i, choice) in mono.allocation.choices.iter().enumerate() {
        let expected = choice.map(|o| instance.options[i][o].placement.clone());
        assert_eq!(
            ctl.placements()[&(i as u32)],
            expected,
            "demand {i} diverged from the monolithic ordered greedy"
        );
    }
}

#[test]
fn sharded_quality_stays_near_monolithic_greedy() {
    // Sharding trades a little allocation quality for incrementality
    // (locals get strict priority; cross-shard demands see residual
    // capacity only). Bound the gap against the monolithic best-first
    // greedy on small multi-region instances.
    for seed in [11u64, 12, 13] {
        let mut rng = SimRng::seed_from_u64(seed);
        let wan = multi_region(&MultiRegionSpec::new(3, 4), &mut rng);
        let nodes = wan.topo.node_count();
        let slots: Vec<usize> = (0..nodes).map(|i| if i % 3 == 0 { 2 } else { 0 }).collect();
        let demands: Vec<Demand> = (0..10).map(|i| random_demand(i, nodes, &mut rng)).collect();

        let regions = RegionMap::from_assignment(wan.region_of.clone());
        let mut ctl = ShardedController::new(wan.topo.clone(), regions, slots.clone(), 8);
        for d in &demands {
            ctl.apply(ShardEvent::Arrive(d.clone()));
        }

        let instance = enumerate_options(&wan.topo, &slots, &demands, 8);
        let mono = ofpc_controller::greedy::solve_greedy(&instance);
        let mono_satisfied = mono.allocation.satisfied_count();
        let sharded_satisfied = ctl.satisfied_count();
        assert!(
            (sharded_satisfied as f64) >= 0.8 * mono_satisfied as f64,
            "seed {seed}: sharded satisfied {sharded_satisfied} < 80% of monolithic \
             {mono_satisfied}"
        );
    }
}

#[test]
fn churn_property_10k_events() {
    // 10k seeded random events over the 12-site WAN. After every batch:
    // no slot double-booked, failed sites hold no live allocations, the
    // dirty set is drained, and every live demand is either placed or
    // explicitly tracked as rejected — never silently dropped. A
    // from-scratch differential runs every 250 events.
    let mut rng = SimRng::seed_from_u64(10_000);
    let wan = multi_region(&MultiRegionSpec::new(3, 4), &mut rng);
    let nodes = wan.topo.node_count();
    let links = wan.topo.link_count();
    let capacity: Vec<usize> = (0..nodes).map(|i| if i % 3 == 0 { 2 } else { 0 }).collect();
    let regions = RegionMap::from_assignment(wan.region_of.clone());
    let mut ctl = ShardedController::new(wan.topo, regions, capacity, 8);

    let mut live: BTreeSet<u32> = BTreeSet::new();
    let mut next_id = 0u32;
    for step in 0..10_000 {
        let roll = rng.uniform();
        let event = if roll < 0.40 || live.is_empty() {
            let d = random_demand(next_id, nodes, &mut rng);
            live.insert(next_id);
            next_id += 1;
            ShardEvent::Arrive(d)
        } else if roll < 0.70 {
            let idx = rng.below(live.len());
            let id = *live.iter().nth(idx).unwrap();
            live.remove(&id);
            ShardEvent::Depart(id)
        } else if roll < 0.78 {
            ShardEvent::CutLink(LinkId(rng.below(links) as u32))
        } else if roll < 0.86 {
            ShardEvent::RepairLink(LinkId(rng.below(links) as u32))
        } else if roll < 0.93 {
            ShardEvent::FailSite(NodeId(rng.below(nodes) as u32))
        } else {
            ShardEvent::RepairSite(NodeId(rng.below(nodes) as u32))
        };
        ctl.apply(event);
        ctl.check_invariants()
            .unwrap_or_else(|e| panic!("invariant violated at step {step}: {e}"));
        // Never drop a demand: the live book and the controller's view
        // must agree exactly, including rejected (unplaced) demands.
        let tracked: BTreeSet<u32> = ctl.placements().into_keys().collect();
        assert_eq!(tracked, live, "demand book diverged at step {step}");
        if (step + 1) % 250 == 0 {
            let mut scratch = ctl.clone();
            scratch.full_resolve();
            assert_eq!(
                ctl.placements(),
                scratch.placements(),
                "incremental drifted at step {step}"
            );
        }
    }
    assert!(next_id > 3_000, "stream should be arrival-heavy");
}

#[test]
fn e20_report_is_byte_identical_across_worker_counts() {
    let reference = e20_mini(&WorkerPool::new(1));
    for workers in [2, 8] {
        let wide = e20_mini(&WorkerPool::new(workers));
        assert!(
            reference == wide,
            "E20 report diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn e20_outcome_accounting_balances() {
    // Every arrival is either admitted or rejected at arrival; the
    // final live population is the FIFO window.
    let (report, _) = run_e20(&E20Spec::mini(), &WorkerPool::sequential());
    assert_eq!(report.admitted + report.rejected, report.arrivals);
    assert_eq!(report.final_live, E20Spec::mini().max_live);
    assert!(report.final_satisfied <= report.final_live);
    assert!(report.differential_checks > 0);
}
