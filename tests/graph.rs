//! Cross-crate integration of the workload graph compiler: IR builders
//! over real engine models, lowering against serving-layer prices,
//! placement through the controller, pipelined execution with telemetry,
//! and fault-plan-driven re-lowering — the full `ofpc-graph` pipeline as
//! a user of the workspace's public APIs.

use ofpc_engine::dnn::Mlp;
use ofpc_faults::{FaultEvent, FaultKind, FaultPlan};
use ofpc_graph::exec::{ExecConfig, ExecMode};
use ofpc_graph::lower::{ErrorBudget, LowerConfig, Target};
use ofpc_graph::{compile, ir};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use ofpc_telemetry::{track, validate_balanced, Telemetry};

const SEED: u64 = 16;
/// Fig. 1 compute slots: sites at B (node 1) and C (node 2).
const SLOTS: [usize; 4] = [0, 2, 2, 0];

fn dnn() -> ir::WorkGraph {
    let mut rng = SimRng::seed_from_u64(SEED);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    ir::dnn_graph(&mlp, 4.0, 6.0)
}

fn batch(mode: ExecMode) -> ExecConfig {
    ExecConfig {
        requests: 32,
        inter_arrival_ps: 0,
        mode,
    }
}

#[test]
fn dnn_compiles_places_and_pipelines_on_fig1() {
    let ex = compile(
        &dnn(),
        &LowerConfig::metro(),
        &Topology::fig1(),
        &SLOTS,
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("compiles");

    // All three fused layers lowered photonically and landed on the
    // fig1 compute sites, on pairwise-distinct consecutive wavelengths.
    let placed = ex.placed();
    assert_eq!(placed.plan.stages.len(), 3);
    assert_eq!(placed.plan.photonic_stage_count(), 3);
    for site in placed.photonic_sites() {
        assert!(site == NodeId(1) || site == NodeId(2), "site {site:?}");
    }
    let wl: Vec<usize> = placed.bindings.iter().map(|b| b.wavelength).collect();
    assert!(wl.windows(2).all(|w| w[0] != w[1]), "wavelengths {wl:?}");

    // The compiled pipeline beats the naive sequential baseline by the
    // E16 gate at identical per-request energy.
    let pipe = ex.run(&batch(ExecMode::Pipelined));
    let seq = ex.run(&batch(ExecMode::Sequential));
    assert!(
        pipe.throughput_rps >= 1.5 * seq.throughput_rps,
        "pipelined {} req/s vs sequential {} req/s",
        pipe.throughput_rps,
        seq.throughput_rps
    );
    assert_eq!(pipe.energy_per_request_j, seq.energy_per_request_j);
    assert!(pipe.mean_latency_ps <= seq.mean_latency_ps);
}

#[test]
fn executor_emits_balanced_spans_on_the_graph_track() {
    let tel = Telemetry::enabled();
    let ex = compile(
        &dnn(),
        &LowerConfig::metro(),
        &Topology::fig1(),
        &SLOTS,
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("compiles")
    .with_telemetry(&tel);
    let cfg = ExecConfig {
        requests: 4,
        inter_arrival_ps: 0,
        mode: ExecMode::Pipelined,
    };
    let report = ex.run(&cfg);
    let events = tel.trace_events();
    let spans = validate_balanced(&events).expect("balanced spans");
    assert_eq!(spans, report.stages * cfg.requests);
    assert!(events.iter().all(|e| e.pid == track::GRAPH));
}

#[test]
fn fault_plan_relowers_only_the_failed_site() {
    let mut ex = compile(
        &dnn(),
        &LowerConfig::metro(),
        &Topology::fig1(),
        &SLOTS,
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("compiles");
    let healthy = ex.run(&batch(ExecMode::Pipelined));
    assert_eq!(healthy.digital_stages, 0);

    let sites = ex.placed().photonic_sites();
    assert!(sites.len() >= 2);
    let victim = sites[0];
    let changed = ex.apply_faults(&FaultPlan {
        events: vec![FaultEvent {
            at_ps: 0,
            kind: FaultKind::EngineFail { node: victim },
        }],
    });
    assert!(changed >= 1);

    let faulted = ex.run(&batch(ExecMode::Pipelined));
    assert_eq!(faulted.relowered_stages.len(), changed);
    for &k in &faulted.relowered_stages {
        assert_eq!(ex.placed().bindings[k].node, victim);
    }
    // The surviving site's stages stayed photonic; fallback costs energy.
    assert!(faulted.digital_stages < faulted.stages);
    assert!(faulted.energy_per_request_j > healthy.energy_per_request_j);

    // Repair restores the healthy report byte-for-byte.
    ex.repair_site(victim);
    let healed = ex.run(&batch(ExecMode::Pipelined));
    assert_eq!(
        serde_json::to_string(&healed).expect("serializes"),
        serde_json::to_string(&healthy).expect("serializes")
    );
}

#[test]
fn degraded_budget_splits_the_plan_across_targets() {
    let mut rng = SimRng::seed_from_u64(SEED);
    let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
    // 6-bit output demand: realistic clears it, degraded cannot.
    let graph = ir::dnn_graph(&mlp, 2.5, 6.0);
    let mut cfg = LowerConfig::metro();
    cfg.budget = ErrorBudget::degraded();
    let ex = compile(
        &graph,
        &cfg,
        &Topology::fig1(),
        &SLOTS,
        NodeId(0),
        NodeId(3),
        4,
    )
    .expect("compiles");
    let stages = &ex.placed().plan.stages;
    assert!(stages.iter().any(|s| s.target == Target::Photonic));
    let last = stages.last().expect("has stages");
    assert_eq!(last.target, Target::Digital, "output layer forced digital");
    // The digital stage executes wherever the chain already is — no
    // extra fiber hop for the fallback.
    let k = stages.len() - 1;
    assert_eq!(ex.placed().bindings[k].hop_in_ps, 0);
}
