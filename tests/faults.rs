//! Fault-injection integration tests: packet conservation under fault
//! plans, bounded recovery after a fiber cut, graceful digital fallback
//! in the serving runtime, and byte-identical replay of a full fault
//! scenario (same seed + same `FaultPlan` ⇒ same report).

use ofpc_apps::digital::ComputeModel;
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::protection::RecoveryParams;
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_faults::{generate_storm, inject, FaultPlan, Orchestrator, StormSpec};
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::stats::DropReason;
use ofpc_net::{LinkId, NodeId, Topology};
use ofpc_photonics::SimRng;
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, EngineFaultEvent, ServeConfig, ServeReport, ServeRuntime, TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;

const P1: Primitive = Primitive::VectorDotProduct;

const SOLVER: Solver = Solver::Exact {
    node_budget: 1_000_000,
};

fn fig1_system(seed: u64) -> OnFiberNetwork {
    let mut sys = OnFiberNetwork::new(Topology::fig1(), seed);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    sys.submit_demand(
        Demand::new(1, NodeId(0), NodeId(3), TaskDag::single(P1)),
        OpSpec::Dot {
            weights: vec![0.25; 8],
        },
    );
    sys
}

fn compute_packet(id: u32) -> Packet {
    Packet::compute(
        Network::node_addr(NodeId(0), 1),
        Network::node_addr(NodeId(3), 1),
        id,
        PchHeader::request(P1, 1, 8),
        Packet::encode_operands(&[0.5; 8]),
    )
}

#[test]
fn packet_conservation_holds_under_fault_plan() {
    // A flapping link and an engine outage while traffic flows: every
    // injected packet must be accounted for — delivered, dropped with a
    // reason, or still in flight. Nothing vanishes.
    let mut sys = fig1_system(21);
    sys.allocate_and_apply(SOLVER);
    let a = sys.net.topo.find_node("A").unwrap();
    let (link_ab, _) = sys.net.topo.neighbors(a)[0];
    let plan = FaultPlan::new()
        .flap(2_000_000, link_ab, 5_000_000_000)
        .engine_outage(3_000_000, NodeId(1), 4_000_000_000);
    inject(&plan, &mut sys.net);

    // 100 µs spacing: the train spans 10 ms, straddling both the 5 ms
    // flap window and the engine outage, so some packets die on the
    // downed link and later ones cross the restored fiber.
    for i in 0..100u32 {
        sys.net
            .inject(i as u64 * 100_000_000, NodeId(0), compute_packet(i + 1));
    }
    sys.net.run_to_idle();

    let stats = &sys.net.stats;
    assert!(
        stats.conservation_holds(sys.net.in_flight_count()),
        "injected must equal delivered + dropped + in-flight"
    );
    assert_eq!(stats.injected, 100);
    // The cut bites mid-train: at least one packet dies on the downed
    // link, the rest arrive (fig1 is 2-connected, reroute survives).
    assert!(stats.drop_count(DropReason::LinkDown) > 0);
    assert!(stats.delivered_count() > 0);
}

#[test]
fn cut_recovery_ttr_is_bounded_and_service_resumes() {
    let mut sys = fig1_system(22);
    let orch = Orchestrator::new(RecoveryParams::default(), SOLVER);
    sys.allocate_and_apply(orch.solver);

    let a = sys.net.topo.find_node("A").unwrap();
    let (cut_link, _) = sys.net.topo.neighbors(a)[0];
    sys.net.set_link_up(cut_link, false);
    let out = orch.recover_from_cut(&mut sys, 1_000_000);

    assert!(out.fully_applied);
    assert_eq!(out.unsatisfied, 0);
    let bound = orch.recovery.ttr_bound_ps(sys.net.topo.node_count());
    assert!(
        out.timeline.ttr_ps() <= bound,
        "TTR {} exceeds detection+realloc+staged-install bound {bound}",
        out.timeline.ttr_ps()
    );
    // Post-recovery traffic is computed on the surviving path.
    sys.net
        .inject(out.timeline.installed_at_ps, NodeId(0), compute_packet(1));
    sys.net.run_to_idle();
    assert_eq!(sys.net.stats.delivered_count(), 1);
    assert!(sys.net.stats.delivered[0].computed);
}

fn outage_schedule() -> Vec<EngineFaultEvent> {
    vec![
        EngineFaultEvent {
            at_ps: 500_000_000,
            node: NodeId(1),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 800_000_000,
            node: NodeId(2),
            up: false,
        },
        EngineFaultEvent {
            at_ps: 1_200_000_000,
            node: NodeId(2),
            up: true,
        },
        EngineFaultEvent {
            at_ps: 1_500_000_000,
            node: NodeId(1),
            up: true,
        },
    ]
}

fn serve_under_outage(seed: u64, fallback: bool) -> ServeReport {
    let mut sys = OnFiberNetwork::new(Topology::line(3, 10.0), seed);
    sys.upgrade_site(NodeId(1), 1);
    sys.upgrade_site(NodeId(2), 1);
    let config = ServeConfig {
        seed,
        horizon_ps: 2_000_000_000,
        drain_grace_ps: 1_000_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 5_000_000,
        },
        tenants: vec![TenantSpec {
            name: "steady".to_string(),
            weight: 1,
            queue_capacity: 96,
            arrivals: ArrivalSpec::Poisson { rate_rps: 6e6 },
            primitive: P1,
            operand_len: 2048,
            deadline_ps: 2_000_000_000,
        }],
        verify_every: 128,
    };
    let mut rt = ServeRuntime::over_network(
        &sys,
        NodeId(0),
        &ComputeTransponderConfig::realistic(),
        4,
        config,
    )
    .with_engine_faults(&outage_schedule());
    if fallback {
        rt = rt.with_digital_fallback(ComputeModel::cpu());
    }
    rt.run()
}

#[test]
fn digital_fallback_beats_shedding_under_outage() {
    let shed_only = serve_under_outage(23, false);
    let with_fb = serve_under_outage(23, true);
    // Same arrivals either way (open-loop, same seed).
    assert_eq!(shed_only.arrivals, with_fb.arrivals);
    assert!(shed_only.shed > 0, "outage must displace work");
    assert_eq!(shed_only.degraded, 0, "no fallback, no degraded outcomes");
    assert!(with_fb.degraded > 0, "fallback absorbs displaced requests");
    assert!(
        with_fb.shed_rate < shed_only.shed_rate,
        "fallback shed rate {} must undercut baseline {}",
        with_fb.shed_rate,
        shed_only.shed_rate
    );
    // Degraded answers are exact but cost digital energy.
    assert!(with_fb.degraded_energy_j > 0.0);
    // Every arrival is accounted for in both runs.
    for r in [&shed_only, &with_fb] {
        assert_eq!(r.arrivals, r.completed + r.shed + r.degraded + r.unfinished);
    }
}

#[test]
fn fault_scenario_replays_byte_identical() {
    // Satellite: same seed + same fault plan ⇒ byte-identical report,
    // through the whole serve pipeline including faults, retries, and
    // fallback.
    let a = serde_json::to_string_pretty(&serve_under_outage(24, true)).unwrap();
    let b = serde_json::to_string_pretty(&serve_under_outage(24, true)).unwrap();
    assert_eq!(a, b, "fault scenario must replay deterministically");
    assert!(a.contains("\"degraded\""));
    // And the network-level fault injection replays too.
    let net_run = || {
        let mut sys = fig1_system(25);
        sys.allocate_and_apply(SOLVER);
        let plan = FaultPlan::new()
            .flap(1_000_000, LinkId(0), 3_000_000_000)
            .engine_outage(2_000_000, NodeId(1), 2_000_000_000);
        inject(&plan, &mut sys.net);
        for i in 0..50u32 {
            sys.net
                .inject(i as u64 * 400_000, NodeId(0), compute_packet(i + 1));
        }
        sys.net.run_to_idle();
        sys.net
            .stats
            .delivered
            .iter()
            .map(|d| (d.packet_id, d.delivered_ps, d.computed, d.hops))
            .collect::<Vec<_>>()
    };
    assert_eq!(net_run(), net_run());
}

#[test]
fn fifty_event_storm_conserves_packets_and_slot_inventory() {
    // A dense correlated storm on fig1: 10 bursts of 2 cuts (each cut
    // paired with its splice = 40 events) over a 5-rung drift ramp on
    // both compute sites (10 NoiseStep events) — exactly 50 fault
    // events sweeping a 10 ms packet train.
    let mut sys = fig1_system(26);
    sys.allocate_and_apply(SOLVER);

    let links: Vec<LinkId> = (0..sys.net.topo.link_count() as u32).map(LinkId).collect();
    let sites = vec![NodeId(1), NodeId(2)];
    let spec = StormSpec {
        bursts: 10,
        cuts_per_burst: 2,
        burst_jitter_ps: 20_000_000,
        cut_down_ps: 300_000_000,
        engines_per_burst: 0,
        engine_down_ps: 0,
        drift_sigmas: vec![0.001, 0.002, 0.004, 0.008, 0.016],
    };
    let horizon = 10_000_000_000u64;
    let mut rng = SimRng::seed_from_u64(26).derive("storm-50");
    let storm = generate_storm(&links, &sites, horizon, &spec, &mut rng);
    assert_eq!(
        storm.events.len(),
        50,
        "10 bursts x 2 (cut + splice) pairs + 2 sites x 5 drift rungs"
    );
    inject(&storm, &mut sys.net);

    for i in 0..100u32 {
        sys.net
            .inject(i as u64 * 100_000_000, NodeId(0), compute_packet(i + 1));
    }
    sys.net.run_to_idle();

    // Packet conservation: every injected packet is delivered, dropped
    // with a reason, or still in flight — across all 50 fault events.
    let stats = &sys.net.stats;
    assert!(
        stats.conservation_holds(sys.net.in_flight_count()),
        "injected must equal delivered + dropped + in-flight"
    );
    assert_eq!(stats.injected, 100);
    assert!(
        stats.drop_count(DropReason::LinkDown) > 0,
        "the storm bites"
    );
    assert!(
        stats.delivered_count() > 0,
        "splice windows must let traffic through"
    );

    // Slot-inventory invariant: the post-storm reallocation may not
    // install more operations on a node than it has upgraded slots.
    let orch = Orchestrator::new(RecoveryParams::default(), SOLVER);
    let out = orch.recover_from_cut(&mut sys, horizon);
    assert!(out.fully_applied);
    assert_eq!(out.unsatisfied, 0);
    let plan = sys.last_plan.clone().expect("recovery installs a plan");
    let mut used = vec![0usize; sys.net.topo.node_count()];
    for ins in &plan.installs {
        used[ins.node.0 as usize] += 1;
    }
    for (node, (&u, &have)) in used.iter().zip(sys.slots().iter()).enumerate() {
        assert!(
            u <= have,
            "node {node}: {u} installs exceed {have} upgraded slots"
        );
    }
}
