//! Cross-crate integration tests: the full system assembled, plus the
//! key cross-validation — the network simulator's abstract engine
//! semantics must agree with the *physical* optical-field transponder
//! pipeline on identical operands and weights.

use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_core::protocol::tag_request;
use ofpc_core::scenario::Fig1Scenario;
use ofpc_core::{OnFiberNetwork, Solver};
use ofpc_engine::Primitive;
use ofpc_net::sim::{Network, OpSpec};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use ofpc_transponder::compute::{ComputeOp, ComputeResult, PhotonicComputeTransponder};
use ofpc_transponder::frame::Frame;

/// The load-bearing fidelity check: the packet-level simulator's Dot
/// semantics and the optical-field transponder must produce the same
/// result for the same operands/weights (within analog readout error).
#[test]
fn sim_engine_agrees_with_physical_transponder() {
    let weights: Vec<f64> = (0..16).map(|i| (i % 5) as f64 / 5.0).collect();
    let operands: Vec<f64> = (0..16).map(|i| ((i * 7) % 9) as f64 / 9.0).collect();

    // --- Physical path: optical fields through the Fig.-4 pipeline. ---
    let mut rng = SimRng::seed_from_u64(3);
    let mut tp = PhotonicComputeTransponder::ideal(&mut rng);
    tp.load_op(ComputeOp::DotProduct {
        weights: weights.clone(),
    });
    let frame = Frame::compute(Primitive::VectorDotProduct.wire_id(), &b"xval"[..]);
    let field = tp.transmit_compute_frame(&frame, &operands);
    let physical = match tp.process(&field).unwrap().computed {
        Some(ComputeResult::Dot(v)) => v,
        other => panic!("expected a dot result, got {other:?}"),
    };

    // --- Simulator path: the same op through the packet-level WAN. ---
    let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(3));
    net.install_shortest_path_routes();
    let b = NodeId(1);
    net.add_engine(
        b,
        1,
        OpSpec::Dot {
            weights: weights.clone(),
        },
        0.0,
    );
    net.install_compute_detour(Primitive::VectorDotProduct, b);
    let p = tag_request(
        Network::node_addr(NodeId(0), 1),
        Network::node_addr(NodeId(3), 1),
        1,
        Primitive::VectorDotProduct,
        1,
        &operands,
    );
    net.inject(0, NodeId(0), p);
    net.run_to_idle();
    assert!(net.stats.delivered[0].computed);
    // Recompute what the sim engine produced from its slot counters and
    // the exact math it implements (quantized operands).
    let quantized: Vec<f64> = operands
        .iter()
        .map(|&v| (v * 255.0).round() / 255.0)
        .collect();
    let sim_result: f64 = quantized.iter().zip(&weights).map(|(a, w)| a * w).sum();

    let exact: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
    assert!(
        (physical - exact).abs() < 0.05,
        "physical {physical} vs exact {exact}"
    );
    assert!(
        (sim_result - exact).abs() < 0.05,
        "sim {sim_result} vs exact {exact}"
    );
    assert!(
        (physical - sim_result).abs() < 0.05,
        "physical {physical} vs sim {sim_result}"
    );
}

#[test]
fn fig1_scenario_full_stack() {
    let mut s = Fig1Scenario::build(99);
    let mut rng = SimRng::seed_from_u64(4);
    s.inject_traffic(25, 0, 500_000, &mut rng);
    let (delivered, computed) = s.run();
    assert_eq!(delivered, 50);
    assert_eq!(computed, 50);
    // Both engines participated.
    let (b, c) = s.engine_executions();
    assert!(b > 0 && c > 0);
    // Latency is propagation-bound: ~7.3 ms across 1500 km.
    let p50 = s.system.net.stats.latency_percentile_ms(0.5).unwrap();
    assert!((7.0..8.0).contains(&p50), "p50 {p50}");
}

#[test]
fn controller_reallocation_after_failure() {
    // Serve a demand at B; then B's transponder "fails" (engines
    // cleared), the controller re-solves with only C available, and
    // traffic computes again.
    let mut sys = OnFiberNetwork::new(Topology::fig1(), 5);
    let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    sys.upgrade_site(b, 1);
    sys.submit_demand(
        Demand::new(1, a, d, TaskDag::single(Primitive::VectorDotProduct)),
        OpSpec::Dot {
            weights: vec![0.5; 4],
        },
    );
    let plan = sys
        .allocate_and_apply(Solver::Exact {
            node_budget: 100_000,
        })
        .clone();
    assert_eq!(plan.installs[0].node, b);

    // Failure: clear B, upgrade C, re-run the controller on a fresh
    // system (the controller would do this on heartbeat loss).
    let mut sys2 = OnFiberNetwork::new(Topology::fig1(), 5);
    sys2.upgrade_site(c, 1);
    sys2.submit_demand(
        Demand::new(1, a, d, TaskDag::single(Primitive::VectorDotProduct)),
        OpSpec::Dot {
            weights: vec![0.5; 4],
        },
    );
    let plan2 = sys2
        .allocate_and_apply(Solver::Exact {
            node_budget: 100_000,
        })
        .clone();
    assert_eq!(plan2.installs[0].node, c, "reallocation moved the op to C");
    let p = tag_request(
        Network::node_addr(a, 1),
        Network::node_addr(d, 1),
        1,
        Primitive::VectorDotProduct,
        1,
        &[0.5; 4],
    );
    sys2.net.inject(0, a, p);
    sys2.net.run_to_idle();
    assert!(sys2.net.stats.delivered[0].computed);
}

#[test]
fn multi_primitive_chain_demand_executes_both_tasks() {
    // A demand whose DAG is P1 → P3: the packet must visit two engines.
    let mut sys = OnFiberNetwork::new(Topology::fig1(), 6);
    let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    sys.upgrade_site(b, 1);
    sys.upgrade_site(c, 1);
    sys.submit_chain_demand(
        Demand::new(
            1,
            a,
            d,
            TaskDag::chain(vec![
                Primitive::VectorDotProduct,
                Primitive::NonlinearFunction,
            ]),
        ),
        vec![
            OpSpec::Dot {
                weights: vec![0.5; 4],
            },
            OpSpec::Nonlinear,
        ],
    );
    let plan = sys.allocate_and_apply(Solver::Greedy).clone();
    assert!(plan.unsatisfied.is_empty(), "{plan:?}");
    assert_eq!(plan.installs.len(), 2, "two tasks, two installs");
}

#[test]
fn plain_and_compute_traffic_coexist() {
    let mut net = Network::new(Topology::abilene(), SimRng::seed_from_u64(8));
    net.install_shortest_path_routes();
    let denver = net.topo.find_node("Denver").unwrap();
    net.add_engine(
        denver,
        1,
        OpSpec::Match {
            pattern: vec![true; 8],
        },
        0.0,
    );
    net.install_compute_detour(Primitive::PatternMatching, denver);
    let seattle = net.topo.find_node("Seattle").unwrap();
    let ny = net.topo.find_node("NewYork").unwrap();
    for i in 0..40u32 {
        let src = Network::node_addr(seattle, 1);
        let dst = Network::node_addr(ny, 1);
        let p = if i % 2 == 0 {
            ofpc_net::packet::Packet::data(src, dst, i, vec![0u8; 200])
        } else {
            tag_request(src, dst, i, Primitive::PatternMatching, 1, &[1.0; 8])
        };
        net.inject(i as u64 * 100_000, seattle, p);
    }
    net.run_to_idle();
    assert_eq!(net.stats.delivered_count(), 40);
    assert_eq!(net.stats.computed_count(), 20);
    // Plain packets beat compute packets on latency (no detour).
    let plain_mean: f64 = net
        .stats
        .delivered
        .iter()
        .filter(|r| !r.computed)
        .map(|r| r.latency_ms())
        .sum::<f64>()
        / 20.0;
    let compute_mean: f64 = net
        .stats
        .delivered
        .iter()
        .filter(|r| r.computed)
        .map(|r| r.latency_ms())
        .sum::<f64>()
        / 20.0;
    // Denver sits essentially on the shortest Seattle→NY path, so the
    // "detour" can tie with the plain path (compute packets are smaller
    // and serialize a few ns faster); allow a 1 µs tolerance.
    assert!(
        compute_mean >= plain_mean - 1e-3,
        "detour latency {compute_mean} must not undercut shortest-path {plain_mean}"
    );
}
