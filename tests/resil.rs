//! Resilience integration gates: the E18 storm comparison must separate
//! protected from unprotected serving — zero lost work for the
//! redundancy modes under a storm that demonstrably hurts the reactive
//! baseline — at an energy price inside the acceptance gates, and the
//! degradation ladder (disjoint multipath → serialized same-path →
//! declared unprotected) must engage honestly on plants that cannot
//! supply path diversity.

use ofpc_bench::resil::{run_e18, E18Config};
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_resil::{MultipathPlan, RedundancyMode};
use ofpc_serve::{
    ArrivalSpec, BatchPolicy, ServeConfig, ServeRuntime, ServiceModel, SiteSpec, TenantSpec,
};
use ofpc_transponder::compute::ComputeTransponderConfig;

/// The ISSUE's headline contract, end to end: one seeded storm, three
/// protection modes, byte-identical arrivals. The storm must force
/// failures on the unprotected baseline; both proactive modes must
/// deliver every request; and the redundancy machinery itself must be
/// visibly exercised (replicas absorbing losses, parity reconstructing).
#[test]
fn storm_forces_baseline_failures_but_protected_modes_lose_nothing() {
    let rep = run_e18(&WorkerPool::new(2), &E18Config::mini());

    let base = &rep.runs[0];
    assert_eq!(base.mode, "unprotected");
    assert!(
        base.failed > 0,
        "the storm must shed/expire work on the reactive baseline, \
         else the comparison proves nothing"
    );
    assert!(base.availability < 1.0);
    assert!(rep.link_cuts >= rep.config.storm.bursts);

    for run in &rep.runs[1..] {
        assert_eq!(run.failed, 0, "{}: zero lost work required", run.mode);
        assert_eq!(run.report.arrivals, run.report.completed);
        assert_eq!(run.availability, 1.0);
        assert_eq!(run.resil.unsettled_sets, 0, "{}: stranded member", run.mode);
        assert_eq!(
            run.resil.sets_lost, 0,
            "{}: a set exceeded its budget",
            run.mode
        );
        assert!(run.resil.link_cuts_seen as usize >= rep.config.storm.bursts);
    }

    let replica = &rep.runs[1];
    assert!(replica.resil.replica_sets > 0);
    assert!(
        replica.resil.losses_absorbed > 0,
        "the storm must actually kill replica members for the survivor to cover"
    );
    let parity = &rep.runs[2];
    assert!(parity.resil.parity_sets > 0);
    assert!(
        parity.resil.reconstructions > 0 && parity.resil.reconstructed_requests > 0,
        "lost parity-group members must be reconstructed, not retried"
    );
    assert!(parity.resil.reconstruct_energy_j > 0.0);
}

/// The energy side of the same contract: protection may not cost more
/// than the gates allow, and coding must undercut full replication.
#[test]
fn protection_energy_overhead_is_within_the_acceptance_gates() {
    let rep = run_e18(&WorkerPool::new(2), &E18Config::mini());
    let replica = &rep.runs[1];
    let parity = &rep.runs[2];
    assert!(
        replica.energy_overhead <= 2.1,
        "replica {:.3}x above the 2.1x gate",
        replica.energy_overhead
    );
    assert!(
        parity.energy_overhead <= 1.5,
        "parity {:.3}x above the 1.5x gate",
        parity.energy_overhead
    );
    assert!(
        parity.energy_overhead < replica.energy_overhead,
        "parity {:.3}x must undercut replica {:.3}x",
        parity.energy_overhead,
        replica.energy_overhead
    );
}

/// Graceful degradation on a plant with no diversity to offer: a line
/// topology funnels both sites through the same first span, so replica
/// sets cannot be placed on disjoint paths. The runtime must serialize
/// them onto the one path — declared, counted, and still delivering
/// everything — rather than silently pretending to be protected.
#[test]
fn line_topology_serializes_replicas_and_still_delivers_everything() {
    let topo = Topology::line(3, 10.0);
    let plan = MultipathPlan::plan(&topo, NodeId(0), &[NodeId(1), NodeId(2)]);
    assert_eq!(plan.diversity(), 1, "a line has exactly one entry span");

    let sites = vec![
        SiteSpec {
            node: NodeId(1),
            slots: 2,
            access_ps: plan.routes[0].route.delay_ps,
        },
        SiteSpec {
            node: NodeId(2),
            slots: 2,
            access_ps: plan.routes[1].route.delay_ps,
        },
    ];
    let config = ServeConfig {
        seed: 181,
        horizon_ps: 1_000_000_000,
        drain_grace_ps: 600_000_000,
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ps: 20_000_000,
        },
        tenants: vec![TenantSpec {
            name: "steady".to_string(),
            weight: 1,
            queue_capacity: 256,
            arrivals: ArrivalSpec::Poisson { rate_rps: 4e5 },
            primitive: ofpc_engine::Primitive::VectorDotProduct,
            operand_len: 1024,
            deadline_ps: u64::MAX,
        }],
        verify_every: 0,
    };
    let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 2);
    let (report, resil) = ServeRuntime::new(config, model, sites)
        .with_redundancy(&[RedundancyMode::Replica], plan)
        .run_with_resil();

    assert!(report.arrivals > 0);
    assert_eq!(report.arrivals, report.completed, "no work may be lost");
    assert!(resil.replica_sets > 0);
    assert_eq!(
        resil.serialized_fallback_sets, resil.replica_sets,
        "every set on a diversity-1 plant must be declared serialized"
    );
    assert_eq!(resil.unprotected_downgrades, 0);
    assert_eq!(resil.unsettled_sets, 0);
}
