//! Ingest front-end property suite: hostile frames are typed errors
//! (never panics), the zero-copy frame view round-trips bit-identically
//! with the owned packet parser, fairness survives rebalance
//! boundaries, and per-tenant state stays bounded by backlog rather
//! than population.

use bytes::Bytes;
use ofpc_bench::ingest::mini_config;
use ofpc_engine::Primitive;
use ofpc_ingest::IngestFrontEnd;
use ofpc_net::{Addr, FrameError, Packet, PchFrame, PchHeader};
use ofpc_par::WorkerPool;
use ofpc_photonics::SimRng;

const PRIMS: [Primitive; 3] = [
    Primitive::VectorDotProduct,
    Primitive::PatternMatching,
    Primitive::NonlinearFunction,
];

/// A random well-formed compute frame: payload holds at least the
/// declared operand elements, possibly with trailing padding.
fn random_frame(rng: &mut SimRng) -> Bytes {
    let operand_len = rng.below(300) as u16;
    let padding = rng.below(16);
    let payload: Vec<u8> = (0..operand_len as usize + padding)
        .map(|_| rng.below(256) as u8)
        .collect();
    let pch = PchHeader::request(PRIMS[rng.below(3)], rng.below(65_536) as u16, operand_len);
    Packet::compute(
        Addr(rng.next_u64() as u32),
        Addr(rng.next_u64() as u32),
        rng.next_u64() as u32,
        pch,
        payload,
    )
    .to_wire()
}

#[test]
fn corrupted_frames_return_typed_errors_and_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x21F);
    let mut seen_truncated = 0u32;
    let mut seen_bad_proto = 0u32;
    let mut seen_bad_primitive = 0u32;
    let mut seen_overrun = 0u32;
    let mut seen_not_compute = 0u32;
    for _ in 0..2_000 {
        let wire = random_frame(&mut rng);
        let mut raw = wire.to_vec();
        // One of five corruption families, chosen at random. Parsing
        // must return a value either way — any panic fails the test.
        match rng.below(5) {
            0 => raw.truncate(rng.below(raw.len() + 1)),
            1 => raw[15] = rng.below(256) as u8, // protocol byte
            2 => raw[16] = rng.below(256) as u8, // PCH primitive id
            3 => {
                // Operand-count claim beyond the payload.
                let claim = (raw.len() as u16).saturating_add(rng.below(500) as u16);
                raw[22..24].copy_from_slice(&claim.to_be_bytes());
            }
            _ => {
                // A single random byte flip anywhere in the frame.
                let at = rng.below(raw.len());
                raw[at] ^= 1 << rng.below(8);
            }
        }
        match PchFrame::parse(Bytes::from(raw)) {
            Ok(frame) => {
                // Still-valid frames must still serve every accessor.
                let _ = (frame.src(), frame.dst(), frame.id(), frame.payload());
            }
            Err(FrameError::Truncated { need, have }) => {
                assert!(need > have, "Truncated must name the shortfall");
                seen_truncated += 1;
            }
            Err(FrameError::BadProto(_)) => seen_bad_proto += 1,
            Err(FrameError::NotCompute) => seen_not_compute += 1,
            Err(FrameError::BadPrimitive(_)) => seen_bad_primitive += 1,
            Err(FrameError::OperandOverrun {
                operand_len,
                payload_len,
            }) => {
                assert!(operand_len > payload_len);
                seen_overrun += 1;
            }
        }
    }
    // The seeded sweep must actually reach the main rejection families.
    assert!(seen_truncated > 50, "truncations under-sampled");
    assert!(seen_bad_proto > 50, "bad protocols under-sampled");
    assert!(seen_bad_primitive > 50, "bad primitives under-sampled");
    assert!(seen_overrun > 50, "operand overruns under-sampled");
    let _ = seen_not_compute; // possible (proto byte landing on DATA) but not guaranteed
}

#[test]
fn zero_copy_view_round_trips_with_owned_parser() {
    let mut rng = SimRng::seed_from_u64(0x21E);
    for _ in 0..500 {
        let wire = random_frame(&mut rng);
        let base = wire.as_ptr() as usize;
        let owned = Packet::from_wire(wire.clone()).expect("owned parse");
        let view = PchFrame::parse(wire).expect("view parse");
        assert_eq!(view.src(), owned.src);
        assert_eq!(view.dst(), owned.dst);
        assert_eq!(view.id(), owned.id);
        assert_eq!(view.ttl(), owned.ttl);
        assert_eq!(view.header(), owned.pch.expect("compute frame"));
        assert_eq!(view.payload(), owned.payload, "payload bytes diverged");
        assert_eq!(view.wire_bytes(), owned.wire_bytes());
        // The view's payload is a slice of the original allocation —
        // zero bytes copied on the ingest hot path.
        let payload = view.payload();
        if !payload.is_empty() {
            let off = payload.as_ptr() as usize - base;
            assert!(off >= 24, "payload escaped the frame buffer");
        }
    }
}

#[test]
fn fairness_holds_across_rebalance_boundaries() {
    let pool = WorkerPool::sequential();
    let with = IngestFrontEnd::new(mini_config()).run(&pool);
    let mut frozen_cfg = mini_config();
    frozen_cfg.rebalance.every_epochs = 0;
    let frozen = IngestFrontEnd::new(frozen_cfg).run(&pool);

    assert!(with.rebalance.migrations > 0, "rebalance never engaged");
    assert_eq!(frozen.rebalance.migrations, 0);

    for report in [&with, &frozen] {
        // Both runs (report() already asserted conservation) must keep
        // the overload on the class that overdrives its queues: every
        // shed is a whale bounded-queue rejection, the 5,000 small
        // tenants shed nothing — migrating hot tenants and re-splitting
        // slots mid-run must not change who pays for the overload.
        let class = |name: &str| {
            report
                .classes
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing class {name}"))
        };
        let whale = class("whale");
        assert!(report.shed > 0, "mini must be overloaded");
        assert_eq!(whale.shed_queue_full, report.shed);
        assert_eq!(class("steady").shed_queue_full, 0);
        assert_eq!(class("tail").shed_queue_full, 0);
        assert!(
            whale.goodput_per_weight >= class("steady").goodput_per_weight,
            "whales must keep at least their weight share"
        );
    }

    // Migrated tenants carry their queued work: total slots conserved
    // and goodput within 20% of the frozen-shards run.
    let slots: usize = with.shard_reports.iter().map(|s| s.slots).sum();
    let frozen_slots: usize = frozen.shard_reports.iter().map(|s| s.slots).sum();
    assert_eq!(slots, frozen_slots, "rebalance leaked slot inventory");
    let ratio = with.goodput_rps / frozen.goodput_rps;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "rebalancing changed goodput by {ratio:.2}x"
    );
}

#[test]
fn admission_state_is_bounded_by_backlog_not_population() {
    let report = IngestFrontEnd::new(mini_config()).run(&WorkerPool::sequential());
    let held: u64 = report
        .shard_reports
        .iter()
        .map(|s| s.active_tenant_state as u64)
        .sum();
    assert!(
        held <= report.unfinished + u64::from(report.shards),
        "admission state ({held}) outgrew the backlog ({})",
        report.unfinished
    );
    assert!(
        held < u64::from(report.tenants) / 10,
        "state held ({held}) approaches population scale ({})",
        report.tenants
    );
}
