//! Property-style tests over the core invariants: serialization
//! round-trips, physical conservation laws, analog-compute accuracy
//! envelopes, and solver feasibility — each over randomized inputs
//! rather than hand-picked cases, driven by the workspace's own
//! deterministic [`SimRng`] so failures replay exactly.

use bytes::Bytes;
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::is_feasible;
use ofpc_controller::options::{AllocOption, ProblemInstance};
use ofpc_engine::dot::DotProductUnit;
use ofpc_engine::matcher::PatternMatcher;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::{Addr, NodeId, Prefix};
use ofpc_photonics::coupler::Coupler;
use ofpc_photonics::signal::OpticalField;
use ofpc_photonics::units;
use ofpc_photonics::SimRng;
use ofpc_transponder::frame::Frame;

const CASES: usize = 64;

const fn seed() -> u64 {
    0x0f9c_5eed_2026_0806
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
}

fn random_bools(rng: &mut SimRng, min_len: usize, max_len: usize) -> Vec<bool> {
    let len = min_len + rng.below(max_len - min_len + 1);
    (0..len).map(|_| rng.next_u64() & 1 == 1).collect()
}

// ---------- Wire-format round trips ----------

#[test]
fn packet_wire_round_trip() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("packet-wire");
    for case in 0..CASES {
        let payload = random_bytes(&mut rng, 512);
        let src = Addr(rng.next_u64() as u32);
        let dst = Addr(rng.next_u64() as u32);
        let id = rng.next_u64() as u32;
        let p = if case % 2 == 0 {
            let pch = PchHeader::request(
                ofpc_engine::Primitive::PatternMatching,
                rng.next_u64() as u16,
                payload.len().min(u16::MAX as usize) as u16,
            );
            Packet::compute(src, dst, id, pch, payload)
        } else {
            Packet::data(src, dst, id, payload)
        };
        let parsed = Packet::from_wire(p.to_wire()).expect("round trip");
        assert_eq!(parsed, p);
    }
}

#[test]
fn frame_bits_round_trip() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("frame-bits");
    for _ in 0..CASES {
        let frame = Frame {
            op: (rng.next_u64() & 0xff) as u8,
            result: [
                (rng.next_u64() & 0xff) as u8,
                (rng.next_u64() & 0xff) as u8,
                (rng.next_u64() & 0xff) as u8,
                (rng.next_u64() & 0xff) as u8,
            ],
            payload: Bytes::from(random_bytes(&mut rng, 256)),
        };
        let (parsed, consumed) = Frame::from_bits(&frame.to_bits()).expect("round trip");
        assert_eq!(parsed, frame);
        assert_eq!(consumed, frame.line_bits());
    }
}

#[test]
fn frame_single_bit_flip_never_parses_silently() {
    // Flipping any bit after the preamble must be caught by the CRC
    // (or produce a parse error) — never a silently different frame.
    let mut rng = SimRng::seed_from_u64(seed()).derive("frame-flip");
    for _ in 0..CASES {
        let mut payload = random_bytes(&mut rng, 63);
        payload.push((rng.next_u64() & 0xff) as u8); // non-empty
        let frame = Frame::data(payload);
        let mut bits = frame.to_bits();
        let flip = 16 + rng.below(bits.len() - 16);
        bits[flip] = !bits[flip];
        if let Ok((parsed, _)) = Frame::from_bits(&bits) {
            assert_eq!(parsed, frame, "silent corruption at bit {flip}");
        } // Err = detected — good
    }
}

// ---------- Physical conservation ----------

#[test]
fn coupler_conserves_power() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("coupler");
    for _ in 0..CASES {
        let kappa = rng.uniform();
        let p_a = 1e-6 + rng.uniform() * (1e-2 - 1e-6);
        let p_b = 1e-6 + rng.uniform() * (1e-2 - 1e-6);
        let phase = rng.uniform() * std::f64::consts::TAU;
        let c = Coupler::new(kappa, 0.0);
        let a = OpticalField::cw(4, p_a, 10e9, 1550e-9);
        let mut b = OpticalField::cw(4, p_b, 10e9, 1550e-9);
        b.rotate_phase(phase);
        let (o1, o2) = c.combine(&a, &b);
        let p_in = a.mean_power_w() + b.mean_power_w();
        let p_out = o1.mean_power_w() + o2.mean_power_w();
        assert!(
            (p_in - p_out).abs() / p_in < 1e-9,
            "in {p_in} out {p_out} (kappa {kappa}, phase {phase})"
        );
    }
}

#[test]
fn attenuation_never_amplifies() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("atten");
    for _ in 0..CASES {
        let db = rng.uniform() * 60.0;
        let p = 1e-9 + rng.uniform() * (1e-1 - 1e-9);
        let mut f = OpticalField::cw(8, p, 10e9, 1550e-9);
        f.attenuate_db(db);
        assert!(f.mean_power_w() <= p * (1.0 + 1e-12), "db {db} p {p}");
    }
}

#[test]
fn dbm_watt_round_trip() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("dbm");
    for _ in 0..CASES {
        let dbm = -60.0 + rng.uniform() * 80.0;
        let back = units::watts_to_dbm(units::dbm_to_watts(dbm));
        assert!((back - dbm).abs() < 1e-9, "dbm {dbm} back {back}");
    }
}

// ---------- Analog compute envelopes ----------

#[test]
fn ideal_dot_product_tracks_exact() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("dot-exact");
    for _ in 0..CASES {
        let n = 1 + rng.below(47);
        let a: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let mut unit = DotProductUnit::ideal();
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = unit.dot_nonneg(&a, &b);
        // 12-bit converters: error bounded well under 0.5% of n.
        assert!(
            (got - exact).abs() <= 0.005 * n as f64 + 0.01,
            "got {got} exact {exact} (n {n})"
        );
    }
}

#[test]
fn matcher_recovers_exact_hamming() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("matcher");
    for _ in 0..CASES {
        let data = random_bools(&mut rng, 1, 63);
        let mut pattern = data.clone();
        for _ in 0..rng.below(8) {
            let i = rng.below(pattern.len());
            pattern[i] = !pattern[i];
        }
        let true_distance = data.iter().zip(&pattern).filter(|(a, b)| a != b).count() as u64;
        let mut m = PatternMatcher::ideal();
        let r = m.match_block(&data, &pattern);
        assert_eq!(r.hamming, true_distance);
    }
}

// ---------- Addressing ----------

#[test]
fn prefix_contains_its_network() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("prefix");
    for _ in 0..CASES {
        let p = Prefix::new(Addr(rng.next_u64() as u32), rng.below(33) as u8);
        assert!(p.contains(p.network()));
        // Display/parse round trip.
        let parsed: Prefix = p.to_string().parse().expect("parse");
        assert_eq!(parsed, p);
    }
}

#[test]
fn longer_prefixes_are_subsets() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("prefix-subset");
    for _ in 0..CASES {
        let addr = Addr(rng.next_u64() as u32);
        let len = 1 + rng.below(32) as u8;
        let longer = Prefix::new(addr, len);
        let shorter = Prefix::new(addr, len - 1);
        // Any address in the longer prefix is in the shorter one.
        assert!(shorter.contains(longer.network()));
    }
}

// ---------- Solver feasibility ----------

#[test]
fn solvers_always_return_feasible_allocations() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("solvers");
    for _ in 0..CASES {
        let demands = 1 + rng.below(9);
        let options: Vec<Vec<AllocOption>> = (0..demands)
            .map(|_| {
                vec![AllocOption {
                    placement: vec![NodeId(rng.below(4) as u32)],
                    cost: 0.1 + rng.uniform() * 4.9,
                    added_latency_ps: 0,
                }]
            })
            .collect();
        let slots: Vec<usize> = (0..4).map(|_| rng.below(3)).collect();
        let inst = ProblemInstance {
            node_slots: slots,
            options,
        };
        let exact = solve_exact(&inst, 100_000);
        assert!(is_feasible(&inst, &exact.allocation));
        let greedy = solve_greedy(&inst);
        assert!(is_feasible(&inst, &greedy.allocation));
        // Exact dominates greedy.
        assert!(exact.score >= greedy.score - 1e-9);
    }
}

// ---------- Apps + extensions ----------

use ofpc_apps::iprouting::{PhotonicLpm, TcamModel};
use ofpc_apps::secure_match::encrypt_bits;
use ofpc_apps::video::{rle_decode, rle_encode};
use ofpc_core::distributed::split_weights;
use ofpc_transponder::coherent::{qpsk_map, qpsk_slice, CoherentRx, CoherentTx};

#[test]
fn rle_round_trips_any_sequence() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("rle-rt");
    for _ in 0..32 {
        let n = rng.below(128);
        let coeffs: Vec<i32> = (0..n).map(|_| rng.below(600) as i32 - 300).collect();
        let enc = rle_encode(&coeffs);
        assert_eq!(rle_decode(&enc, coeffs.len()), coeffs);
    }
}

#[test]
fn rle_never_expands() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("rle-size");
    for _ in 0..32 {
        let n = 1 + rng.below(63);
        let coeffs: Vec<i32> = (0..n).map(|_| rng.below(20) as i32 - 10).collect();
        // Each symbol covers ≥1 coefficient, so symbol count ≤ input len.
        let enc = rle_encode(&coeffs);
        assert!(enc.len() <= coeffs.len());
    }
}

#[test]
fn photonic_lpm_always_agrees_with_tcam() {
    let mut outer = SimRng::seed_from_u64(seed()).derive("lpm");
    for case in 0..32u64 {
        let mut rng = outer.derive(&format!("case-{case}"));
        let rules = ofpc_apps::iprouting::random_rules(12, &mut rng);
        let mut tcam = TcamModel::new(rules.clone());
        let mut plpm = PhotonicLpm::ideal(rules);
        let lookups = 1 + rng.below(11);
        for _ in 0..lookups {
            let a = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            assert_eq!(plpm.lookup(a), tcam.lookup(a));
        }
        let _ = outer.next_u64();
    }
}

#[test]
fn tcam_priority_is_rule_order_independent() {
    // Shuffling the rule insertion order never changes LPM results.
    let mut outer = SimRng::seed_from_u64(seed()).derive("tcam-order");
    for case in 0..32u64 {
        let mut rng = outer.derive(&format!("case-{case}"));
        let rules = ofpc_apps::iprouting::random_rules(10, &mut rng);
        let mut shuffled = rules.clone();
        rng.shuffle(&mut shuffled);
        let mut a_tbl = TcamModel::new(rules);
        let mut b_tbl = TcamModel::new(shuffled);
        for _ in 0..8 {
            let addr = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            let (a, b) = (a_tbl.lookup(addr), b_tbl.lookup(addr));
            // Ports may differ only when two same-length prefixes both
            // match (ambiguous tables); with random_rules collisions are
            // rare, but both must at least be Some/None-consistent.
            if a != b {
                assert_eq!(a.is_some(), b.is_some());
            }
        }
    }
}

#[test]
fn phase_xor_encryption_preserves_hamming_distance() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("phase-xor");
    for _ in 0..32 {
        let data = random_bools(&mut rng, 1, 63);
        let mut other = data.clone();
        for _ in 0..rng.below(6) {
            let i = rng.below(other.len());
            other[i] = !other[i];
        }
        let key = rng.next_u64();
        let plain_dist = data.iter().zip(&other).filter(|(a, b)| a != b).count();
        let enc_a = encrypt_bits(&data, key);
        let enc_b = encrypt_bits(&other, key);
        let cipher_dist = enc_a.iter().zip(&enc_b).filter(|(a, b)| a != b).count();
        assert_eq!(plain_dist, cipher_dist);
    }
}

#[test]
fn split_weights_partitions_exactly() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("split-weights");
    for _ in 0..32 {
        let n = 1 + rng.below(63);
        let weights: Vec<f64> = (0..n).map(|_| rng.uniform() * 2.0 - 1.0).collect();
        let sites = 1 + rng.below(7.min(n));
        let site_ids: Vec<NodeId> = (0..sites).map(|i| NodeId(i as u32)).collect();
        let chunks = split_weights(&weights, &site_ids);
        let mut rebuilt = Vec::new();
        for (offset, chunk) in &chunks {
            assert_eq!(*offset, rebuilt.len());
            assert!(!chunk.is_empty());
            rebuilt.extend(chunk.iter().copied());
        }
        assert_eq!(rebuilt, weights);
        // Balanced: sizes differ by at most 1.
        let sizes: Vec<usize> = chunks.iter().map(|(_, c)| c.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }
}

#[test]
fn qpsk_map_slice_round_trip() {
    for b0 in [false, true] {
        for b1 in [false, true] {
            let (i, q) = qpsk_map(b0, b1);
            assert_eq!(qpsk_slice(i, q), (b0, b1));
        }
    }
}

#[test]
fn coherent_loopback_any_bits() {
    let mut rng = SimRng::seed_from_u64(seed()).derive("coherent");
    for _ in 0..32 {
        let bits = random_bools(&mut rng, 2, 127);
        let mut dev_rng = SimRng::seed_from_u64(0);
        let mut tx = CoherentTx::ideal(&mut dev_rng);
        let mut rx = CoherentRx::ideal(&mut dev_rng);
        let field = tx.transmit(&bits);
        let got = rx.receive(&field, 0.0);
        assert_eq!(&got[..bits.len()], &bits[..]);
    }
}

// ---------- Graph-compiler precision contract ----------

/// The lowering pass admits a DNN stage photonically because
/// [`ofpc_graph::lower::ErrorBudget`] predicts enough effective bits at
/// the stage's operand length. This property closes the loop on real
/// (simulated-physics) hardware:
///
/// 1. a realistic P1 unit, measured empirically, must deliver at least
///    the bits the budget promised (the margin is the headroom);
/// 2. a full photonic DNN chain vs its exact f64 digital replica must
///    keep its end-to-end error within that same bit budget, referenced
///    to the stage's physical full scale like the prediction is;
/// 3. whenever the f64 baseline's decision margin exceeds the budget's
///    error allowance, photonic classification must agree — the budget
///    is exactly the contract that makes photonic lowering safe.
#[test]
fn photonic_dnn_chain_stays_within_the_lowering_budget() {
    use ofpc_engine::dnn::{argmax, Mlp, PhotonicDnn};
    use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
    use ofpc_engine::mvm::PhotonicMatVec;
    use ofpc_engine::nonlinear::{NonlinearConfig, NonlinearUnit};
    use ofpc_engine::precision::measure_precision;
    use ofpc_graph::lower::ErrorBudget;

    const DIM: usize = 16;
    let mut rng = SimRng::seed_from_u64(seed()).derive("dnn-budget");
    let budget = ErrorBudget::realistic();
    let promised_bits = budget.effective_bits(DIM);

    // (1) The budget's own model, measured: realistic P1 at n = DIM.
    let mut unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut rng.derive("p1"));
    unit.calibrate(DIM);
    let report = measure_precision(&mut unit, DIM, CASES, &mut rng.derive("trials"));
    assert!(
        report.effective_bits >= promised_bits,
        "P1 measured {:.2} bits, budget promised {promised_bits:.2}",
        report.effective_bits
    );

    // (2) + (3): the end-to-end chain against its f64 replica.
    let mlp = Mlp::new_random(&[DIM, DIM, 8], &mut rng);
    let engine = {
        let mut erng = rng.derive("engine");
        let mut e = PhotonicMatVec::new(DotUnitConfig::realistic(), 4, &mut erng);
        e.calibrate(DIM);
        e
    };
    let calib: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.uniform()).collect())
        .collect();
    let mut pdnn = PhotonicDnn::new(&mlp, engine, NonlinearUnit::ideal(), &calib);
    let curve = {
        let mut p3 = NonlinearUnit::new(NonlinearConfig::ideal(), &mut rng.derive("curve"));
        p3.calibrate();
        p3.transfer_curve(64)
    };

    // Output-stage physical full scale: DIM unit-range operands times
    // the layer weight scale — the reference predicted_effective_bits
    // uses, so the comparison is apples to apples.
    let full_scale = DIM as f64 * mlp.layers.last().expect("has layers").max_abs_weight();
    let allowance = full_scale * (-promised_bits).exp2();
    let mut sq_sum = 0.0;
    let mut samples = 0usize;
    let mut confident = 0usize;
    let mut confident_agree = 0usize;
    for _ in 0..CASES {
        let x: Vec<f64> = (0..DIM).map(|_| rng.uniform()).collect();
        let photonic = pdnn.forward(&x);
        let twin = pdnn.digital_twin_forward(&x, &curve);
        for (p, t) in photonic.iter().zip(&twin) {
            let e = (p - t) / full_scale;
            sq_sum += e * e;
            samples += 1;
        }
        // Decision margin of the baseline: top logit minus runner-up.
        let top = argmax(&twin);
        let margin = twin[top]
            - twin
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != top)
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
        if margin > 4.0 * allowance {
            confident += 1;
            if argmax(&photonic) == top {
                confident_agree += 1;
            }
        }
    }
    let rms = (sq_sum / samples as f64).sqrt();
    let observed_bits = (1.0 / rms).log2();
    assert!(
        observed_bits >= promised_bits,
        "photonic chain delivered {observed_bits:.2} effective bits, \
         budget promised {promised_bits:.2}"
    );
    assert!(confident * 4 >= CASES, "margin threshold starves the test");
    assert_eq!(
        confident_agree, confident,
        "photonic argmax flipped a decision whose margin beat the budget"
    );
}
