//! Property-based tests (proptest) over the core invariants:
//! serialization round-trips, physical conservation laws, analog-compute
//! accuracy envelopes, and solver feasibility — each over randomized
//! inputs rather than hand-picked cases.

use bytes::Bytes;
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::is_feasible;
use ofpc_controller::options::{AllocOption, ProblemInstance};
use ofpc_engine::dot::DotProductUnit;
use ofpc_engine::matcher::PatternMatcher;
use ofpc_net::packet::Packet;
use ofpc_net::pch::PchHeader;
use ofpc_net::{Addr, NodeId, Prefix};
use ofpc_photonics::coupler::Coupler;
use ofpc_photonics::signal::OpticalField;
use ofpc_photonics::units;
use ofpc_transponder::frame::Frame;
use proptest::prelude::*;

proptest! {
    // ---------- Wire-format round trips ----------

    #[test]
    fn packet_wire_round_trip(
        src in any::<u32>(),
        dst in any::<u32>(),
        id in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        compute in any::<bool>(),
        op_id in any::<u16>(),
    ) {
        let p = if compute {
            let pch = PchHeader::request(
                ofpc_engine::Primitive::PatternMatching,
                op_id,
                payload.len().min(u16::MAX as usize) as u16,
            );
            Packet::compute(Addr(src), Addr(dst), id, pch, payload)
        } else {
            Packet::data(Addr(src), Addr(dst), id, payload)
        };
        let parsed = Packet::from_wire(p.to_wire()).expect("round trip");
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn frame_bits_round_trip(
        op in 0u8..=255,
        result in any::<[u8; 4]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let frame = Frame { op, result, payload: Bytes::from(payload) };
        let (parsed, consumed) = Frame::from_bits(&frame.to_bits()).expect("round trip");
        prop_assert_eq!(&parsed, &frame);
        prop_assert_eq!(consumed, frame.line_bits());
    }

    #[test]
    fn frame_single_bit_flip_never_parses_silently(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip in 16usize..100,
    ) {
        // Flipping any bit after the preamble must be caught by the CRC
        // (or produce a parse error) — never a silently different frame.
        let frame = Frame::data(payload);
        let mut bits = frame.to_bits();
        let flip = 16 + (flip % (bits.len() - 16));
        bits[flip] = !bits[flip];
        if let Ok((parsed, _)) = Frame::from_bits(&bits) {
            prop_assert_eq!(parsed, frame, "silent corruption");
        } // Err = detected — good
    }

    // ---------- Physical conservation ----------

    #[test]
    fn coupler_conserves_power(
        kappa in 0.0f64..=1.0,
        p_a in 1e-6f64..1e-2,
        p_b in 1e-6f64..1e-2,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let c = Coupler::new(kappa, 0.0);
        let a = OpticalField::cw(4, p_a, 10e9, 1550e-9);
        let mut b = OpticalField::cw(4, p_b, 10e9, 1550e-9);
        b.rotate_phase(phase);
        let (o1, o2) = c.combine(&a, &b);
        let p_in = a.mean_power_w() + b.mean_power_w();
        let p_out = o1.mean_power_w() + o2.mean_power_w();
        prop_assert!((p_in - p_out).abs() / p_in < 1e-9, "in {} out {}", p_in, p_out);
    }

    #[test]
    fn attenuation_never_amplifies(db in 0.0f64..60.0, p in 1e-9f64..1e-1) {
        let mut f = OpticalField::cw(8, p, 10e9, 1550e-9);
        f.attenuate_db(db);
        prop_assert!(f.mean_power_w() <= p * (1.0 + 1e-12));
    }

    #[test]
    fn dbm_watt_round_trip(dbm in -60.0f64..20.0) {
        let back = units::watts_to_dbm(units::dbm_to_watts(dbm));
        prop_assert!((back - dbm).abs() < 1e-9);
    }

    // ---------- Analog compute envelopes ----------

    #[test]
    fn ideal_dot_product_tracks_exact(
        pairs in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..48),
    ) {
        let mut unit = DotProductUnit::ideal();
        let a: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
        let b: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = unit.dot_nonneg(&a, &b);
        // 12-bit converters: error bounded well under 0.5% of n.
        prop_assert!((got - exact).abs() <= 0.005 * a.len() as f64 + 0.01,
            "got {} exact {}", got, exact);
    }

    #[test]
    fn matcher_recovers_exact_hamming(
        data in proptest::collection::vec(any::<bool>(), 1..64),
        flips in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut pattern = data.clone();
        for &f in &flips {
            let i = f % pattern.len();
            pattern[i] = !pattern[i];
        }
        let true_distance = data.iter().zip(&pattern).filter(|(a, b)| a != b).count() as u64;
        let mut m = PatternMatcher::ideal();
        let r = m.match_block(&data, &pattern);
        prop_assert_eq!(r.hamming, true_distance);
    }

    // ---------- Addressing ----------

    #[test]
    fn prefix_contains_its_network(addr in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Addr(addr), len);
        prop_assert!(p.contains(p.network()));
        // Display/parse round trip.
        let parsed: Prefix = p.to_string().parse().expect("parse");
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn longer_prefixes_are_subsets(addr in any::<u32>(), len in 1u8..=32) {
        let longer = Prefix::new(Addr(addr), len);
        let shorter = Prefix::new(Addr(addr), len - 1);
        // Any address in the longer prefix is in the shorter one.
        prop_assert!(shorter.contains(longer.network()));
    }

    // ---------- Solver feasibility ----------

    #[test]
    fn solvers_always_return_feasible_allocations(
        seeds in proptest::collection::vec((0usize..4, 0.1f64..5.0), 1..10),
        slots in proptest::collection::vec(0usize..3, 4),
    ) {
        let options: Vec<Vec<AllocOption>> = seeds
            .iter()
            .map(|&(node, cost)| {
                vec![AllocOption {
                    placement: vec![NodeId(node as u32)],
                    cost,
                    added_latency_ps: 0,
                }]
            })
            .collect();
        let inst = ProblemInstance { node_slots: slots, options };
        let exact = solve_exact(&inst, 100_000);
        prop_assert!(is_feasible(&inst, &exact.allocation));
        let greedy = solve_greedy(&inst);
        prop_assert!(is_feasible(&inst, &greedy.allocation));
        // Exact dominates greedy.
        prop_assert!(exact.score >= greedy.score - 1e-9);
    }
}

// ---------- Second property block: apps + extensions ----------

use ofpc_apps::iprouting::{PhotonicLpm, TcamModel};
use ofpc_apps::secure_match::encrypt_bits;
use ofpc_apps::video::{rle_decode, rle_encode};
use ofpc_core::distributed::split_weights;
use ofpc_photonics::SimRng;
use ofpc_transponder::coherent::{qpsk_map, qpsk_slice, CoherentRx, CoherentTx};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rle_round_trips_any_sequence(
        coeffs in proptest::collection::vec(-300i32..300, 0..128),
    ) {
        let enc = rle_encode(&coeffs);
        prop_assert_eq!(rle_decode(&enc, coeffs.len()), coeffs);
    }

    #[test]
    fn rle_never_expands_past_3x(
        coeffs in proptest::collection::vec(-10i32..10, 1..64),
    ) {
        // Each symbol covers ≥1 coefficient, so symbol count ≤ input len.
        let enc = rle_encode(&coeffs);
        prop_assert!(enc.len() <= coeffs.len());
    }

    #[test]
    fn photonic_lpm_always_agrees_with_tcam(
        seed in any::<u64>(),
        lookups in 1usize..12,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let rules = ofpc_apps::iprouting::random_rules(12, &mut rng);
        let mut tcam = TcamModel::new(rules.clone());
        let mut plpm = PhotonicLpm::ideal(rules);
        for _ in 0..lookups {
            let a = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            prop_assert_eq!(plpm.lookup(a), tcam.lookup(a));
        }
    }

    #[test]
    fn tcam_priority_is_rule_order_independent(
        seed in any::<u64>(),
    ) {
        // Shuffling the rule insertion order never changes LPM results.
        let mut rng = SimRng::seed_from_u64(seed);
        let rules = ofpc_apps::iprouting::random_rules(10, &mut rng);
        let mut shuffled = rules.clone();
        rng.shuffle(&mut shuffled);
        let mut a_tbl = TcamModel::new(rules);
        let mut b_tbl = TcamModel::new(shuffled);
        for _ in 0..8 {
            let addr = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            let (a, b) = (a_tbl.lookup(addr), b_tbl.lookup(addr));
            // Ports may differ only when two same-length prefixes both
            // match (ambiguous tables); the *prefix length* served must
            // match. With random_rules collisions are rare; check port
            // equality except in that case by re-deriving the best len.
            if a != b {
                let best = |t: &TcamModel, _addr: Addr| t.rule_count();
                let _ = best;
                // Fall back: both must at least be Some/None-consistent.
                prop_assert_eq!(a.is_some(), b.is_some());
            }
        }
    }

    #[test]
    fn phase_xor_encryption_preserves_hamming_distance(
        data in proptest::collection::vec(any::<bool>(), 1..64),
        flips in proptest::collection::vec(any::<usize>(), 0..6),
        key in any::<u64>(),
    ) {
        let mut other = data.clone();
        for &f in &flips {
            let i = f % other.len();
            other[i] = !other[i];
        }
        let plain_dist = data.iter().zip(&other).filter(|(a, b)| a != b).count();
        let enc_a = encrypt_bits(&data, key);
        let enc_b = encrypt_bits(&other, key);
        let cipher_dist = enc_a.iter().zip(&enc_b).filter(|(a, b)| a != b).count();
        prop_assert_eq!(plain_dist, cipher_dist);
    }

    #[test]
    fn split_weights_partitions_exactly(
        weights in proptest::collection::vec(-1.0f64..1.0, 1..64),
        sites in 1usize..8,
    ) {
        prop_assume!(sites <= weights.len());
        let site_ids: Vec<ofpc_net::NodeId> =
            (0..sites).map(|i| ofpc_net::NodeId(i as u32)).collect();
        let chunks = split_weights(&weights, &site_ids);
        let mut rebuilt = Vec::new();
        for (offset, chunk) in &chunks {
            prop_assert_eq!(*offset, rebuilt.len());
            prop_assert!(!chunk.is_empty());
            rebuilt.extend(chunk.iter().copied());
        }
        prop_assert_eq!(rebuilt, weights);
        // Balanced: sizes differ by at most 1.
        let sizes: Vec<usize> = chunks.iter().map(|(_, c)| c.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn qpsk_map_slice_round_trip(b0 in any::<bool>(), b1 in any::<bool>()) {
        let (i, q) = qpsk_map(b0, b1);
        prop_assert_eq!(qpsk_slice(i, q), (b0, b1));
    }

    #[test]
    fn coherent_loopback_any_bits(
        bits in proptest::collection::vec(any::<bool>(), 2..128),
    ) {
        let mut rng = SimRng::seed_from_u64(0);
        let mut tx = CoherentTx::ideal(&mut rng);
        let mut rx = CoherentRx::ideal(&mut rng);
        let field = tx.transmit(&bits);
        let got = rx.receive(&field, 0.0);
        prop_assert_eq!(&got[..bits.len()], &bits[..]);
    }
}
