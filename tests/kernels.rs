//! Differential kernel-test harness: the vectorized (struct-of-arrays)
//! photonics kernels against the scalar reference implementations.
//!
//! The backend contract (DESIGN.md §12) makes three claims, each pinned
//! here over large seeded-random input sets:
//!
//! 1. **Lossless layout** — AoS ↔ SoA field-buffer conversion is
//!    bit-exact, including zeros, denormals, and extinction-level
//!    residuals.
//! 2. **Noiseless equivalence** — with every noise process off, the two
//!    backends agree to the documented converter-quantization bound
//!    (at most one ADC LSB of readout straddle, `n/(2^bits − 1)`).
//! 3. **Noisy equivalence** — with noise on, the backends draw from
//!    different (seeded, replay-stable) streams but the same physical
//!    distributions, so their statistics agree.
//!
//! Plus the parallel contract: batches run on either backend are
//! byte-identical across 1/2/8 `ofpc-par` workers.

use ofpc_engine::batch::{BatchEngine, KernelSpec};
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig, KernelBackend};
use ofpc_par::WorkerPool;
use ofpc_photonics::modulator::MzmConfig;
use ofpc_photonics::signal::{AnalogWaveform, OpticalField};
use ofpc_photonics::simd::FieldBlock;
use ofpc_photonics::{Complex, SimRng};

/// A calibrated unit on the given backend, from the given seed.
fn unit(config: DotUnitConfig, backend: KernelBackend, seed: u64) -> DotProductUnit {
    let mut cfg = config;
    cfg.backend = backend;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut u = DotProductUnit::new(cfg, &mut rng);
    u.calibrate(256);
    u
}

/// A random operand vector mixing interior values with the edge cases
/// the converters care about: exact 0/1, sub-LSB residuals, and values
/// sitting on encode-rounding boundaries.
fn random_operand(rng: &mut SimRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => 1.0,
            2 => 1e-7,                                    // far below one 12-bit LSB
            3 => (rng.below(4095) as f64 + 0.5) / 4095.0, // rounding boundary
            _ => rng.uniform(),
        })
        .collect()
}

// ------------------------------------------------------------ layout

#[test]
fn field_block_round_trip_is_bit_exact_over_10k_blocks() {
    let mut rng = SimRng::seed_from_u64(0xF1E1D);
    for i in 0..10_000usize {
        let n = 1 + rng.below(24);
        let samples: Vec<Complex> = (0..n)
            .map(|k| {
                let (re, im) = match (i + k) % 5 {
                    0 => (rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)),
                    1 => (0.0, -0.0),
                    // Denormals: the smallest positive f64 and friends.
                    2 => (f64::MIN_POSITIVE / 2.0, 5e-324 * rng.below(100) as f64),
                    // Extinction-level residuals next to full-scale.
                    3 => (rng.uniform() * 1e-25, rng.uniform()),
                    _ => (-rng.uniform(), rng.uniform() - 0.5),
                };
                Complex::new(re, im)
            })
            .collect();
        let field = OpticalField {
            samples,
            sample_rate_hz: 32e9,
            wavelength_m: 1550e-9,
        };
        let back = FieldBlock::from_field(&field).to_field();
        assert_eq!(field.samples.len(), back.samples.len());
        for (a, b) in field.samples.iter().zip(&back.samples) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "re lane drifted");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "im lane drifted");
        }
        assert_eq!(field.sample_rate_hz, back.sample_rate_hz);
        assert_eq!(field.wavelength_m, back.wavelength_m);
    }
}

// ---------------------------------------------------- noiseless diff

/// Shared body: scalar and vectorized units on a noiseless config must
/// agree within one ADC readout LSB (`n/(2^bits − 1)`) over thousands
/// of seeded random vectors.
fn differential_noiseless(config: DotUnitConfig, vectors: usize, tag: &str) {
    let mut scalar = unit(config.clone(), KernelBackend::Scalar, 7);
    let mut vector = unit(config, KernelBackend::Vectorized, 7);
    let mut rng = SimRng::seed_from_u64(0xD1FF);
    let mut exact = 0usize;
    for i in 0..vectors {
        let n = 1 + rng.below(48);
        let a = random_operand(&mut rng, n);
        let b = random_operand(&mut rng, n);
        let s = scalar.dot_nonneg(&a, &b);
        let v = vector.dot_nonneg(&a, &b);
        // One 12-bit readout LSB: the ulp-level difference between the
        // fused and the round-trip transfer can push the single ADC
        // readout across at most one code boundary.
        let lsb = n as f64 / 4095.0;
        assert!(
            (s - v).abs() <= lsb * 1.000_001,
            "{tag}: vector {i} (n={n}) diverged past one LSB: scalar {s} vectorized {v}"
        );
        if s == v {
            exact += 1;
        }
    }
    // The LSB bound is a straddle allowance, not the norm: the vast
    // majority of readouts must land on the same code.
    assert!(
        exact * 10 >= vectors * 9,
        "{tag}: only {exact}/{vectors} readouts were bit-exact"
    );
}

#[test]
fn ideal_backends_agree_within_one_readout_lsb_over_10k_vectors() {
    differential_noiseless(DotUnitConfig::ideal(), 10_000, "ideal");
}

#[test]
fn finite_extinction_noiseless_backends_agree_within_one_readout_lsb() {
    // Lossy modulators with a finite extinction floor, but every noise
    // process off: the floor max() in the fused transfer must match the
    // scalar sign-preserving floor bit-for-bit through the whole chain.
    let mut config = DotUnitConfig::ideal();
    config.mzm_a = MzmConfig::default();
    config.mzm_b = MzmConfig::default();
    differential_noiseless(config, 2_000, "finite-er");
}

#[test]
fn signed_backends_agree_within_four_readout_lsbs() {
    // Signed dots are four readouts; worst case each straddles a code.
    let mut scalar = unit(DotUnitConfig::ideal(), KernelBackend::Scalar, 11);
    let mut vector = unit(DotUnitConfig::ideal(), KernelBackend::Vectorized, 11);
    let mut rng = SimRng::seed_from_u64(0x51CED);
    for i in 0..2_000 {
        let n = 1 + rng.below(32);
        let a: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let s = scalar.dot_signed(&a, &b);
        let v = vector.dot_signed(&a, &b);
        let bound = 4.0 * n as f64 / 4095.0 * 1.000_001;
        assert!(
            (s - v).abs() <= bound,
            "vector {i} (n={n}): scalar {s} vectorized {v}"
        );
    }
}

// ------------------------------------------------------- noisy diff

#[test]
fn realistic_backends_agree_statistically() {
    // Full realistic noise on both backends: different streams, same
    // distributions. Compare run means against each other and the true
    // value over enough repeats to average the noise down.
    let mut scalar = unit(DotUnitConfig::realistic(), KernelBackend::Scalar, 3);
    let mut vector = unit(DotUnitConfig::realistic(), KernelBackend::Vectorized, 3);
    let n = 64;
    let a = vec![0.5; 64];
    let b = vec![0.25; 64];
    let want = 0.5 * 0.25 * n as f64;
    let reps = 400;
    let mean = |u: &mut DotProductUnit| -> f64 {
        (0..reps).map(|_| u.dot_nonneg(&a, &b)).sum::<f64>() / reps as f64
    };
    let ms = mean(&mut scalar);
    let mv = mean(&mut vector);
    // 8-bit converters put one readout LSB at n/255 ≈ 0.25; means must
    // sit within ~2 LSBs of truth and within 1 LSB of each other.
    let lsb = n as f64 / 255.0;
    assert!(
        (ms - want).abs() < 2.0 * lsb,
        "scalar mean {ms} want {want}"
    );
    assert!(
        (mv - want).abs() < 2.0 * lsb,
        "vectorized mean {mv} want {want}"
    );
    assert!(
        (ms - mv).abs() < lsb,
        "backend means diverged: scalar {ms} vectorized {mv}"
    );
}

// ------------------------------------------------ fused invariants

#[test]
fn fused_pipeline_preserves_phase_and_scales_power() {
    // A block through the (noiseless, unbuffered-drive) weight MZM must
    // keep every sample's phase and scale its power by exactly the
    // transfer the scalar modulator reports.
    let config = MzmConfig {
        bandwidth_hz: 0.0, // drive passthrough
        ..MzmConfig::default()
    };
    let mut mzm = ofpc_photonics::modulator::MachZehnderModulator::new(config.clone());
    let mut rng = SimRng::seed_from_u64(0xB10C);
    for _ in 0..2_000 {
        let n = 1 + rng.below(16);
        let samples: Vec<Complex> = (0..n)
            .map(|_| Complex::from_polar(rng.uniform() + 1e-6, rng.uniform_range(-3.0, 3.0)))
            .collect();
        let field = OpticalField {
            samples,
            sample_rate_hz: 32e9,
            wavelength_m: 1550e-9,
        };
        let drive = AnalogWaveform::new(
            (0..n)
                .map(|_| mzm.drive_for_transmission(rng.uniform()))
                .collect(),
            32e9,
        );
        let mut block = FieldBlock::from_field(&field);
        mzm.modulate_block(&mut block, &drive);
        for k in 0..n {
            let t = mzm.amplitude_transmission(drive.samples[k]);
            let want = field.samples[k].scale(t);
            assert_eq!(block.re[k].to_bits(), want.re.to_bits(), "re at {k}");
            assert_eq!(block.im[k].to_bits(), want.im.to_bits(), "im at {k}");
            // t ≥ 0 here, so the phase is untouched and power scales by t².
            assert!(t >= 0.0);
            let phase_before = field.samples[k].arg();
            let phase_after = Complex::new(block.re[k], block.im[k]).arg();
            assert!(
                (phase_before - phase_after).abs() < 1e-12,
                "phase drifted at {k}"
            );
        }
    }
}

#[test]
fn extinction_null_blocks_keep_their_leakage_floor() {
    // Driving for zero transmission with a finite extinction ratio must
    // leave the documented leakage floor, identically in the fused
    // block path and the scalar transfer.
    let config = MzmConfig {
        bandwidth_hz: 0.0,
        ..MzmConfig::default()
    };
    let mzm = ofpc_photonics::modulator::MachZehnderModulator::new(config);
    let t_null = mzm.fused_amplitude_transmission(0.0);
    let (floor, il) = mzm.fused_amplitude_constants();
    assert!(t_null > 0.0, "finite ER must leak at the null");
    assert_eq!(t_null.to_bits(), (floor * il).to_bits());
    // And the block transfer agrees at the null code.
    let mut out = Vec::new();
    mzm.power_transmissions_into(&[0.0, 0.0, 0.0], 32e9, &mut out);
    for t2 in out {
        assert_eq!(t2.to_bits(), (t_null * t_null).to_bits());
    }
}

// ------------------------------------------------------- parallelism

#[test]
fn batches_are_byte_identical_across_worker_counts_on_both_backends() {
    let batch = || {
        let sig = vec![true, false, true, true, false, false, true, false];
        let mut stream = vec![false; 40];
        stream[16..24].copy_from_slice(&sig);
        vec![
            KernelSpec::MvmNonneg {
                matrix: vec![vec![0.5, 0.25], vec![1.0, 0.0]],
                x: vec![0.5, 1.0],
                lanes: 2,
            },
            KernelSpec::MvmSigned {
                matrix: vec![vec![0.5, -0.5], vec![-0.25, 1.0]],
                x: vec![1.0, 0.5],
                lanes: 2,
            },
            KernelSpec::Correlate {
                signatures: vec![sig.clone()],
                stream,
                tolerance: 0.5,
                stride: 8,
            },
            KernelSpec::MatchBlock {
                data: sig.clone(),
                pattern: sig,
            },
        ]
    };
    for backend in [KernelBackend::Scalar, KernelBackend::Vectorized] {
        let engine = BatchEngine::realistic(42).with_backend(backend);
        let bytes = |workers: usize| {
            let out = engine.execute(&WorkerPool::new(workers), batch());
            serde_json::to_string_pretty(&out).expect("serializes")
        };
        let seq = bytes(1);
        assert_eq!(seq, bytes(2), "{backend:?}: 1 vs 2 workers diverged");
        assert_eq!(seq, bytes(8), "{backend:?}: 1 vs 8 workers diverged");
    }
}
