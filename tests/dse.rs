//! Integration tests for the ofpc-dse design-space subsystem: the
//! parallel-sweep byte-identity contract, the E17 acceptance floor on
//! grid coverage, and the per-stage hardware-variant selection the
//! lowerer must demonstrate (ISSUE 6).

use ofpc_apps::digital::ComputeModel;
use ofpc_bench::golden;
use ofpc_dse::{hardware_variant, run_sweep, App, ConverterChoice, SweepSpec};
use ofpc_graph::lower::{lower, ErrorBudget, LowerConfig};
use ofpc_par::WorkerPool;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The full E17 sweep must serialize byte-identically at 1, 2, and 8
/// workers — same contract the serving sweeps pin in tests/parallel.rs.
#[test]
fn e17_sweep_is_byte_identical_across_worker_counts() {
    let spec = SweepSpec::e17();
    let reference =
        serde_json::to_string_pretty(&run_sweep(&WorkerPool::new(WORKER_COUNTS[0]), &spec))
            .expect("serializes");
    for &workers in &WORKER_COUNTS[1..] {
        let got = serde_json::to_string_pretty(&run_sweep(&WorkerPool::new(workers), &spec))
            .expect("serializes");
        assert_eq!(
            reference, got,
            "E17 sweep: {workers}-worker output diverged from the sequential reference"
        );
    }
}

/// Same contract for the golden miniature, envelope included.
#[test]
fn e17_mini_is_byte_identical_across_worker_counts() {
    let reference = golden::e17_mini(&WorkerPool::new(WORKER_COUNTS[0]));
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            reference,
            golden::e17_mini(&WorkerPool::new(workers)),
            "E17 mini: {workers}-worker output diverged"
        );
    }
}

/// Acceptance: the frontier covers ≥3 converter variants × ≥3 core
/// sizes × ≥2 wavelength counts for every Table-1 app, and every app
/// keeps at least one non-dominated point.
#[test]
fn e17_grid_meets_the_coverage_floor() {
    fn distinct<F: Fn(&ofpc_dse::DesignPoint) -> String>(
        pts: &[&ofpc_dse::DesignPoint],
        f: F,
    ) -> usize {
        let mut v: Vec<String> = pts.iter().map(|p| f(p)).collect();
        v.sort();
        v.dedup();
        v.len()
    }
    let spec = SweepSpec::e17();
    let points = run_sweep(&WorkerPool::sequential(), &spec);
    for app in ["dnn", "correlation", "pattern-match"] {
        let app_points: Vec<_> = points.iter().filter(|p| p.app == app).collect();
        assert!(
            distinct(&app_points, |p| p.converter.clone()) >= 3,
            "{app}: converters"
        );
        assert!(
            distinct(&app_points, |p| p.core_size.to_string()) >= 3,
            "{app}: core sizes"
        );
        assert!(
            distinct(&app_points, |p| p.wavelengths.to_string()) >= 2,
            "{app}: wavelength counts"
        );
        assert!(app_points.iter().any(|p| p.pareto), "{app}: empty frontier");
    }
}

/// Acceptance: with the whole catalog as candidates, ErrorBudget
/// lowering binds different hardware variants to at least two stages of
/// the DNN plan, and the binding changes the priced energy/latency
/// relative to single-variant lowering.
#[test]
fn error_budget_selects_distinct_variants_per_stage() {
    let variants: Vec<_> = ConverterChoice::ALL
        .iter()
        .map(|&c| hardware_variant(c, 4))
        .collect();
    let graph = App::Dnn.build(16, 17);
    let cfg = LowerConfig {
        budget: ErrorBudget::realistic(),
        model: variants[0].model.clone(),
        digital: ComputeModel::edge_soc(),
        variants,
    };
    let plan = lower(&graph, &cfg).expect("lowers");
    let used = plan.variants_used();
    assert!(used.len() >= 2, "expected >=2 distinct variants: {used:?}");
    // Two concrete stages carry different bindings.
    assert_ne!(
        plan.stages.first().and_then(|s| s.variant.clone()),
        plan.stages.last().and_then(|s| s.variant.clone()),
        "first and last stages should bind different hardware"
    );

    // And the selection is load-bearing: single-variant lowerings price
    // differently on both axes.
    let single = |choice: ConverterChoice| {
        let v = hardware_variant(choice, 4);
        let mut c = cfg.clone();
        c.model = v.model.clone();
        c.variants = vec![v];
        lower(&graph, &c).expect("lowers")
    };
    let all12 = single(ConverterChoice::Cv12bFast);
    let all8 = single(ConverterChoice::Cv8bFast);
    assert!(plan.energy_per_request_j() < all12.energy_per_request_j());
    assert_ne!(plan.total_service_ps(), all8.total_service_ps());
}
