//! Differential tests for the deterministic parallel execution layer
//! (DESIGN.md §8): every parallelized path must produce byte-identical
//! output to its sequential reference at 1, 2, and 8 workers, and the
//! quantized transfer-function cache must stay within its error bound
//! over a large seeded sweep of operating points.

use std::sync::Arc;

use ofpc_bench::golden;
use ofpc_engine::batch::{BatchEngine, KernelSpec};
use ofpc_par::{split_seed, TransferCache, WorkerPool};
use ofpc_photonics::modulator::{MachZehnderModulator, MzmConfig};
use ofpc_photonics::tfcache;
use ofpc_photonics::SimRng;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn diff_across_workers(label: &str, run: impl Fn(&WorkerPool) -> String) {
    let reference = run(&WorkerPool::new(WORKER_COUNTS[0]));
    for &workers in &WORKER_COUNTS[1..] {
        let got = run(&WorkerPool::new(workers));
        assert_eq!(
            reference, got,
            "{label}: {workers}-worker output diverged from the sequential reference"
        );
    }
}

// ------------------------------------------------------------ engine batches

fn engine_batch() -> Vec<KernelSpec> {
    let mut tasks = Vec::new();
    for i in 0..6usize {
        let n = 4 + i;
        let matrix: Vec<Vec<f64>> = (0..3)
            .map(|r| (0..n).map(|c| ((r * n + c) % 7) as f64 / 7.0).collect())
            .collect();
        let x: Vec<f64> = (0..n).map(|c| (c % 5) as f64 / 5.0).collect();
        tasks.push(KernelSpec::MvmNonneg {
            matrix,
            x,
            lanes: 1 + i % 3,
        });
    }
    let sig: Vec<bool> = (0..8).map(|b| b % 3 == 0).collect();
    let mut stream = vec![false; 48];
    stream[24..32].copy_from_slice(&sig);
    tasks.push(KernelSpec::Correlate {
        signatures: vec![sig.clone()],
        stream,
        tolerance: 0.5,
        stride: 8,
    });
    tasks.push(KernelSpec::MatchBlock {
        data: sig.clone(),
        pattern: sig,
    });
    tasks
}

#[test]
fn engine_mvm_batches_are_byte_identical_across_worker_counts() {
    let engine = BatchEngine::realistic(12);
    diff_across_workers("engine batch", |pool| {
        serde_json::to_string_pretty(&engine.execute(pool, engine_batch())).expect("serializes")
    });
}

#[test]
fn engine_batches_with_shared_cache_are_byte_identical() {
    let engine = BatchEngine::realistic(12).with_shared_mzm_cache(1e-6);
    diff_across_workers("engine batch + shared MZM cache", |pool| {
        serde_json::to_string_pretty(&engine.execute(pool, engine_batch())).expect("serializes")
    });
}

// -------------------------------------------------------- harness scenarios

#[test]
fn e12_serving_knee_is_byte_identical_across_worker_counts() {
    diff_across_workers("E12 mini serving knee", golden::e12_mini);
}

#[test]
fn e13_fault_replay_is_byte_identical_across_worker_counts() {
    diff_across_workers("E13 mini fault replay", golden::e13_mini);
}

#[test]
fn e14_telemetry_snapshot_is_byte_identical_across_worker_counts() {
    diff_across_workers("E14 mini telemetry snapshot", golden::e14_mini);
}

// ------------------------------------------------------------- seed splitting

#[test]
fn split_seed_streams_are_independent_of_sibling_count() {
    // Task 3's seed must not depend on how many siblings run with it —
    // that is what lets a resharded batch reproduce the same bytes.
    let narrow: Vec<u64> = (0..4).map(|i| split_seed(99, i)).collect();
    let wide: Vec<u64> = (0..64).map(|i| split_seed(99, i)).collect();
    assert_eq!(&wide[..4], &narrow[..]);
}

// ------------------------------------------------- transfer-cache properties

/// 10k seeded random operating points: the cached evaluation must agree
/// with the direct curve to within the quantization bound `L·step/2`.
/// The bound requires a Lipschitz curve, so the MZM case runs with
/// infinite extinction ratio — the finite-ER floor preserves the sign
/// of the transmission and therefore *jumps* at the modulator's nulls,
/// where no grid bound can hold (DESIGN.md §8 documents the caveat).
#[test]
fn cache_matches_direct_evaluation_within_quantization_bound() {
    let mzm_cfg = MzmConfig {
        extinction_ratio_db: f64::INFINITY,
        ..MzmConfig::default()
    };
    let mzm = MachZehnderModulator::new(mzm_cfg.clone());
    // Lipschitz bound of the amplitude transmission: |dt/dv| ≤ π/(2Vπ)
    // (insertion loss only flattens the curve further).
    // (cache, direct curve, Lipschitz constant, grid step)
    type CacheCase = (Arc<TransferCache>, Box<dyn Fn(f64) -> f64>, f64, f64);
    let cases: Vec<CacheCase> = vec![
        (
            tfcache::mzm_amplitude_cache(&mzm_cfg, tfcache::MZM_DRIVE_STEP_V),
            Box::new(move |v| mzm.amplitude_transmission(v)),
            std::f64::consts::PI / (2.0 * mzm_cfg.v_pi),
            tfcache::MZM_DRIVE_STEP_V,
        ),
        (
            Arc::new(TransferCache::new(1e-4, f64::sin)),
            Box::new(f64::sin),
            1.0,
            1e-4,
        ),
        (
            Arc::new(TransferCache::new(1e-3, |v: f64| (0.5 * v).tanh())),
            Box::new(|v: f64| (0.5 * v).tanh()),
            0.5,
            1e-3,
        ),
    ];
    let mut rng = SimRng::seed_from_u64(2024);
    for (cache, direct, lipschitz, step) in &cases {
        let bound = lipschitz * step / 2.0 + 1e-12;
        for _ in 0..10_000 {
            let v = rng.uniform_range(-8.0, 8.0);
            let err = (cache.eval(v) - direct(v)).abs();
            assert!(err <= bound, "v={v} err={err} bound={bound}");
        }
    }
}

/// Repeated lookups of the same key are bit-exact cache hits, across
/// interleaved foreign keys and across threads.
#[test]
fn cache_hit_path_is_bit_exact_for_repeated_keys() {
    let cache = Arc::new(TransferCache::new(1e-3, |v: f64| (v * 1.7).sin() * v.cos()));
    let mut rng = SimRng::seed_from_u64(77);
    let keys: Vec<f64> = (0..256).map(|_| rng.uniform_range(-4.0, 4.0)).collect();
    let first: Vec<u64> = keys.iter().map(|&v| cache.eval(v).to_bits()).collect();
    // Replay through the pool at several widths, interleaving all keys.
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let replay: Vec<Vec<u64>> = pool.scatter_gather("cache-replay", vec![(); 8], |_, ()| {
            keys.iter().map(|&v| cache.eval(v).to_bits()).collect()
        });
        for bits in replay {
            assert_eq!(bits, first, "hit path must replay bit-exact bits");
        }
    }
    assert_eq!(cache.len(), {
        let mut distinct: Vec<i64> = keys.iter().map(|&v| (v / 1e-3).round() as i64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    });
}
