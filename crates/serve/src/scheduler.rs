//! Deadline-aware batch scheduling onto the transponder inventory.
//!
//! Closed batches queue here and are dispatched earliest-deadline-first
//! (EDF) onto idle photonic compute transponder slots tracked by the
//! controller's [`TransponderInventory`]. The service model prices a
//! batch the way the Fig.-4 hardware does:
//!
//! * a **reconfiguration** charge when the slot's loaded weights/pattern
//!   differ from the batch's class (DAC writes, fixed + per-element),
//! * the **engine settling** latency (analog pipeline fill),
//! * **streaming** passes: operand vectors ride parallel WDM channels,
//!   `ceil(batch / channels)` serial passes of `len × 8 bits` each,
//! * a serialized per-request **result readout** (single readout ADC).
//!
//! Batching wins exactly because the first two terms are per-pass, not
//! per-request. Requests whose deadline cannot survive the projected
//! completion are shed *before* burning wavelength time on them.

use crate::batcher::Batch;
use crate::request::{BatchClass, ComputeRequest, ShedReason};
use ofpc_controller::inventory::{SlotStatus, TransponderInventory};
use ofpc_net::NodeId;
use ofpc_photonics::energy::{constants, EnergyLedger};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Latency/energy model for one wavelength pass over a compute slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Serial line rate per WDM channel, bit/s.
    pub line_rate_bps: f64,
    /// WDM channels a batch may occupy in parallel.
    pub wdm_channels: usize,
    /// Analog engine settling per pass, ps.
    pub engine_settle_ps: u64,
    /// Fixed weight/pattern reconfiguration cost, ps.
    pub reconfig_fixed_ps: u64,
    /// Per-element reconfiguration cost (weight DAC writes), ps.
    pub reconfig_per_element_ps: u64,
    /// Serialized result readout per request, ps.
    pub readout_per_request_ps: u64,
    /// Continuous optical supply power while a pass runs, W.
    pub laser_w: f64,
    /// Energy per operand DAC sample, J.
    pub dac_sample_j: f64,
    /// Energy per photonic MAC, J.
    pub mac_j: f64,
    /// Energy per result ADC readout, J.
    pub adc_result_j: f64,
}

impl ServiceModel {
    /// Derive from a transponder hardware config plus the WDM width the
    /// deployment lights for serving.
    pub fn from_transponder(cfg: &ComputeTransponderConfig, wdm_channels: usize) -> Self {
        assert!(wdm_channels >= 1, "need at least one WDM channel");
        let line_rate_bps = cfg.tx.line_rate_bps;
        ServiceModel {
            line_rate_bps,
            wdm_channels,
            engine_settle_ps: (cfg.engine_latency_s * 1e12) as u64,
            // Weight loading is a control-plane DAC write per element on
            // top of a fixed settling window — orders of magnitude slower
            // than streaming, which is what makes batching matter.
            reconfig_fixed_ps: 2_000_000,    // 2 µs
            reconfig_per_element_ps: 10_000, // 10 ns/element
            readout_per_request_ps: (1e12 / constants::PHOTONIC_LANE_HZ) as u64 * 8,
            laser_w: 0.05,
            dac_sample_j: constants::DAC_SAMPLE_J,
            mac_j: constants::PHOTONIC_MAC_J,
            adc_result_j: cfg.result_adc_energy_j.max(constants::ADC_SAMPLE_J),
        }
    }

    /// Streaming time for one pass of `operand_len` elements, ps.
    fn pass_stream_ps(&self, operand_len: u32) -> u64 {
        let bits = operand_len as f64 * 8.0;
        ((bits / self.line_rate_bps) * 1e12).ceil() as u64
    }

    /// Service time (ps) and energy ledger for a batch of `n` requests of
    /// class `class`, given what the slot currently has loaded.
    pub fn batch_service(
        &self,
        class: BatchClass,
        n: usize,
        loaded: Option<BatchClass>,
    ) -> (u64, EnergyLedger) {
        let mut ledger = EnergyLedger::new();
        let needs_reconfig = loaded != Some(class);
        let reconfig_ps = if needs_reconfig {
            self.reconfig_fixed_ps + self.reconfig_per_element_ps * u64::from(class.operand_len)
        } else {
            0
        };
        let passes = n.div_ceil(self.wdm_channels) as u64;
        let stream_ps = passes * self.pass_stream_ps(class.operand_len);
        let readout_ps = self.readout_per_request_ps * n as u64;
        let service_ps = reconfig_ps + self.engine_settle_ps + stream_ps + readout_ps;

        if needs_reconfig {
            ledger.add("reconfig-dac", class.operand_len as f64 * self.dac_sample_j);
        }
        ledger.add(
            "operand-dac",
            n as f64 * class.operand_len as f64 * self.dac_sample_j,
        );
        ledger.add(
            "photonic-mac",
            n as f64 * class.operand_len as f64 * self.mac_j,
        );
        ledger.add("result-adc", n as f64 * self.adc_result_j);
        ledger.add("laser-supply", self.laser_w * service_ps as f64 * 1e-12);
        (service_ps, ledger)
    }

    /// Steady-state service of a single request whose class is already
    /// loaded on the slot — the per-request cost a compiled multi-stage
    /// plan pays once its weights are pinned (graph stages reconfigure at
    /// install time, not per request).
    pub fn request_service(&self, class: BatchClass) -> (u64, EnergyLedger) {
        self.batch_service(class, 1, Some(class))
    }

    /// One-time charge for installing `class` on a cold slot: the
    /// reconfiguration latency (fixed + per-element DAC writes) and the
    /// weight-write energy, with no streaming or readout.
    pub fn reconfig_charge(&self, class: BatchClass) -> (u64, EnergyLedger) {
        let mut ledger = EnergyLedger::new();
        let reconfig_ps =
            self.reconfig_fixed_ps + self.reconfig_per_element_ps * u64::from(class.operand_len);
        ledger.add("reconfig-dac", class.operand_len as f64 * self.dac_sample_j);
        (reconfig_ps, ledger)
    }
}

/// A compute site visible to the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    pub node: NodeId,
    /// Installed compute transponder slots at the site.
    pub slots: usize,
    /// One-way propagation delay between the serving front-end and the
    /// site, ps (operands ride out, results ride back).
    pub access_ps: u64,
}

/// Mutable state of one transponder slot. `busy_until_ps` is in
/// *site-local* time: the fiber between the front-end and the site is a
/// pipe, so a batch dispatched at `t` occupies the slot only over
/// `[t + access, t + access + service]` — operands in flight never hold
/// the transponder, and several batches can ride the span at once.
#[derive(Debug, Clone, Copy)]
struct SlotState {
    busy_until_ps: u64,
    loaded: Option<BatchClass>,
    /// Hard-failed slots never dispatch until the site recovers.
    healthy: bool,
}

/// One dispatched batch: where it ran and what it cost.
#[derive(Debug, Clone)]
pub struct Dispatch {
    pub batch: Batch,
    pub node: NodeId,
    pub slot: usize,
    pub start_ps: u64,
    /// When the slot finishes the batch (site-local), ps.
    pub done_ps: u64,
    /// When the front-end can usefully dispatch to this slot again
    /// (`done - access`: new operands launched then arrive just as the
    /// slot frees), ps.
    pub free_ps: u64,
    /// When results reach the requesters, ps.
    pub delivered_ps: u64,
    pub service_ps: u64,
    pub energy: EnergyLedger,
    /// Members shed pre-service because they could not make their
    /// deadline.
    pub shed: Vec<(ComputeRequest, ShedReason)>,
}

/// EDF scheduler over the transponder inventory.
#[derive(Debug)]
pub struct Scheduler {
    model: ServiceModel,
    sites: Vec<SiteSpec>,
    inventory: TransponderInventory,
    slots: BTreeMap<(NodeId, usize), SlotState>,
    /// Closed batches awaiting dispatch.
    ready: Vec<Batch>,
    /// Sites whose fiber route from the front-end is currently severed:
    /// slots there may be healthy, but operands cannot reach them.
    unreachable: BTreeSet<NodeId>,
    /// Completed-batch counter (for occupancy metrics).
    pub batches_dispatched: u64,
    pub requests_dispatched: u64,
}

impl Scheduler {
    pub fn new(model: ServiceModel, sites: Vec<SiteSpec>) -> Self {
        assert!(!sites.is_empty(), "need at least one compute site");
        let mut inventory = TransponderInventory::new(u64::MAX);
        let mut slots = BTreeMap::new();
        for site in &sites {
            assert!(site.slots > 0, "site {:?} has no slots", site.node);
            inventory.register(site.node, site.slots, 0);
            for s in 0..site.slots {
                slots.insert(
                    (site.node, s),
                    SlotState {
                        busy_until_ps: 0,
                        loaded: None,
                        healthy: true,
                    },
                );
            }
        }
        Scheduler {
            model,
            sites,
            inventory,
            slots,
            ready: Vec::new(),
            unreachable: BTreeSet::new(),
            batches_dispatched: 0,
            requests_dispatched: 0,
        }
    }

    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// The controller-facing inventory view (status mirrors dispatches).
    pub fn inventory(&self) -> &TransponderInventory {
        &self.inventory
    }

    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }

    /// Slots that have not hard-failed (photonic serving capacity).
    pub fn healthy_slots(&self) -> usize {
        self.slots.values().filter(|s| s.healthy).count()
    }

    /// True when at least one slot at `node` is healthy.
    pub fn site_healthy(&self, node: NodeId) -> bool {
        self.slots.iter().any(|(&(n, _), s)| n == node && s.healthy)
    }

    /// Mark `node` (un)reachable over the fiber plant. Unreachable
    /// sites keep their slot state but never dispatch: operands cannot
    /// get there while the route is severed.
    pub fn set_reachable(&mut self, node: NodeId, reachable: bool) {
        if reachable {
            self.unreachable.remove(&node);
        } else {
            self.unreachable.insert(node);
        }
    }

    /// The queued batches awaiting dispatch (for group-aware
    /// end-of-run accounting).
    pub fn ready_batches(&self) -> &[Batch] {
        &self.ready
    }

    /// Remove a still-queued redundancy-set member (its sibling already
    /// delivered). Returns true when the member was found pre-launch —
    /// a cancellation that costs no slot time and no energy.
    pub fn cancel_member(&mut self, set: u64, member: u8) -> bool {
        let idx = self
            .ready
            .iter()
            .position(|b| b.resil.is_some_and(|t| t.set == set && t.member == member));
        match idx {
            Some(i) => {
                self.ready.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Hard-fail every slot at `node`: nothing dispatches there until
    /// [`Scheduler::recover_site`]. In-service state is wiped — the
    /// engine restarts cold (weights must reload) — and the runtime
    /// aborts whatever the site was computing. Returns the number of
    /// slots taken down.
    pub fn fail_site(&mut self, node: NodeId) -> usize {
        let mut n = 0;
        for (&(slot_node, _), s) in self.slots.iter_mut() {
            if slot_node == node && s.healthy {
                s.healthy = false;
                s.busy_until_ps = 0;
                s.loaded = None;
                n += 1;
            }
        }
        n
    }

    /// Repair every slot at `node`; they come back idle and unloaded.
    pub fn recover_site(&mut self, node: NodeId) -> usize {
        let mut n = 0;
        for (&(slot_node, _), s) in self.slots.iter_mut() {
            if slot_node == node && !s.healthy {
                s.healthy = true;
                n += 1;
            }
        }
        n
    }

    /// Slots that could start a batch dispatched *now* without waiting:
    /// work dispatched at `now` reaches node `n` at `now + access(n)`,
    /// so a slot is usable once its site-local busy window ends by then.
    pub fn idle_slots(&self, now_ps: u64) -> usize {
        self.slots
            .iter()
            .filter(|(&(node, _), s)| s.healthy && s.busy_until_ps <= now_ps + self.access_ps(node))
            .count()
    }

    /// Requests queued in closed batches not yet dispatched.
    pub fn backlog_requests(&self) -> usize {
        self.ready.iter().map(Batch::len).sum()
    }

    pub fn enqueue(&mut self, batch: Batch) {
        // A requestless batch is only meaningful as a redundancy-set
        // member (the parity group): it must queue, dispatch, and
        // deliver so the set settles. Plain empty batches are dropped.
        if !batch.is_empty() || batch.resil.is_some() {
            self.ready.push(batch);
        }
    }

    /// Pull every queued batch back out, in queue order — the runtime
    /// diverts them to the digital fallback when no photonic capacity
    /// remains.
    pub fn drain_ready(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.ready)
    }

    fn access_ps(&self, node: NodeId) -> u64 {
        self.sites
            .iter()
            .find(|s| s.node == node)
            .map(|s| s.access_ps)
            .expect("dispatch to unknown site")
    }

    /// Dispatch as many ready batches as idle slots allow, EDF first.
    /// Returns the dispatches made (empty when blocked).
    ///
    /// A batch pinned to a site by its redundancy tag only considers
    /// that site's slots; when the pin is busy, the scheduler *skips*
    /// to the next-earliest-deadline batch rather than head-of-line
    /// blocking the whole queue behind one occupied site. For unpinned
    /// batches the slot filter is batch-independent, so the skip loop
    /// dispatches in exactly the legacy EDF order.
    pub fn try_dispatch(&mut self, now_ps: u64) -> Vec<Dispatch> {
        let mut out = Vec::new();
        'outer: loop {
            if self.ready.is_empty() {
                break;
            }
            // EDF candidate order: earliest min-member deadline; ties
            // broken by close time then insertion order for determinism.
            let mut order: Vec<usize> = (0..self.ready.len()).collect();
            order.sort_by_key(|&i| (self.ready[i].deadline_ps(), self.ready[i].closed_ps, i));
            for &best_idx in &order {
                let class = self.ready[best_idx].class;
                let pin = self.ready[best_idx].resil.map(|t| t.pin);
                // Best usable slot: prefer one already loaded with this
                // class (skips reconfiguration), then nearest, then
                // lowest id. A slot is usable when it frees by the time
                // work dispatched now would arrive (the fiber pipelines
                // in-flight batches), its site is reachable, and — for a
                // redundancy-set member — it sits at the planned site.
                let slot_key = self
                    .slots
                    .iter()
                    .filter(|(&(node, _), s)| {
                        s.healthy
                            && !self.unreachable.contains(&node)
                            && (pin.is_none() || pin == Some(node))
                            && s.busy_until_ps <= now_ps + self.access_ps(node)
                    })
                    .min_by_key(|(&(node, slot), s)| {
                        (s.loaded != Some(class), self.access_ps(node), node, slot)
                    })
                    .map(|(&k, _)| k);
                let Some((node, slot)) = slot_key else {
                    continue; // this candidate has nowhere to go yet
                };
                let mut batch = self.ready.swap_remove(best_idx);
                let access = self.access_ps(node);
                let loaded = self.slots[&(node, slot)].loaded;
                // A parity member streams `phantom` coded operand
                // vectors besides its real requests; price the pass by
                // the full wavelength occupancy, not just live members.
                let phantom = batch.resil.map_or(0, |t| t.phantom as usize);

                // Project completion, shed members that cannot make it,
                // and re-price with the survivors. Redundancy-set
                // members are exempt from pre-shedding: their loss
                // accounting belongs to the work ledger, which must see
                // every member launch or be cancelled — never silently
                // shed here.
                let (est_service, _) =
                    self.model
                        .batch_service(class, batch.len() + phantom, loaded);
                let est_delivered = now_ps + access + est_service + access;
                let mut shed = Vec::new();
                if batch.resil.is_none() {
                    batch.requests.retain_mut(|r| {
                        if r.deadline_ps < est_delivered {
                            shed.push((r.clone(), ShedReason::DeadlineExpiredServing));
                            false
                        } else {
                            true
                        }
                    });
                }
                let eff_len = batch.len() + phantom;
                if eff_len == 0 {
                    out.push(Dispatch {
                        batch,
                        node,
                        slot,
                        start_ps: now_ps,
                        done_ps: now_ps,
                        free_ps: now_ps,
                        delivered_ps: now_ps,
                        service_ps: 0,
                        energy: EnergyLedger::new(),
                        shed,
                    });
                    continue 'outer;
                }
                let (service_ps, energy) = self.model.batch_service(class, eff_len, loaded);
                let start_ps = now_ps + access;
                let done_ps = start_ps + service_ps;
                let delivered_ps = done_ps + access;
                let free_ps = done_ps.saturating_sub(access).max(now_ps);

                let state = self.slots.get_mut(&(node, slot)).expect("slot exists");
                state.busy_until_ps = done_ps;
                state.loaded = Some(class);
                self.inventory.heartbeat(
                    node,
                    slot,
                    SlotStatus::Active {
                        primitive: class.primitive,
                        op_id: (self.batches_dispatched % u64::from(u16::MAX)) as u16,
                        version: self.batches_dispatched,
                    },
                    now_ps,
                );
                self.batches_dispatched += 1;
                self.requests_dispatched += batch.len() as u64;
                out.push(Dispatch {
                    batch,
                    node,
                    slot,
                    start_ps,
                    done_ps,
                    free_ps,
                    delivered_ps,
                    service_ps,
                    energy,
                    shed,
                });
                continue 'outer;
            }
            break; // no candidate could dispatch this round
        }
        out
    }

    /// Mark a slot idle again (called at its `done_ps` event). A slot
    /// retired by [`Scheduler::resize_site`] while its last batch was
    /// in flight releases as a no-op: the work completed, the capacity
    /// is simply no longer this scheduler's to reuse.
    pub fn release(&mut self, node: NodeId, slot: usize, now_ps: u64) {
        if !self.slots.contains_key(&(node, slot)) {
            return;
        }
        self.inventory
            .heartbeat(node, slot, SlotStatus::Idle, now_ps);
    }

    /// Re-split seam: set the number of slots this scheduler owns at
    /// `node`, returning how many slots moved. Growth adds fresh idle,
    /// unloaded slots (and registers them with the inventory mirror);
    /// shrink retires the highest-indexed slots immediately — a batch
    /// in flight on a retired slot still completes (its delivery event
    /// is the runtime's, not the slot's) and its release is ignored.
    ///
    /// This is what lets a global rebalancer repartition one physical
    /// site's transponders between shard-local schedulers without
    /// touching in-flight work. Shrinking to zero is allowed: the site
    /// stays known (access delay and all) but dispatches nothing until
    /// slots are granted back. Inventory records of retired slots
    /// remain registered (the mirror is observational and append-only);
    /// they idle out rather than vanish.
    pub fn resize_site(&mut self, node: NodeId, slots: usize, now_ps: u64) -> usize {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.node == node)
            .expect("resize of unknown site");
        let old = site.slots;
        site.slots = slots;
        if slots > old {
            let registered = self.inventory.total_at(node);
            if slots > registered {
                self.inventory.register(node, slots - registered, now_ps);
            }
            for s in old..slots {
                self.slots.insert(
                    (node, s),
                    SlotState {
                        busy_until_ps: 0,
                        loaded: None,
                        healthy: true,
                    },
                );
            }
        } else {
            for s in slots..old {
                self.slots.remove(&(node, s));
            }
        }
        old.abs_diff(slots)
    }

    /// Next time any busy slot frees, if any (for idle-time stepping).
    pub fn next_free_ps(&self, now_ps: u64) -> Option<u64> {
        self.slots
            .values()
            .filter(|s| s.busy_until_ps > now_ps)
            .map(|s| s.busy_until_ps)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, TenantId};
    use ofpc_engine::Primitive;

    fn model() -> ServiceModel {
        ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 8)
    }

    fn batch(ids: &[u64], deadline: u64, closed: u64) -> Batch {
        let requests: Vec<ComputeRequest> = ids
            .iter()
            .map(|&id| ComputeRequest {
                id: RequestId(id),
                tenant: TenantId(0),
                primitive: Primitive::VectorDotProduct,
                operand_len: 64,
                arrival_ps: 0,
                deadline_ps: deadline,
            })
            .collect();
        Batch {
            class: requests[0].batch_class(),
            requests,
            closed_ps: closed,
            resil: None,
        }
    }

    fn one_site() -> Vec<SiteSpec> {
        vec![SiteSpec {
            node: NodeId(1),
            slots: 1,
            access_ps: 1_000,
        }]
    }

    #[test]
    fn batching_amortizes_fixed_overhead() {
        let m = model();
        let class = BatchClass {
            primitive: Primitive::VectorDotProduct,
            operand_len: 64,
        };
        let (t1, e1) = m.batch_service(class, 1, None);
        let (t8, e8) = m.batch_service(class, 8, None);
        // 8 requests in one batch cost far less than 8 separate passes.
        assert!(t8 < 8 * t1, "t8 {t8} vs 8*t1 {}", 8 * t1);
        assert!(e8.total_j() < 8.0 * e1.total_j());
        // Affinity: already-loaded class skips reconfiguration.
        let (t_hot, _) = m.batch_service(class, 1, Some(class));
        assert!(t_hot < t1);
    }

    #[test]
    fn edf_order_and_slot_release() {
        let mut s = Scheduler::new(model(), one_site());
        s.enqueue(batch(&[1], u64::MAX, 0));
        s.enqueue(batch(&[2], 50_000_000, 0)); // tighter deadline
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1, "one slot, one dispatch");
        assert_eq!(d[0].batch.requests[0].id, RequestId(2));
        assert_eq!(s.backlog_requests(), 1);
        // Slot busy: nothing dispatches until release time.
        assert!(s.try_dispatch(1).is_empty());
        let free = d[0].done_ps;
        s.release(NodeId(1), 0, free);
        let d2 = s.try_dispatch(free);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].batch.requests[0].id, RequestId(1));
    }

    #[test]
    fn hopeless_members_are_shed_before_service() {
        let mut s = Scheduler::new(model(), one_site());
        // Deadline tighter than even the access delay.
        s.enqueue(batch(&[1], 500, 0));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert!(d[0].batch.is_empty());
        assert_eq!(d[0].shed.len(), 1);
        assert_eq!(d[0].shed[0].1, ShedReason::DeadlineExpiredServing);
        // Slot was not burned on the hopeless batch.
        assert_eq!(s.idle_slots(0), 1);
    }

    #[test]
    fn edf_dispatch_with_every_deadline_expired_sheds_everything() {
        let mut s = Scheduler::new(model(), one_site());
        // Three queued batches whose members have all missed their
        // deadlines by dispatch time. EDF must still drain them — in
        // deadline order — as explicit sheds, never burning a slot or a
        // joule on work that cannot be delivered in time.
        s.enqueue(batch(&[1, 2], 5_000, 0));
        s.enqueue(batch(&[3], 2_000, 0));
        s.enqueue(batch(&[4, 5, 6], 8_000, 0));
        let now = 10_000;
        let d = s.try_dispatch(now);
        assert_eq!(d.len(), 3, "each batch yields a (hopeless) dispatch");
        assert!(
            d[0].shed.iter().any(|(r, _)| r.id == RequestId(3)),
            "earliest deadline drains first even when hopeless"
        );
        for disp in &d {
            assert!(disp.batch.is_empty(), "no expired request may run");
            assert_eq!(disp.service_ps, 0);
            assert_eq!(disp.energy.total_j(), 0.0);
            assert!(disp
                .shed
                .iter()
                .all(|(_, reason)| *reason == ShedReason::DeadlineExpiredServing));
        }
        let shed: usize = d.iter().map(|x| x.shed.len()).sum();
        assert_eq!(shed, 6, "every member accounted for");
        assert_eq!(s.backlog_requests(), 0);
        // Nothing actually ran: the slot is still idle and the dispatch
        // counters did not move.
        assert_eq!(s.idle_slots(now), 1);
        assert_eq!(s.batches_dispatched, 0);
        assert_eq!(s.requests_dispatched, 0);
    }

    #[test]
    fn inventory_mirrors_activity() {
        let mut s = Scheduler::new(model(), one_site());
        assert_eq!(s.inventory().available_at(NodeId(1), 0), 1);
        s.enqueue(batch(&[1], u64::MAX, 0));
        let d = s.try_dispatch(0);
        assert_eq!(s.inventory().available_at(NodeId(1), 0), 0);
        s.release(NodeId(1), 0, d[0].done_ps);
        assert_eq!(s.inventory().available_at(NodeId(1), d[0].done_ps), 1);
    }

    #[test]
    fn failed_site_never_dispatches_until_recovered() {
        let mut s = Scheduler::new(model(), one_site());
        assert_eq!(s.fail_site(NodeId(1)), 1);
        assert_eq!(s.healthy_slots(), 0);
        assert_eq!(s.idle_slots(0), 0);
        s.enqueue(batch(&[1], u64::MAX, 0));
        assert!(s.try_dispatch(0).is_empty(), "failed site must not serve");
        assert_eq!(s.backlog_requests(), 1);
        // Double-fail is a no-op; repair restores exactly what failed.
        assert_eq!(s.fail_site(NodeId(1)), 0);
        assert_eq!(s.recover_site(NodeId(1)), 1);
        assert_eq!(s.healthy_slots(), 1);
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].batch.len(), 1);
    }

    fn two_sites() -> Vec<SiteSpec> {
        vec![
            SiteSpec {
                node: NodeId(1),
                slots: 1,
                access_ps: 1_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 1,
                access_ps: 2_000,
            },
        ]
    }

    fn pinned(mut b: Batch, set: u64, member: u8, pin: NodeId, phantom: u32) -> Batch {
        let deadline_ps = b.deadline_ps();
        b.resil = Some(ofpc_resil::ResilTag {
            set,
            member,
            pin,
            phantom,
            deadline_ps,
        });
        b
    }

    #[test]
    fn pinned_member_waits_for_its_site_instead_of_straying() {
        let mut s = Scheduler::new(model(), two_sites());
        // Occupy the pin site with an unpinned batch.
        s.enqueue(pinned(batch(&[1], 10_000_000, 0), 7, 0, NodeId(1), 0));
        s.enqueue(pinned(batch(&[2], 10_000_000, 0), 7, 1, NodeId(2), 0));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 2);
        let to1 = d.iter().find(|x| x.node == NodeId(1)).expect("member at 1");
        let to2 = d.iter().find(|x| x.node == NodeId(2)).expect("member at 2");
        assert_eq!(to1.batch.requests[0].id, RequestId(1));
        assert_eq!(to2.batch.requests[0].id, RequestId(2));
        // Pin site busy: the member queues rather than straying to the
        // idle sibling site (disjointness is the whole point).
        s.enqueue(pinned(batch(&[3], 10_000_000, 0), 8, 0, NodeId(1), 0));
        assert!(s.try_dispatch(1).is_empty());
        assert_eq!(s.backlog_requests(), 1);
    }

    #[test]
    fn busy_pin_does_not_head_of_line_block_later_batches() {
        let mut s = Scheduler::new(model(), two_sites());
        s.enqueue(pinned(batch(&[1], 1_000_000, 0), 1, 0, NodeId(1), 0));
        assert_eq!(s.try_dispatch(0).len(), 1);
        // Earliest-deadline batch is pinned to the busy site; the later
        // unpinned batch must still flow to the idle one.
        s.enqueue(pinned(batch(&[2], 2_000_000, 0), 2, 0, NodeId(1), 0));
        s.enqueue(batch(&[3], 50_000_000, 1));
        let d = s.try_dispatch(1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].batch.requests[0].id, RequestId(3));
        assert_eq!(d[0].node, NodeId(2));
        assert_eq!(s.backlog_requests(), 1, "pinned member still queued");
    }

    #[test]
    fn unreachable_site_is_skipped_until_route_restored() {
        let mut s = Scheduler::new(model(), two_sites());
        s.set_reachable(NodeId(1), false);
        s.enqueue(batch(&[1], u64::MAX, 0));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, NodeId(2), "severed site must not serve");
        assert!(s.site_healthy(NodeId(1)), "slots themselves are fine");
        s.set_reachable(NodeId(1), true);
        s.enqueue(batch(&[2], u64::MAX, 1));
        let d2 = s.try_dispatch(1);
        assert_eq!(d2[0].node, NodeId(1));
    }

    #[test]
    fn cancel_member_removes_only_the_tagged_batch() {
        let mut s = Scheduler::new(model(), one_site());
        s.enqueue(batch(&[1], u64::MAX, 0));
        s.enqueue(pinned(batch(&[2], u64::MAX, 0), 5, 1, NodeId(1), 0));
        assert!(!s.cancel_member(5, 0), "member 0 was never queued");
        assert!(s.cancel_member(5, 1));
        assert!(!s.cancel_member(5, 1), "second cancel is a no-op");
        assert_eq!(s.backlog_requests(), 1);
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].batch.requests[0].id, RequestId(1));
    }

    #[test]
    fn phantom_members_price_the_full_coded_pass() {
        let mut s = Scheduler::new(model(), one_site());
        s.enqueue(pinned(batch(&[1], u64::MAX, 0), 1, 0, NodeId(1), 3));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        let m = model();
        let class = d[0].batch.class;
        let (t4, e4) = m.batch_service(class, 4, None);
        assert_eq!(d[0].service_ps, t4, "1 live + 3 phantom = 4-wide pass");
        assert_eq!(d[0].energy.total_j(), e4.total_j());
        // Dispatch counters track real requests only.
        assert_eq!(s.requests_dispatched, 1);
    }

    #[test]
    fn resil_members_bypass_pre_shedding() {
        let mut s = Scheduler::new(model(), one_site());
        // Deadline tighter than the access delay: an unprotected batch
        // would be shed pre-service, but a set member must launch so the
        // ledger sees a deterministic outcome for it.
        s.enqueue(pinned(batch(&[1], 500, 0), 9, 0, NodeId(1), 0));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert!(d[0].shed.is_empty());
        assert_eq!(d[0].batch.len(), 1);
        assert!(d[0].service_ps > 0);
    }

    #[test]
    fn resize_site_grows_and_retires_without_breaking_flight() {
        let mut s = Scheduler::new(model(), one_site());
        assert_eq!(s.resize_site(NodeId(1), 3, 0), 2);
        assert_eq!(s.total_slots(), 3);
        assert_eq!(s.idle_slots(0), 3);
        // Occupy slot 0, then retire everything down to one slot while
        // the batch is in flight.
        s.enqueue(batch(&[1], u64::MAX, 0));
        let d = s.try_dispatch(0);
        assert_eq!(d.len(), 1);
        assert_eq!(s.resize_site(NodeId(1), 1, 1), 2);
        assert_eq!(s.total_slots(), 1);
        // Releasing a retired slot is a tolerated no-op; the surviving
        // slot keeps working.
        s.release(NodeId(1), 2, d[0].done_ps);
        s.release(NodeId(1), 0, d[0].done_ps);
        s.enqueue(batch(&[2], u64::MAX, 2));
        let d2 = s.try_dispatch(d[0].done_ps);
        assert_eq!(d2.len(), 1);
        // Shrink to zero parks the site without forgetting it.
        assert_eq!(s.resize_site(NodeId(1), 0, 2), 1);
        s.enqueue(batch(&[3], u64::MAX, 3));
        assert!(s.try_dispatch(d2[0].done_ps).is_empty());
        assert_eq!(s.resize_site(NodeId(1), 1, 3), 1);
        assert_eq!(s.try_dispatch(d2[0].done_ps).len(), 1);
    }

    #[test]
    fn delivered_accounts_for_propagation_both_ways() {
        let mut s = Scheduler::new(model(), one_site());
        s.enqueue(batch(&[1], u64::MAX, 0));
        let d = s.try_dispatch(0);
        assert_eq!(d[0].start_ps, 1_000);
        assert_eq!(d[0].delivered_ps, d[0].done_ps + 1_000);
        assert_eq!(d[0].done_ps - d[0].start_ps, d[0].service_ps);
        // The fiber pipelines: the front-end can launch the next batch
        // one access delay before the slot frees.
        assert_eq!(d[0].free_ps, d[0].done_ps - 1_000);
    }
}
