//! Scenario-level fan-out of serving runs over the worker pool.
//!
//! A serving run's event loop is inherently sequential — virtual time
//! advances one event at a time — but experiment harnesses (E12's load
//! sweep, E13's MTBF sweep, E14's overhead comparison) run many
//! *independent* runs, each a pure function of its [`SweepScenario`].
//! [`run_sweep`] scatters those runs across an [`ofpc_par::WorkerPool`]
//! and gathers the reports in scenario order, so the harness's tables
//! and dumped JSON stay byte-identical to the sequential loop at any
//! worker count.
//!
//! Every scenario carries its own seeds (the network seed and
//! `config.seed`); nothing is drawn from a shared stream, which is the
//! seed-splitting contract of DESIGN.md §8 in its simplest form.

use ofpc_core::OnFiberNetwork;
use ofpc_net::{NodeId, Topology};
use ofpc_par::WorkerPool;
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::{Deserialize, Serialize};

use crate::metrics::ServeReport;
use crate::runtime::{EngineFaultEvent, ServeConfig, ServeRuntime};

/// A complete, by-value description of one serving run: line topology,
/// site upgrades, transponder inventory, serving config, and optional
/// fault schedule. Serializable so sweeps can be pinned in replay
/// fixtures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepScenario {
    /// Free-form tag carried through to diagnostics.
    pub label: String,
    /// Line-topology node count.
    pub nodes: usize,
    /// Span length between adjacent nodes, km.
    pub span_km: f64,
    /// Seed for the network's device noise streams.
    pub net_seed: u64,
    /// `(node, engine_slots)` site upgrades applied in order.
    pub upgrades: Vec<(u32, usize)>,
    /// Node hosting the serving front-end.
    pub front_end: u32,
    /// WDM channels per compute transponder.
    pub wdm_channels: usize,
    /// `true` → realistic transponder devices, `false` → ideal.
    pub realistic_transponder: bool,
    /// The serving configuration (tenants, batching, horizon, seed).
    pub config: ServeConfig,
    /// Scheduled engine-site fault transitions.
    pub engine_faults: Vec<EngineFaultEvent>,
    /// Arm the digital CPU fallback path for faulted requests.
    pub digital_fallback: bool,
    /// Kernel backend for the runtime's verification engine. `Scalar`
    /// (what scenarios pinned before this field existed deserialize to)
    /// leaves the runtime byte-identical to historical fixtures;
    /// `Vectorized` runs verification on the fused kernels.
    #[serde(default)]
    pub verify_backend: ofpc_engine::dot::KernelBackend,
}

impl SweepScenario {
    /// The harnesses' standard metro deployment: a three-node line with
    /// 10 km spans and one engine slot at each downstream site.
    pub fn metro(label: &str, net_seed: u64, wdm_channels: usize, config: ServeConfig) -> Self {
        SweepScenario {
            label: label.to_string(),
            nodes: 3,
            span_km: 10.0,
            net_seed,
            upgrades: vec![(1, 1), (2, 1)],
            front_end: 0,
            wdm_channels,
            realistic_transponder: true,
            config,
            engine_faults: Vec::new(),
            digital_fallback: false,
            verify_backend: ofpc_engine::dot::KernelBackend::Scalar,
        }
    }

    /// Build and run the scenario to completion. Pure: same scenario →
    /// same report bytes, on any thread.
    pub fn run(&self) -> ServeReport {
        self.build().run()
    }

    /// Run with an observability handle attached (telemetry never
    /// perturbs the simulation, so the report matches [`Self::run`]).
    pub fn run_with_telemetry(&self, tel: &ofpc_telemetry::Telemetry) -> ServeReport {
        self.build().with_telemetry(tel).run()
    }

    fn build(&self) -> ServeRuntime {
        let mut sys = OnFiberNetwork::new(Topology::line(self.nodes, self.span_km), self.net_seed);
        for &(node, slots) in &self.upgrades {
            sys.upgrade_site(NodeId(node), slots);
        }
        let transponder = if self.realistic_transponder {
            ComputeTransponderConfig::realistic()
        } else {
            ComputeTransponderConfig::ideal()
        };
        let mut runtime = ServeRuntime::over_network(
            &sys,
            NodeId(self.front_end),
            &transponder,
            self.wdm_channels,
            self.config.clone(),
        )
        .with_engine_faults(&self.engine_faults)
        .with_verify_backend(self.verify_backend);
        if self.digital_fallback {
            runtime = runtime.with_digital_fallback(ofpc_apps::digital::ComputeModel::cpu());
        }
        runtime
    }
}

/// Run every scenario across the pool, reports in scenario order.
pub fn run_sweep(pool: &WorkerPool, scenarios: Vec<SweepScenario>) -> Vec<ServeReport> {
    pool.scatter_gather("serve-sweep", scenarios, |_, s| s.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use crate::batcher::BatchPolicy;
    use crate::runtime::TenantSpec;
    use ofpc_engine::Primitive;

    fn tiny_config(seed: u64, rate_rps: f64) -> ServeConfig {
        ServeConfig {
            seed,
            horizon_ps: 50_000_000, // 50 µs
            drain_grace_ps: 50_000_000,
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ps: 2_000_000,
            },
            tenants: vec![TenantSpec {
                name: "t0".to_string(),
                weight: 1,
                queue_capacity: 16,
                arrivals: ArrivalSpec::Poisson { rate_rps },
                primitive: Primitive::VectorDotProduct,
                operand_len: 256,
                deadline_ps: 10_000_000_000,
            }],
            verify_every: 64,
        }
    }

    fn grid() -> Vec<SweepScenario> {
        (0..5)
            .map(|i| {
                SweepScenario::metro(
                    &format!("load-{i}"),
                    7,
                    2,
                    tiny_config(7, 50_000.0 * (i + 1) as f64),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_reports_are_byte_identical_across_worker_counts() {
        let bytes = |workers: usize| {
            let reports = run_sweep(&WorkerPool::new(workers), grid());
            serde_json::to_string_pretty(&reports).expect("serializes")
        };
        let seq = bytes(1);
        assert_eq!(seq, bytes(2));
        assert_eq!(seq, bytes(8));
    }

    #[test]
    fn sweep_order_follows_grid_order() {
        let pool = WorkerPool::new(4);
        let reports = run_sweep(&pool, grid());
        assert_eq!(reports.len(), 5);
        // Offered load rises across the grid; arrival counts must not
        // decrease with it on this short horizon.
        let arrivals: Vec<u64> = reports.iter().map(|r| r.arrivals).collect();
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0], "arrival counts out of order: {arrivals:?}");
        }
    }

    #[test]
    fn verify_backend_defaults_to_scalar_and_sweeps_deterministically() {
        // A scenario document pinned before the backend field existed
        // must parse with the scalar default.
        let mut doc = serde_json::to_value(&grid()[0]).expect("serializes");
        if let serde_json::Value::Map(entries) = &mut doc {
            entries.retain(|(k, _)| k != "verify_backend");
        }
        let back: SweepScenario = serde_json::from_value(&doc).expect("parses");
        assert_eq!(back.verify_backend, ofpc_engine::dot::KernelBackend::Scalar);
        // Vectorized-verify sweeps stay byte-identical across workers.
        let vec_grid = || {
            let mut g = grid();
            for s in &mut g {
                s.verify_backend = ofpc_engine::dot::KernelBackend::Vectorized;
            }
            g
        };
        let bytes = |workers: usize| {
            let reports = run_sweep(&WorkerPool::new(workers), vec_grid());
            serde_json::to_string_pretty(&reports).expect("serializes")
        };
        let seq = bytes(1);
        assert_eq!(seq, bytes(4));
    }

    #[test]
    fn faulted_scenario_round_trips_through_serde() {
        let mut s = SweepScenario::metro("faulty", 3, 2, tiny_config(3, 100_000.0));
        s.engine_faults = vec![EngineFaultEvent {
            at_ps: 10_000_000,
            node: NodeId(1),
            up: false,
        }];
        s.digital_fallback = true;
        let json = serde_json::to_string(&s).expect("serializes");
        let back: SweepScenario = serde_json::from_str(&json).expect("parses");
        assert_eq!(s, back);
    }
}
