//! Admission control: bounded per-tenant queues with weighted fair
//! dequeue and explicit load shedding.
//!
//! Every tenant owns a FIFO of admitted requests with a hard capacity —
//! arrivals beyond it are shed immediately with [`ShedReason::QueueFull`]
//! (backpressure, never silent loss). The batcher drains tenants through
//! deficit round robin (DRR) weighted by the tenant's share, the classic
//! O(1) approximation of weighted fair queueing: under overload each
//! tenant's goodput converges to `weight_i / Σ weight` of capacity, while
//! an underloaded tenant's unused share flows to the others.
//!
//! Admission is also where a tenant's resilience contract is selected:
//! each tenant carries a [`RedundancyMode`] (default
//! [`RedundancyMode::Unprotected`]) that the downstream batcher and
//! redundancy layer consult — protection is a per-tenant admission-time
//! policy, not a per-request flag.

use crate::request::{ComputeRequest, ShedReason, TenantId};
use ofpc_resil::RedundancyMode;
use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;

/// Per-tenant admission state.
#[derive(Debug)]
struct TenantQueue {
    queue: VecDeque<ComputeRequest>,
    capacity: usize,
    weight: u32,
    /// DRR deficit counter, in request-credits scaled by 1000.
    deficit: u64,
    /// The resilience contract this tenant admitted under.
    policy: RedundancyMode,
}

/// The admission controller over all tenants.
#[derive(Debug)]
pub struct AdmissionControl {
    tenants: Vec<TenantQueue>,
    /// Round-robin scan position, so drains resume fairly.
    cursor: usize,
    /// Requests shed at the door or while queued, to be drained by the
    /// runtime and recorded — shedding is an explicit outcome.
    shed: Vec<(ComputeRequest, ShedReason)>,
}

/// DRR quantum granted per weight unit each round (scaled credits; 1000
/// credits = one request).
const CREDITS_PER_WEIGHT: u64 = 1000;

/// One DRR visit to a backlogged tenant: grant this round's credit,
/// then pop requests while credit and budget last, shedding the ones
/// already past deadline. Returns `true` when anything was popped.
///
/// This is the fairness core shared by the dense [`AdmissionControl`]
/// (one slot per configured tenant, the serving runtime) and the sparse
/// [`SparseAdmission`] (active tenants only, the million-tenant ingest
/// shards) — both drains owe their weighted-share guarantee to exactly
/// this step.
fn drr_visit(
    queue: &mut VecDeque<ComputeRequest>,
    deficit: &mut u64,
    weight: u32,
    max_out: usize,
    now_ps: u64,
    out: &mut Vec<ComputeRequest>,
    shed: &mut Vec<(ComputeRequest, ShedReason)>,
) -> bool {
    *deficit += u64::from(weight) * CREDITS_PER_WEIGHT;
    let mut progressed = false;
    while *deficit >= CREDITS_PER_WEIGHT && !queue.is_empty() && out.len() < max_out {
        let req = queue.pop_front().expect("non-empty");
        *deficit -= CREDITS_PER_WEIGHT;
        if req.expired(now_ps) {
            shed.push((req, ShedReason::DeadlineExpiredQueued));
        } else {
            out.push(req);
        }
        progressed = true;
    }
    progressed
}

impl AdmissionControl {
    /// Build with one `(capacity, weight)` pair per tenant. Weights are
    /// relative; zero weights are rejected.
    pub fn new(tenant_caps_weights: &[(usize, u32)]) -> Self {
        assert!(!tenant_caps_weights.is_empty(), "need at least one tenant");
        let tenants = tenant_caps_weights
            .iter()
            .map(|&(capacity, weight)| {
                assert!(capacity > 0, "tenant queue capacity must be positive");
                assert!(weight > 0, "tenant weight must be positive");
                TenantQueue {
                    queue: VecDeque::new(),
                    capacity,
                    weight,
                    deficit: 0,
                    policy: RedundancyMode::Unprotected,
                }
            })
            .collect();
        AdmissionControl {
            tenants,
            cursor: 0,
            shed: Vec::new(),
        }
    }

    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Select `tenant`'s resilience contract (defaults to
    /// [`RedundancyMode::Unprotected`]).
    pub fn set_policy(&mut self, tenant: TenantId, policy: RedundancyMode) {
        self.tenants[tenant.0 as usize].policy = policy;
    }

    /// The resilience contract `tenant` admitted under.
    pub fn policy_of(&self, tenant: TenantId) -> RedundancyMode {
        self.tenants[tenant.0 as usize].policy
    }

    /// Admit or shed an arriving request. Returns `true` when admitted.
    pub fn offer(&mut self, req: ComputeRequest) -> bool {
        let t = &mut self.tenants[req.tenant.0 as usize];
        if t.queue.len() >= t.capacity {
            self.shed.push((req, ShedReason::QueueFull));
            false
        } else {
            t.queue.push_back(req);
            true
        }
    }

    /// Total queued requests across tenants.
    pub fn queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Queue depth of one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.0 as usize].queue.len()
    }

    /// Drop queued requests whose deadline has passed, shedding them
    /// explicitly. Returns how many were expired.
    pub fn expire_stale(&mut self, now_ps: u64) -> usize {
        let mut n = 0;
        for t in &mut self.tenants {
            while let Some(front) = t.queue.front() {
                if front.expired(now_ps) {
                    let req = t.queue.pop_front().expect("front exists");
                    self.shed.push((req, ShedReason::DeadlineExpiredQueued));
                    n += 1;
                } else {
                    break;
                }
            }
        }
        n
    }

    /// Weighted-fair drain of up to `max` requests (deficit round robin).
    /// Skips requests already past deadline (shedding them) and never
    /// returns more than `max`.
    pub fn drain_fair(&mut self, max: usize, now_ps: u64) -> Vec<ComputeRequest> {
        let mut out = Vec::new();
        if max == 0 || self.queued() == 0 {
            return out;
        }
        let n = self.tenants.len();
        // Bound rounds: each full scan either drains something or proves
        // all queues empty.
        while out.len() < max && self.queued() > 0 {
            let mut progressed = false;
            for off in 0..n {
                let i = (self.cursor + off) % n;
                let t = &mut self.tenants[i];
                if t.queue.is_empty() {
                    // An idle tenant banks no credit (DRR resets deficit
                    // for empty queues so idle time is not hoardable).
                    t.deficit = 0;
                    continue;
                }
                progressed |= drr_visit(
                    &mut t.queue,
                    &mut t.deficit,
                    t.weight,
                    max,
                    now_ps,
                    &mut out,
                    &mut self.shed,
                );
                if out.len() >= max {
                    // Resume after this tenant next time.
                    self.cursor = (i + 1) % n;
                    return out;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Take the accumulated shed records (explicit outcomes for the
    /// metrics layer).
    pub fn take_shed(&mut self) -> Vec<(ComputeRequest, ShedReason)> {
        std::mem::take(&mut self.shed)
    }
}

/// Admission-time shape of one tenant: queue bound and fair-share
/// weight. Sparse admission takes the shape *per offer* (derived from
/// the tenant's class) instead of storing it per tenant, so an idle
/// tenant costs zero bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantShape {
    pub capacity: usize,
    pub weight: u32,
}

/// Per-tenant state while (and only while) the tenant is backlogged.
#[derive(Debug)]
struct SparseQueue {
    queue: VecDeque<ComputeRequest>,
    deficit: u64,
    shape: TenantShape,
}

/// Sparse admission control for tenant populations far larger than the
/// backlog: the million-tenant shard-local variant of
/// [`AdmissionControl`].
///
/// Only *backlogged* tenants hold state — a tenant's queue entry is
/// created on its first queued request and evicted the moment its queue
/// drains, so memory is bounded by the instantaneous backlog, never by
/// the tenant universe. Eviction also drops the DRR deficit: an idle
/// tenant banks no credit (the dense controller resets idle deficits on
/// its next scan; the sparse one applies the same policy eagerly at
/// eviction, which is what makes the eviction lossless).
///
/// Fairness comes from the same `drr_visit` core as the dense
/// controller; the round-robin cursor is a tenant *id* rather than a
/// vector index, so it survives eviction and migration. Tenants can be
/// removed wholesale ([`SparseAdmission::remove_tenant`]) and adopted
/// with their queued work ([`SparseAdmission::adopt`]) — the
/// message-passing shard rebalance moves tenant state through exactly
/// that pair.
#[derive(Debug, Default)]
pub struct SparseAdmission {
    active: BTreeMap<TenantId, SparseQueue>,
    /// Drains resume strictly after this tenant id.
    cursor: Option<TenantId>,
    shed: Vec<(ComputeRequest, ShedReason)>,
    queued: usize,
}

impl SparseAdmission {
    pub fn new() -> Self {
        SparseAdmission::default()
    }

    /// Admit or shed an arriving request under `shape`. Returns `true`
    /// when admitted. The shape travels with the offer (it is a function
    /// of the tenant's class); a backlogged tenant's shape follows the
    /// latest offer.
    pub fn offer(&mut self, req: ComputeRequest, shape: TenantShape) -> bool {
        assert!(shape.capacity > 0, "tenant queue capacity must be positive");
        assert!(shape.weight > 0, "tenant weight must be positive");
        let t = self
            .active
            .entry(req.tenant)
            .or_insert_with(|| SparseQueue {
                queue: VecDeque::new(),
                deficit: 0,
                shape,
            });
        t.shape = shape;
        if t.queue.len() >= shape.capacity {
            self.shed.push((req, ShedReason::QueueFull));
            false
        } else {
            t.queue.push_back(req);
            self.queued += 1;
            true
        }
    }

    /// Total queued requests across all backlogged tenants.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Queue depth of one tenant (0 when idle/evicted).
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.active.get(&tenant).map_or(0, |t| t.queue.len())
    }

    /// Tenants currently holding state — the memory bound.
    pub fn active_tenants(&self) -> usize {
        self.active.len()
    }

    /// Backlogged tenants by queue depth, deepest first (ties by id) —
    /// the rebalancer's hot-tenant candidates.
    pub fn hottest(&self, limit: usize) -> Vec<(TenantId, usize)> {
        let mut v: Vec<(TenantId, usize)> = self
            .active
            .iter()
            .map(|(&t, q)| (t, q.queue.len()))
            .collect();
        v.sort_by_key(|&(t, depth)| (std::cmp::Reverse(depth), t));
        v.truncate(limit);
        v
    }

    /// Drop queued requests whose deadline has passed, shedding them
    /// explicitly, and evict tenants drained empty by the sweep.
    pub fn expire_stale(&mut self, now_ps: u64) -> usize {
        let mut n = 0;
        for t in self.active.values_mut() {
            while let Some(front) = t.queue.front() {
                if front.expired(now_ps) {
                    let req = t.queue.pop_front().expect("front exists");
                    self.shed.push((req, ShedReason::DeadlineExpiredQueued));
                    self.queued -= 1;
                    n += 1;
                } else {
                    break;
                }
            }
        }
        self.active.retain(|_, t| !t.queue.is_empty());
        n
    }

    /// Weighted-fair drain of up to `max` requests (deficit round
    /// robin over the backlogged tenants, resuming after the cursor).
    pub fn drain_fair(&mut self, max: usize, now_ps: u64) -> Vec<ComputeRequest> {
        let mut out = Vec::new();
        if max == 0 || self.queued == 0 {
            return out;
        }
        'rounds: while out.len() < max && self.queued > 0 {
            // Cyclic visit order: ids after the cursor, then wrap.
            let mut order: Vec<TenantId> = match self.cursor {
                Some(c) => self
                    .active
                    .range((Bound::Excluded(c), Bound::Unbounded))
                    .map(|(&t, _)| t)
                    .chain(
                        self.active
                            .range((Bound::Unbounded, Bound::Included(c)))
                            .map(|(&t, _)| t),
                    )
                    .collect(),
                None => self.active.keys().copied().collect(),
            };
            let mut progressed = false;
            for tenant in order.drain(..) {
                let Some(t) = self.active.get_mut(&tenant) else {
                    continue;
                };
                let before = out.len() + self.shed.len();
                progressed |= drr_visit(
                    &mut t.queue,
                    &mut t.deficit,
                    t.shape.weight,
                    max,
                    now_ps,
                    &mut out,
                    &mut self.shed,
                );
                self.queued -= out.len() + self.shed.len() - before;
                if t.queue.is_empty() {
                    // Idle tenants bank no credit; drop the state.
                    self.active.remove(&tenant);
                }
                if out.len() >= max {
                    self.cursor = Some(tenant);
                    break 'rounds;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Take the accumulated shed records.
    pub fn take_shed(&mut self) -> Vec<(ComputeRequest, ShedReason)> {
        std::mem::take(&mut self.shed)
    }

    /// Remove a tenant and return its queued requests in FIFO order
    /// (the outbound half of a migration; the deficit is dropped, as at
    /// any other eviction).
    pub fn remove_tenant(&mut self, tenant: TenantId) -> Vec<ComputeRequest> {
        match self.active.remove(&tenant) {
            Some(t) => {
                self.queued -= t.queue.len();
                t.queue.into()
            }
            None => Vec::new(),
        }
    }

    /// Adopt a migrated tenant's queued requests, preserving their
    /// order and re-applying the queue bound (overflow sheds here, on
    /// the receiving shard, so conservation holds across the move).
    pub fn adopt(&mut self, requests: Vec<ComputeRequest>, shape: TenantShape) {
        for req in requests {
            self.offer(req, shape);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use ofpc_engine::Primitive;

    fn req(id: u64, tenant: u32, deadline: u64) -> ComputeRequest {
        ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(tenant),
            primitive: Primitive::VectorDotProduct,
            operand_len: 8,
            arrival_ps: 0,
            deadline_ps: deadline,
        }
    }

    #[test]
    fn full_queue_sheds_with_reason() {
        let mut ac = AdmissionControl::new(&[(2, 1)]);
        assert!(ac.offer(req(1, 0, 100)));
        assert!(ac.offer(req(2, 0, 100)));
        assert!(!ac.offer(req(3, 0, 100)));
        let shed = ac.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.id, RequestId(3));
        assert_eq!(shed[0].1, ShedReason::QueueFull);
    }

    #[test]
    fn drain_respects_weights_under_backlog() {
        // Tenant 0 weight 3, tenant 1 weight 1; both deeply backlogged.
        let mut ac = AdmissionControl::new(&[(100, 3), (100, 1)]);
        for i in 0..100 {
            ac.offer(req(i, 0, u64::MAX));
            ac.offer(req(100 + i, 1, u64::MAX));
        }
        let drained = ac.drain_fair(40, 0);
        assert_eq!(drained.len(), 40);
        let t0 = drained.iter().filter(|r| r.tenant == TenantId(0)).count();
        let t1 = drained.len() - t0;
        // 3:1 split with rounding slop.
        assert!((28..=32).contains(&t0), "t0 got {t0}");
        assert!((8..=12).contains(&t1), "t1 got {t1}");
    }

    #[test]
    fn idle_tenant_share_flows_to_busy_tenant() {
        let mut ac = AdmissionControl::new(&[(100, 1), (100, 1)]);
        for i in 0..50 {
            ac.offer(req(i, 0, u64::MAX));
        }
        let drained = ac.drain_fair(30, 0);
        assert_eq!(drained.len(), 30);
        assert!(drained.iter().all(|r| r.tenant == TenantId(0)));
    }

    #[test]
    fn expired_requests_are_shed_not_returned() {
        let mut ac = AdmissionControl::new(&[(10, 1)]);
        ac.offer(req(1, 0, 50));
        ac.offer(req(2, 0, 500));
        let drained = ac.drain_fair(10, 100);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, RequestId(2));
        let shed = ac.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].1, ShedReason::DeadlineExpiredQueued);
    }

    #[test]
    fn expire_stale_sweeps_queue_heads() {
        let mut ac = AdmissionControl::new(&[(10, 1), (10, 1)]);
        ac.offer(req(1, 0, 10));
        ac.offer(req(2, 0, 20));
        ac.offer(req(3, 1, 5));
        assert_eq!(ac.expire_stale(15), 2);
        assert_eq!(ac.queued(), 1);
        assert_eq!(ac.take_shed().len(), 2);
    }

    #[test]
    #[should_panic(expected = "tenant weight must be positive")]
    fn zero_weight_tenant_is_rejected_at_construction() {
        // DRR grants credit per weight unit per round: a zero-weight
        // tenant would bank nothing forever and starve while holding a
        // live queue. Construction refuses the config outright rather
        // than letting the scheduler discover the black hole at runtime.
        let _ = AdmissionControl::new(&[(16, 3), (16, 0)]);
    }

    #[test]
    fn redundancy_policy_is_per_tenant_and_defaults_unprotected() {
        let mut ac = AdmissionControl::new(&[(4, 1), (4, 1)]);
        assert_eq!(ac.policy_of(TenantId(0)), RedundancyMode::Unprotected);
        ac.set_policy(TenantId(1), RedundancyMode::Replica);
        assert_eq!(ac.policy_of(TenantId(0)), RedundancyMode::Unprotected);
        assert_eq!(ac.policy_of(TenantId(1)), RedundancyMode::Replica);
    }

    fn shape(capacity: usize, weight: u32) -> TenantShape {
        TenantShape { capacity, weight }
    }

    #[test]
    fn sparse_state_is_bounded_by_backlog_not_population() {
        let mut ac = SparseAdmission::new();
        // A million-tenant universe where only three tenants ever queue.
        for (i, t) in [7u32, 500_000, 999_999].iter().enumerate() {
            ac.offer(req(i as u64, *t, u64::MAX), shape(8, 1));
        }
        assert_eq!(ac.active_tenants(), 3);
        assert_eq!(ac.queued(), 3);
        let drained = ac.drain_fair(10, 0);
        assert_eq!(drained.len(), 3);
        // Drained dry → evicted: zero retained state.
        assert_eq!(ac.active_tenants(), 0);
        assert_eq!(ac.queued_for(TenantId(500_000)), 0);
    }

    #[test]
    fn sparse_drain_respects_weights_under_backlog() {
        let mut ac = SparseAdmission::new();
        for i in 0..100 {
            ac.offer(req(i, 11, u64::MAX), shape(100, 3));
            ac.offer(req(100 + i, 903_214, u64::MAX), shape(100, 1));
        }
        let drained = ac.drain_fair(40, 0);
        assert_eq!(drained.len(), 40);
        let t0 = drained.iter().filter(|r| r.tenant == TenantId(11)).count();
        assert!((28..=32).contains(&t0), "t0 got {t0}");
    }

    #[test]
    fn sparse_matches_dense_drain_on_a_dense_universe() {
        // On a fully-backlogged dense tenant set the two controllers
        // must drain the same multiset per tenant — the shared DRR core
        // is the guarantee, this pins it.
        let weights = [(50usize, 3u32), (50, 1), (50, 2)];
        let mut dense = AdmissionControl::new(&weights);
        let mut sparse = SparseAdmission::new();
        let mut id = 0;
        for round in 0..30 {
            for (t, &(cap, w)) in weights.iter().enumerate() {
                let r = req(id, t as u32, u64::MAX);
                dense.offer(r.clone());
                sparse.offer(r, shape(cap, w));
                id += 1;
                let _ = round;
            }
        }
        let d = dense.drain_fair(60, 0);
        let s = sparse.drain_fair(60, 0);
        for t in 0..weights.len() as u32 {
            let dc = d.iter().filter(|r| r.tenant == TenantId(t)).count();
            let sc = s.iter().filter(|r| r.tenant == TenantId(t)).count();
            assert_eq!(dc, sc, "tenant {t} share diverged");
        }
    }

    #[test]
    fn sparse_full_queue_sheds_and_expiry_evicts() {
        let mut ac = SparseAdmission::new();
        assert!(ac.offer(req(1, 0, 100), shape(1, 1)));
        assert!(!ac.offer(req(2, 0, 100), shape(1, 1)));
        assert_eq!(ac.take_shed().len(), 1);
        assert_eq!(ac.expire_stale(200), 1);
        assert_eq!(ac.active_tenants(), 0, "expired tenant evicted");
        assert_eq!(ac.take_shed()[0].1, ShedReason::DeadlineExpiredQueued);
    }

    #[test]
    fn sparse_migration_conserves_requests() {
        let mut src = SparseAdmission::new();
        let mut dst = SparseAdmission::new();
        for i in 0..6 {
            src.offer(req(i, 42, u64::MAX), shape(8, 2));
        }
        let moved = src.remove_tenant(TenantId(42));
        assert_eq!(moved.len(), 6);
        assert_eq!(src.queued(), 0);
        // Destination re-applies a tighter bound: overflow sheds there.
        dst.adopt(moved, shape(4, 2));
        assert_eq!(dst.queued_for(TenantId(42)), 4);
        assert_eq!(dst.take_shed().len(), 2);
        let drained = dst.drain_fair(10, 0);
        assert_eq!(drained[0].id, RequestId(0), "FIFO order preserved");
    }

    #[test]
    fn sparse_hottest_ranks_by_depth_then_id() {
        let mut ac = SparseAdmission::new();
        for i in 0..5 {
            ac.offer(req(i, 1, u64::MAX), shape(8, 1));
        }
        for i in 5..8 {
            ac.offer(req(i, 2, u64::MAX), shape(8, 1));
        }
        ac.offer(req(8, 3, u64::MAX), shape(8, 1));
        let hot = ac.hottest(2);
        assert_eq!(hot, vec![(TenantId(1), 5), (TenantId(2), 3)]);
    }

    #[test]
    fn conservation_nothing_lost() {
        let mut ac = AdmissionControl::new(&[(5, 2), (5, 1)]);
        let mut offered = 0;
        for i in 0..20 {
            ac.offer(req(
                i,
                (i % 2) as u32,
                if i % 3 == 0 { 1 } else { u64::MAX },
            ));
            offered += 1;
        }
        let drained = ac.drain_fair(100, 10).len();
        let shed = ac.take_shed().len();
        let queued = ac.queued();
        assert_eq!(drained + shed + queued, offered);
    }
}
