//! Admission control: bounded per-tenant queues with weighted fair
//! dequeue and explicit load shedding.
//!
//! Every tenant owns a FIFO of admitted requests with a hard capacity —
//! arrivals beyond it are shed immediately with [`ShedReason::QueueFull`]
//! (backpressure, never silent loss). The batcher drains tenants through
//! deficit round robin (DRR) weighted by the tenant's share, the classic
//! O(1) approximation of weighted fair queueing: under overload each
//! tenant's goodput converges to `weight_i / Σ weight` of capacity, while
//! an underloaded tenant's unused share flows to the others.
//!
//! Admission is also where a tenant's resilience contract is selected:
//! each tenant carries a [`RedundancyMode`] (default
//! [`RedundancyMode::Unprotected`]) that the downstream batcher and
//! redundancy layer consult — protection is a per-tenant admission-time
//! policy, not a per-request flag.

use crate::request::{ComputeRequest, ShedReason, TenantId};
use ofpc_resil::RedundancyMode;
use std::collections::VecDeque;

/// Per-tenant admission state.
#[derive(Debug)]
struct TenantQueue {
    queue: VecDeque<ComputeRequest>,
    capacity: usize,
    weight: u32,
    /// DRR deficit counter, in request-credits scaled by 1000.
    deficit: u64,
    /// The resilience contract this tenant admitted under.
    policy: RedundancyMode,
}

/// The admission controller over all tenants.
#[derive(Debug)]
pub struct AdmissionControl {
    tenants: Vec<TenantQueue>,
    /// Round-robin scan position, so drains resume fairly.
    cursor: usize,
    /// Requests shed at the door or while queued, to be drained by the
    /// runtime and recorded — shedding is an explicit outcome.
    shed: Vec<(ComputeRequest, ShedReason)>,
}

/// DRR quantum granted per weight unit each round (scaled credits; 1000
/// credits = one request).
const CREDITS_PER_WEIGHT: u64 = 1000;

impl AdmissionControl {
    /// Build with one `(capacity, weight)` pair per tenant. Weights are
    /// relative; zero weights are rejected.
    pub fn new(tenant_caps_weights: &[(usize, u32)]) -> Self {
        assert!(!tenant_caps_weights.is_empty(), "need at least one tenant");
        let tenants = tenant_caps_weights
            .iter()
            .map(|&(capacity, weight)| {
                assert!(capacity > 0, "tenant queue capacity must be positive");
                assert!(weight > 0, "tenant weight must be positive");
                TenantQueue {
                    queue: VecDeque::new(),
                    capacity,
                    weight,
                    deficit: 0,
                    policy: RedundancyMode::Unprotected,
                }
            })
            .collect();
        AdmissionControl {
            tenants,
            cursor: 0,
            shed: Vec::new(),
        }
    }

    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Select `tenant`'s resilience contract (defaults to
    /// [`RedundancyMode::Unprotected`]).
    pub fn set_policy(&mut self, tenant: TenantId, policy: RedundancyMode) {
        self.tenants[tenant.0 as usize].policy = policy;
    }

    /// The resilience contract `tenant` admitted under.
    pub fn policy_of(&self, tenant: TenantId) -> RedundancyMode {
        self.tenants[tenant.0 as usize].policy
    }

    /// Admit or shed an arriving request. Returns `true` when admitted.
    pub fn offer(&mut self, req: ComputeRequest) -> bool {
        let t = &mut self.tenants[req.tenant.0 as usize];
        if t.queue.len() >= t.capacity {
            self.shed.push((req, ShedReason::QueueFull));
            false
        } else {
            t.queue.push_back(req);
            true
        }
    }

    /// Total queued requests across tenants.
    pub fn queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Queue depth of one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.0 as usize].queue.len()
    }

    /// Drop queued requests whose deadline has passed, shedding them
    /// explicitly. Returns how many were expired.
    pub fn expire_stale(&mut self, now_ps: u64) -> usize {
        let mut n = 0;
        for t in &mut self.tenants {
            while let Some(front) = t.queue.front() {
                if front.expired(now_ps) {
                    let req = t.queue.pop_front().expect("front exists");
                    self.shed.push((req, ShedReason::DeadlineExpiredQueued));
                    n += 1;
                } else {
                    break;
                }
            }
        }
        n
    }

    /// Weighted-fair drain of up to `max` requests (deficit round robin).
    /// Skips requests already past deadline (shedding them) and never
    /// returns more than `max`.
    pub fn drain_fair(&mut self, max: usize, now_ps: u64) -> Vec<ComputeRequest> {
        let mut out = Vec::new();
        if max == 0 || self.queued() == 0 {
            return out;
        }
        let n = self.tenants.len();
        // Bound rounds: each full scan either drains something or proves
        // all queues empty.
        while out.len() < max && self.queued() > 0 {
            let mut progressed = false;
            for off in 0..n {
                let i = (self.cursor + off) % n;
                let t = &mut self.tenants[i];
                if t.queue.is_empty() {
                    // An idle tenant banks no credit (DRR resets deficit
                    // for empty queues so idle time is not hoardable).
                    t.deficit = 0;
                    continue;
                }
                t.deficit += u64::from(t.weight) * CREDITS_PER_WEIGHT;
                while t.deficit >= CREDITS_PER_WEIGHT && !t.queue.is_empty() && out.len() < max {
                    let req = t.queue.pop_front().expect("non-empty");
                    t.deficit -= CREDITS_PER_WEIGHT;
                    if req.expired(now_ps) {
                        self.shed.push((req, ShedReason::DeadlineExpiredQueued));
                    } else {
                        out.push(req);
                    }
                    progressed = true;
                }
                if out.len() >= max {
                    // Resume after this tenant next time.
                    self.cursor = (i + 1) % n;
                    return out;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Take the accumulated shed records (explicit outcomes for the
    /// metrics layer).
    pub fn take_shed(&mut self) -> Vec<(ComputeRequest, ShedReason)> {
        std::mem::take(&mut self.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use ofpc_engine::Primitive;

    fn req(id: u64, tenant: u32, deadline: u64) -> ComputeRequest {
        ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(tenant),
            primitive: Primitive::VectorDotProduct,
            operand_len: 8,
            arrival_ps: 0,
            deadline_ps: deadline,
        }
    }

    #[test]
    fn full_queue_sheds_with_reason() {
        let mut ac = AdmissionControl::new(&[(2, 1)]);
        assert!(ac.offer(req(1, 0, 100)));
        assert!(ac.offer(req(2, 0, 100)));
        assert!(!ac.offer(req(3, 0, 100)));
        let shed = ac.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.id, RequestId(3));
        assert_eq!(shed[0].1, ShedReason::QueueFull);
    }

    #[test]
    fn drain_respects_weights_under_backlog() {
        // Tenant 0 weight 3, tenant 1 weight 1; both deeply backlogged.
        let mut ac = AdmissionControl::new(&[(100, 3), (100, 1)]);
        for i in 0..100 {
            ac.offer(req(i, 0, u64::MAX));
            ac.offer(req(100 + i, 1, u64::MAX));
        }
        let drained = ac.drain_fair(40, 0);
        assert_eq!(drained.len(), 40);
        let t0 = drained.iter().filter(|r| r.tenant == TenantId(0)).count();
        let t1 = drained.len() - t0;
        // 3:1 split with rounding slop.
        assert!((28..=32).contains(&t0), "t0 got {t0}");
        assert!((8..=12).contains(&t1), "t1 got {t1}");
    }

    #[test]
    fn idle_tenant_share_flows_to_busy_tenant() {
        let mut ac = AdmissionControl::new(&[(100, 1), (100, 1)]);
        for i in 0..50 {
            ac.offer(req(i, 0, u64::MAX));
        }
        let drained = ac.drain_fair(30, 0);
        assert_eq!(drained.len(), 30);
        assert!(drained.iter().all(|r| r.tenant == TenantId(0)));
    }

    #[test]
    fn expired_requests_are_shed_not_returned() {
        let mut ac = AdmissionControl::new(&[(10, 1)]);
        ac.offer(req(1, 0, 50));
        ac.offer(req(2, 0, 500));
        let drained = ac.drain_fair(10, 100);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, RequestId(2));
        let shed = ac.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].1, ShedReason::DeadlineExpiredQueued);
    }

    #[test]
    fn expire_stale_sweeps_queue_heads() {
        let mut ac = AdmissionControl::new(&[(10, 1), (10, 1)]);
        ac.offer(req(1, 0, 10));
        ac.offer(req(2, 0, 20));
        ac.offer(req(3, 1, 5));
        assert_eq!(ac.expire_stale(15), 2);
        assert_eq!(ac.queued(), 1);
        assert_eq!(ac.take_shed().len(), 2);
    }

    #[test]
    #[should_panic(expected = "tenant weight must be positive")]
    fn zero_weight_tenant_is_rejected_at_construction() {
        // DRR grants credit per weight unit per round: a zero-weight
        // tenant would bank nothing forever and starve while holding a
        // live queue. Construction refuses the config outright rather
        // than letting the scheduler discover the black hole at runtime.
        let _ = AdmissionControl::new(&[(16, 3), (16, 0)]);
    }

    #[test]
    fn redundancy_policy_is_per_tenant_and_defaults_unprotected() {
        let mut ac = AdmissionControl::new(&[(4, 1), (4, 1)]);
        assert_eq!(ac.policy_of(TenantId(0)), RedundancyMode::Unprotected);
        ac.set_policy(TenantId(1), RedundancyMode::Replica);
        assert_eq!(ac.policy_of(TenantId(0)), RedundancyMode::Unprotected);
        assert_eq!(ac.policy_of(TenantId(1)), RedundancyMode::Replica);
    }

    #[test]
    fn conservation_nothing_lost() {
        let mut ac = AdmissionControl::new(&[(5, 2), (5, 1)]);
        let mut offered = 0;
        for i in 0..20 {
            ac.offer(req(
                i,
                (i % 2) as u32,
                if i % 3 == 0 { 1 } else { u64::MAX },
            ));
            offered += 1;
        }
        let drained = ac.drain_fair(100, 10).len();
        let shed = ac.take_shed().len();
        let queued = ac.queued();
        assert_eq!(drained + shed + queued, offered);
    }
}
