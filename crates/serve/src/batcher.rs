//! Dynamic batching: coalesce compatible requests into WDM wavelength
//! batches, inference-server style.
//!
//! One photonic pass configures the substrate once (weights/pattern,
//! engine settling) and then streams operand vectors over parallel WDM
//! channels, so requests that share a [`BatchClass`] amortize the fixed
//! per-pass overhead. The batcher holds an open batch per class and
//! closes it when it reaches `max_batch` (the wavelength-parallel width)
//! or when its oldest member has waited `max_wait_ps` — the same
//! size-or-timeout rule digital inference servers use.

use crate::request::{BatchClass, ComputeRequest};
use ofpc_resil::ResilTag;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Batch closing policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum requests per batch (≥ 1). Bounded by the WDM channel
    /// count the scheduler can light at once.
    pub max_batch: usize,
    /// Maximum time the oldest member may wait before the batch is
    /// forced closed, ps.
    pub max_wait_ps: u64,
}

impl BatchPolicy {
    /// Batching disabled: every request becomes its own batch.
    pub fn disabled() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait_ps: 0,
        }
    }
}

/// A closed batch, ready for the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    pub class: BatchClass,
    pub requests: Vec<ComputeRequest>,
    /// When the batch was closed, ps.
    pub closed_ps: u64,
    /// Redundancy-set membership, when this batch is one member of a
    /// replica/parity set (`None` for ordinary unprotected batches).
    pub resil: Option<ResilTag>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Earliest member deadline — what EDF scheduling sorts by. A
    /// requestless parity member inherits its set's deadline through
    /// the tag, so the coded group is not starved behind real batches.
    pub fn deadline_ps(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.deadline_ps)
            .min()
            .or_else(|| self.resil.map(|t| t.deadline_ps))
            .unwrap_or(u64::MAX)
    }

    /// Earliest member arrival (for batch-wait accounting).
    pub fn oldest_arrival_ps(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.arrival_ps)
            .min()
            .unwrap_or(0)
    }
}

/// An open (still accumulating) batch.
#[derive(Debug)]
struct OpenBatch {
    requests: Vec<ComputeRequest>,
    /// When the first member was added, ps.
    opened_ps: u64,
}

/// The dynamic batcher across all compatibility classes.
///
/// Open batches are keyed by `(redundancy mode rank, class)`: requests
/// of protected and unprotected tenants never share a batch, because a
/// redundancy set must cover every member of its batch (one tenant's
/// replica cannot silently replicate another tenant's work).
#[derive(Debug)]
pub struct Batcher {
    policy: BatchPolicy,
    /// BTreeMap for deterministic iteration order across runs.
    open: BTreeMap<(u8, BatchClass), OpenBatch>,
    closed: Vec<Batch>,
}

impl Batcher {
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        Batcher {
            policy,
            open: BTreeMap::new(),
            closed: Vec::new(),
        }
    }

    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Add a request to its class's open batch, closing the batch when
    /// it fills. Unprotected shorthand for [`Batcher::push_with_mode`].
    pub fn push(&mut self, req: ComputeRequest, now_ps: u64) {
        self.push_with_mode(req, 0, now_ps);
    }

    /// Add a request under its tenant's redundancy-mode rank (see
    /// `ofpc_resil::RedundancyMode::rank`): batches stay pure per mode
    /// so the redundancy layer can expand whole batches into sets.
    pub fn push_with_mode(&mut self, req: ComputeRequest, mode_rank: u8, now_ps: u64) {
        let class = req.batch_class();
        let key = (mode_rank, class);
        let entry = self.open.entry(key).or_insert_with(|| OpenBatch {
            requests: Vec::new(),
            opened_ps: now_ps,
        });
        entry.requests.push(req);
        if entry.requests.len() >= self.policy.max_batch {
            let done = self.open.remove(&key).expect("just inserted");
            self.closed.push(Batch {
                class,
                requests: done.requests,
                closed_ps: now_ps,
                resil: None,
            });
        }
    }

    /// Close any open batch whose oldest member has waited out the
    /// policy timeout.
    pub fn flush_timeouts(&mut self, now_ps: u64) {
        let due: Vec<(u8, BatchClass)> = self
            .open
            .iter()
            .filter(|(_, b)| now_ps.saturating_sub(b.opened_ps) >= self.policy.max_wait_ps)
            .map(|(&k, _)| k)
            .collect();
        for key in due {
            let b = self.open.remove(&key).expect("listed above");
            self.closed.push(Batch {
                class: key.1,
                requests: b.requests,
                closed_ps: now_ps,
                resil: None,
            });
        }
    }

    /// Force-close everything (end of run, or scheduler idle with free
    /// capacity — holding requests while transponders sit idle only adds
    /// latency).
    pub fn flush_all(&mut self, now_ps: u64) {
        let keys: Vec<(u8, BatchClass)> = self.open.keys().copied().collect();
        for key in keys {
            let b = self.open.remove(&key).expect("listed above");
            self.closed.push(Batch {
                class: key.1,
                requests: b.requests,
                closed_ps: now_ps,
                resil: None,
            });
        }
    }

    /// The next deadline at which `flush_timeouts` would act, if any.
    pub fn next_timeout_ps(&self) -> Option<u64> {
        self.open
            .values()
            .map(|b| b.opened_ps + self.policy.max_wait_ps)
            .min()
    }

    /// Pending open-batch requests (not yet closed).
    pub fn open_len(&self) -> usize {
        self.open.values().map(|b| b.requests.len()).sum()
    }

    /// Take all closed batches, in close order.
    pub fn take_closed(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, TenantId};
    use ofpc_engine::Primitive;

    fn req(id: u64, len: usize, arrival: u64) -> ComputeRequest {
        ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: len as u32,
            arrival_ps: arrival,
            deadline_ps: arrival + 1_000_000,
        }
    }

    #[test]
    fn fills_to_max_batch() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 3,
            max_wait_ps: 1_000,
        });
        for i in 0..7 {
            b.push(req(i, 8, i), i);
        }
        let closed = b.take_closed();
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().all(|c| c.len() == 3));
        assert_eq!(b.open_len(), 1);
    }

    #[test]
    fn timeout_closes_partial_batches() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 8,
            max_wait_ps: 100,
        });
        b.push(req(1, 8, 0), 0);
        b.flush_timeouts(50);
        assert!(b.take_closed().is_empty());
        b.flush_timeouts(100);
        let closed = b.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 1);
        assert_eq!(closed[0].closed_ps, 100);
    }

    #[test]
    fn classes_do_not_mix() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_wait_ps: 1_000,
        });
        b.push(req(1, 8, 0), 0);
        b.push(req(2, 16, 0), 0); // different shape
        let mut r3 = req(3, 8, 0);
        r3.primitive = Primitive::NonlinearFunction; // different primitive
        b.push(r3, 0);
        assert!(b.take_closed().is_empty());
        assert_eq!(b.open_len(), 3);
        b.push(req(4, 8, 1), 1); // completes the (P1, 8) batch
        let closed = b.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].class.operand_len, 8);
        assert_eq!(closed[0].len(), 2);
    }

    #[test]
    fn disabled_policy_is_one_request_per_batch() {
        let mut b = Batcher::new(BatchPolicy::disabled());
        for i in 0..4 {
            b.push(req(i, 8, i), i);
        }
        let closed = b.take_closed();
        assert_eq!(closed.len(), 4);
        assert!(closed.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn batch_deadline_is_min_member_deadline() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_wait_ps: 0,
        });
        let mut r1 = req(1, 8, 0);
        r1.deadline_ps = 500;
        let mut r2 = req(2, 8, 0);
        r2.deadline_ps = 300;
        b.push(r1, 0);
        b.push(r2, 0);
        let closed = b.take_closed();
        assert_eq!(closed[0].deadline_ps(), 300);
    }

    #[test]
    fn redundancy_modes_do_not_mix_in_one_batch() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_wait_ps: 1_000,
        });
        // Same class, different tenant protection modes: kept apart.
        b.push_with_mode(req(1, 8, 0), 0, 0);
        b.push_with_mode(req(2, 8, 0), 1, 0);
        assert!(b.take_closed().is_empty());
        assert_eq!(b.open_len(), 2);
        b.push_with_mode(req(3, 8, 0), 1, 0); // fills the rank-1 batch
        let closed = b.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 2);
        assert!(closed[0].resil.is_none(), "tagging happens at expansion");
    }

    #[test]
    fn empty_batch_deadline_comes_from_the_resil_tag() {
        use ofpc_net::NodeId;
        let parity = Batch {
            class: req(1, 8, 0).batch_class(),
            requests: Vec::new(),
            closed_ps: 0,
            resil: Some(ResilTag {
                set: 1,
                member: 2,
                pin: NodeId(3),
                phantom: 4,
                deadline_ps: 777,
            }),
        };
        assert_eq!(parity.deadline_ps(), 777);
    }

    #[test]
    fn next_timeout_tracks_oldest_open_batch() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 8,
            max_wait_ps: 100,
        });
        assert_eq!(b.next_timeout_ps(), None);
        b.push(req(1, 8, 10), 10);
        b.push(req(2, 16, 30), 30);
        assert_eq!(b.next_timeout_ps(), Some(110));
    }
}
