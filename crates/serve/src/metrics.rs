//! Serving metrics: what makes a photonic accelerator comparable to a
//! digital inference stack.
//!
//! Collectors are exact (latencies kept as integer picoseconds, sorted at
//! report time) and the report serializes deterministically — a fixed
//! seed must yield byte-identical JSON, which the replay tests enforce.
//! Conservation is checked structurally: every arrival is completed,
//! shed (with a reason), or still in flight at the horizon; nothing is
//! silently dropped.

use crate::request::{Outcome, ShedReason, TenantId};
use ofpc_telemetry::{labels, Counter, Gauge, Histogram, Telemetry};
use serde::{Deserialize, Serialize};

/// Per-tenant running counters.
#[derive(Debug, Clone, Default)]
pub struct TenantCollector {
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    /// Requests answered by the digital fallback (correct, degraded).
    pub degraded: u64,
    pub degraded_energy_j: f64,
    /// Completed-request latencies, ps (exact, sorted at report time).
    latencies_ps: Vec<u64>,
    /// Degraded (digital-fallback) latencies, ps.
    degraded_latencies_ps: Vec<u64>,
    pub energy_j: f64,
    batch_size_sum: u64,
}

impl TenantCollector {
    fn record(&mut self, outcome: &Outcome) {
        match *outcome {
            Outcome::Completed {
                latency_ps,
                batch_size,
                energy_j,
            } => {
                self.completed += 1;
                self.latencies_ps.push(latency_ps);
                self.energy_j += energy_j;
                self.batch_size_sum += u64::from(batch_size);
            }
            Outcome::Shed { reason } => match reason {
                ShedReason::QueueFull => self.shed_queue_full += 1,
                ShedReason::DeadlineExpiredQueued => self.shed_expired_queued += 1,
                ShedReason::DeadlineExpiredServing => self.shed_expired_serving += 1,
                ShedReason::EngineFailed => self.shed_engine_failed += 1,
            },
            Outcome::DegradedDigital {
                latency_ps,
                energy_j,
            } => {
                self.degraded += 1;
                self.degraded_latencies_ps.push(latency_ps);
                self.degraded_energy_j += energy_j;
            }
        }
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_expired_queued
            + self.shed_expired_serving
            + self.shed_engine_failed
    }
}

/// Exact percentile over integer latencies (nearest-rank).
fn percentile_ps(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Pre-registered registry series for one tenant — sampled lock-free
/// on the hot path, no-ops when telemetry is disabled.
#[derive(Debug, Clone, Default)]
struct TenantSeries {
    arrivals: Counter,
    completed: Counter,
    shed: [Counter; 4],
    degraded: Counter,
    latency_ps: Histogram,
    energy_j: Gauge,
}

impl TenantSeries {
    fn register(tel: &Telemetry, tenant: &str) -> Self {
        let l = labels(&[("tenant", tenant)]);
        let shed_label = |reason: &str| labels(&[("tenant", tenant), ("reason", reason)]);
        TenantSeries {
            arrivals: tel.counter("serve_arrivals_total", &l),
            completed: tel.counter("serve_completed_total", &l),
            shed: [
                tel.counter("serve_shed_total", &shed_label("queue-full")),
                tel.counter("serve_shed_total", &shed_label("expired-queued")),
                tel.counter("serve_shed_total", &shed_label("expired-serving")),
                tel.counter("serve_shed_total", &shed_label("engine-failed")),
            ],
            degraded: tel.counter("serve_degraded_total", &l),
            latency_ps: tel.histogram("serve_latency_ps", &l),
            energy_j: tel.gauge("serve_energy_joules", &l),
        }
    }

    fn record(&self, outcome: &Outcome) {
        match *outcome {
            Outcome::Completed {
                latency_ps,
                energy_j,
                ..
            } => {
                self.completed.inc();
                self.latency_ps.record(latency_ps);
                self.energy_j.add(energy_j);
            }
            Outcome::Shed { reason } => self.shed[reason as usize].inc(),
            Outcome::DegradedDigital { .. } => self.degraded.inc(),
        }
    }
}

/// The metrics sink the runtime feeds.
///
/// The exact collectors (integer-ps latency vectors, per-stage energy
/// map) stay authoritative for [`MetricsSink::report`]; when built
/// [`MetricsSink::with_telemetry`], every sample is mirrored onto the
/// shared [`ofpc_telemetry::MetricsRegistry`] as
/// `serve_*`-prefixed series labeled by tenant/reason/stage, so the
/// Prometheus/JSON exporters see the same counts the report does.
#[derive(Debug)]
pub struct MetricsSink {
    tenants: Vec<TenantCollector>,
    /// Dispatched batch sizes (occupancy numerator/denominator).
    batch_sizes: Vec<u32>,
    /// Energy by hardware stage, deterministic order.
    pub energy_stages: std::collections::BTreeMap<String, f64>,
    /// Sampled verification results: |photonic − digital| per sample.
    pub verify_abs_errors: Vec<f64>,
    tel: Telemetry,
    series: Vec<TenantSeries>,
    batch_size_series: Histogram,
    stage_energy_series: std::collections::BTreeMap<String, Gauge>,
}

impl MetricsSink {
    pub fn new(tenant_count: usize) -> Self {
        let names: Vec<String> = (0..tenant_count).map(|t| t.to_string()).collect();
        MetricsSink::with_telemetry(&names, &Telemetry::disabled())
    }

    /// Like [`MetricsSink::new`], mirroring every sample onto `tel`'s
    /// registry with one series set per tenant, labeled by tenant name
    /// (no-op when `tel` is disabled).
    pub fn with_telemetry(tenant_names: &[String], tel: &Telemetry) -> Self {
        let series = if tel.is_enabled() {
            tenant_names
                .iter()
                .map(|t| TenantSeries::register(tel, t))
                .collect()
        } else {
            vec![TenantSeries::default(); tenant_names.len()]
        };
        MetricsSink {
            tenants: vec![TenantCollector::default(); tenant_names.len()],
            batch_sizes: Vec::new(),
            energy_stages: std::collections::BTreeMap::new(),
            verify_abs_errors: Vec::new(),
            batch_size_series: tel.histogram("serve_batch_size", &Vec::new()),
            tel: tel.clone(),
            series,
            stage_energy_series: std::collections::BTreeMap::new(),
        }
    }

    pub fn on_arrival(&mut self, tenant: TenantId) {
        self.tenants[tenant.0 as usize].arrivals += 1;
        self.series[tenant.0 as usize].arrivals.inc();
    }

    pub fn on_outcome(&mut self, tenant: TenantId, outcome: &Outcome) {
        self.tenants[tenant.0 as usize].record(outcome);
        self.series[tenant.0 as usize].record(outcome);
    }

    pub fn on_batch(&mut self, size: u32) {
        self.batch_sizes.push(size);
        self.batch_size_series.record(u64::from(size));
    }

    pub fn add_stage_energy(&mut self, stage: &str, joules: f64) {
        *self.energy_stages.entry(stage.to_string()).or_insert(0.0) += joules;
        if self.tel.is_enabled() {
            if let Some(g) = self.stage_energy_series.get(stage) {
                g.add(joules);
            } else {
                let g = self
                    .tel
                    .gauge("serve_stage_energy_joules", &labels(&[("stage", stage)]));
                g.add(joules);
                self.stage_energy_series.insert(stage.to_string(), g);
            }
        }
    }

    pub fn tenant(&self, t: TenantId) -> &TenantCollector {
        &self.tenants[t.0 as usize]
    }

    pub fn arrivals_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.arrivals).sum()
    }

    pub fn completed_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    pub fn shed_total(&self) -> u64 {
        self.tenants.iter().map(TenantCollector::shed_total).sum()
    }

    pub fn degraded_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.degraded).sum()
    }

    /// Build the final report. `unfinished` are requests still queued or
    /// in flight at the horizon; they must make conservation hold.
    pub fn report(&self, duration_s: f64, unfinished: u64, max_batch: usize) -> ServeReport {
        let mut tenants = Vec::new();
        for (i, t) in self.tenants.iter().enumerate() {
            let mut lat = t.latencies_ps.clone();
            lat.sort_unstable();
            tenants.push(TenantReport {
                tenant: TenantId(i as u32),
                arrivals: t.arrivals,
                completed: t.completed,
                shed_queue_full: t.shed_queue_full,
                shed_expired_queued: t.shed_expired_queued,
                shed_expired_serving: t.shed_expired_serving,
                shed_engine_failed: t.shed_engine_failed,
                degraded: t.degraded,
                degraded_energy_j: t.degraded_energy_j,
                goodput_rps: t.completed as f64 / duration_s,
                p50_latency_us: percentile_ps(&lat, 0.50).map(|v| v as f64 / 1e6),
                p99_latency_us: percentile_ps(&lat, 0.99).map(|v| v as f64 / 1e6),
                p999_latency_us: percentile_ps(&lat, 0.999).map(|v| v as f64 / 1e6),
                mean_batch_size: if t.completed > 0 {
                    t.batch_size_sum as f64 / t.completed as f64
                } else {
                    0.0
                },
                energy_j: t.energy_j,
                joules_per_request: if t.completed > 0 {
                    t.energy_j / t.completed as f64
                } else {
                    0.0
                },
            });
        }
        let arrivals = self.arrivals_total();
        let completed = self.completed_total();
        let shed = self.shed_total();
        let degraded = self.degraded_total();
        debug_assert_eq!(
            arrivals,
            completed + shed + degraded + unfinished,
            "request conservation violated"
        );
        let mut all_lat: Vec<u64> = self
            .tenants
            .iter()
            .flat_map(|t| t.latencies_ps.iter().copied())
            .collect();
        all_lat.sort_unstable();
        let occupancy = if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().map(|&s| s as f64).sum::<f64>()
                / (self.batch_sizes.len() * max_batch) as f64
        };
        let energy_total: f64 = self.energy_stages.values().sum();
        let mut degraded_lat: Vec<u64> = self
            .tenants
            .iter()
            .flat_map(|t| t.degraded_latencies_ps.iter().copied())
            .collect();
        degraded_lat.sort_unstable();
        ServeReport {
            duration_s,
            arrivals,
            completed,
            shed,
            degraded,
            unfinished,
            offered_rps: arrivals as f64 / duration_s,
            goodput_rps: completed as f64 / duration_s,
            shed_rate: if arrivals > 0 {
                shed as f64 / arrivals as f64
            } else {
                0.0
            },
            degraded_rate: if arrivals > 0 {
                degraded as f64 / arrivals as f64
            } else {
                0.0
            },
            degraded_p99_latency_us: percentile_ps(&degraded_lat, 0.99).map(|v| v as f64 / 1e6),
            degraded_energy_j: self.tenants.iter().map(|t| t.degraded_energy_j).sum(),
            p50_latency_us: percentile_ps(&all_lat, 0.50).map(|v| v as f64 / 1e6),
            p99_latency_us: percentile_ps(&all_lat, 0.99).map(|v| v as f64 / 1e6),
            p999_latency_us: percentile_ps(&all_lat, 0.999).map(|v| v as f64 / 1e6),
            batches: self.batch_sizes.len() as u64,
            mean_batch_occupancy: occupancy,
            energy_total_j: energy_total,
            joules_per_completed: if completed > 0 {
                energy_total / completed as f64
            } else {
                0.0
            },
            energy_stages_j: self.energy_stages.clone(),
            verified_samples: self.verify_abs_errors.len() as u64,
            verify_mean_abs_error: if self.verify_abs_errors.is_empty() {
                0.0
            } else {
                self.verify_abs_errors.iter().sum::<f64>() / self.verify_abs_errors.len() as f64
            },
            tenants,
        }
    }
}

/// Per-tenant slice of the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    pub tenant: TenantId,
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    pub degraded: u64,
    pub degraded_energy_j: f64,
    pub goodput_rps: f64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub p999_latency_us: Option<f64>,
    pub mean_batch_size: f64,
    pub energy_j: f64,
    pub joules_per_request: f64,
}

/// One serving run's summary, serialized for the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    pub duration_s: f64,
    pub arrivals: u64,
    pub completed: u64,
    pub shed: u64,
    /// Requests answered correctly by the digital fallback.
    pub degraded: u64,
    pub unfinished: u64,
    pub offered_rps: f64,
    pub goodput_rps: f64,
    pub shed_rate: f64,
    pub degraded_rate: f64,
    pub degraded_p99_latency_us: Option<f64>,
    pub degraded_energy_j: f64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub p999_latency_us: Option<f64>,
    pub batches: u64,
    pub mean_batch_occupancy: f64,
    pub energy_total_j: f64,
    pub joules_per_completed: f64,
    pub energy_stages_j: std::collections::BTreeMap<String, f64>,
    pub verified_samples: u64,
    pub verify_mean_abs_error: f64,
    pub tenants: Vec<TenantReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ps(&v, 0.50), Some(50));
        assert_eq!(percentile_ps(&v, 0.99), Some(99));
        assert_eq!(percentile_ps(&v, 0.999), Some(100));
        assert_eq!(percentile_ps(&[], 0.5), None);
        assert_eq!(percentile_ps(&[7], 0.999), Some(7));
    }

    #[test]
    fn conservation_and_rates() {
        let mut m = MetricsSink::new(2);
        for _ in 0..10 {
            m.on_arrival(TenantId(0));
        }
        for _ in 0..5 {
            m.on_arrival(TenantId(1));
        }
        for i in 0..8 {
            m.on_outcome(
                TenantId(0),
                &Outcome::Completed {
                    latency_ps: 1_000_000 * (i + 1),
                    batch_size: 4,
                    energy_j: 1e-9,
                },
            );
        }
        for _ in 0..2 {
            m.on_outcome(
                TenantId(0),
                &Outcome::Shed {
                    reason: ShedReason::QueueFull,
                },
            );
        }
        for _ in 0..5 {
            m.on_outcome(
                TenantId(1),
                &Outcome::Shed {
                    reason: ShedReason::DeadlineExpiredQueued,
                },
            );
        }
        m.on_batch(4);
        m.on_batch(2);
        m.add_stage_energy("photonic-mac", 2e-9);
        let r = m.report(1.0, 0, 4);
        assert_eq!(r.arrivals, 15);
        assert_eq!(r.completed, 8);
        assert_eq!(r.shed, 7);
        assert!((r.shed_rate - 7.0 / 15.0).abs() < 1e-12);
        assert_eq!(r.batches, 2);
        assert!((r.mean_batch_occupancy - 6.0 / 8.0).abs() < 1e-12);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].completed, 8);
        assert_eq!(r.tenants[1].shed_expired_queued, 5);
        assert!(r.tenants[0].p50_latency_us.is_some());
        assert!(r.tenants[1].p50_latency_us.is_none());
    }

    #[test]
    fn report_serializes_deterministically() {
        let build = || {
            let mut m = MetricsSink::new(1);
            m.on_arrival(TenantId(0));
            m.on_outcome(
                TenantId(0),
                &Outcome::Completed {
                    latency_ps: 123_456,
                    batch_size: 1,
                    energy_j: 3.25e-10,
                },
            );
            m.add_stage_energy("laser-supply", 1e-10);
            m.add_stage_energy("operand-dac", 2e-10);
            serde_json::to_string_pretty(&m.report(0.5, 0, 8)).unwrap()
        };
        assert_eq!(build(), build());
    }
}
