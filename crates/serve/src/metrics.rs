//! Serving metrics: what makes a photonic accelerator comparable to a
//! digital inference stack.
//!
//! Collectors are exact (latencies kept as integer picoseconds, sorted at
//! report time) and the report serializes deterministically — a fixed
//! seed must yield byte-identical JSON, which the replay tests enforce.
//! Conservation is checked structurally: every arrival is completed,
//! shed (with a reason), or still in flight at the horizon; nothing is
//! silently dropped.

use crate::request::{Outcome, ShedReason, TenantId};
use ofpc_telemetry::{labels, Counter, Gauge, Histogram, Telemetry};
use serde::{Deserialize, Serialize};

/// Log-linear bucket scheme for the compact latency store (same shape
/// as the telemetry registry's histograms: exact unit buckets below
/// [`SUB`], then [`SUB`] buckets per octave — ≤ ±3.2% relative error on
/// any reported percentile).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
const LAT_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

#[inline]
fn lat_bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - SUB_BITS as usize + 1;
    let sub = ((v >> (msb - SUB_BITS as usize)) - SUB as u64) as usize;
    octave * SUB + sub
}

fn lat_bucket_mid(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = idx / SUB;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (octave - 1);
    let lo = (SUB as u64 + sub) << (octave - 1);
    lo + width / 2
}

/// Per-tenant latency storage with a bounded-memory escape hatch.
///
/// Exact mode keeps every integer-ps sample (the historical behavior —
/// report percentiles are nearest-rank over the sorted vector, and the
/// pinned golden fixtures depend on that). When a sink is built with
/// [`MetricsSink::with_latency_cap`], a tenant crossing the cap *spills*:
/// its samples fold into a fixed-size log-linear histogram and every
/// later sample costs O(1) memory. Spilled percentiles are bucket
/// midpoints (≤ ±3.2% relative error); unspilled tenants keep exact
/// percentiles, so the default cap of `usize::MAX` is byte-identical
/// to the pre-cap behavior.
#[derive(Debug, Clone)]
enum LatencyStore {
    Exact(Vec<u64>),
    Compact { buckets: Box<[u64]>, count: u64 },
}

impl Default for LatencyStore {
    fn default() -> Self {
        LatencyStore::Exact(Vec::new())
    }
}

impl LatencyStore {
    fn push(&mut self, v: u64, cap: usize) {
        match self {
            LatencyStore::Exact(vec) => {
                if vec.len() >= cap {
                    let mut buckets = vec![0u64; LAT_BUCKETS].into_boxed_slice();
                    for &s in vec.iter() {
                        buckets[lat_bucket_index(s)] += 1;
                    }
                    buckets[lat_bucket_index(v)] += 1;
                    let count = vec.len() as u64 + 1;
                    *self = LatencyStore::Compact { buckets, count };
                } else {
                    vec.push(v);
                }
            }
            LatencyStore::Compact { buckets, count } => {
                buckets[lat_bucket_index(v)] += 1;
                *count += 1;
            }
        }
    }

    #[cfg(test)]
    fn count(&self) -> u64 {
        match self {
            LatencyStore::Exact(vec) => vec.len() as u64,
            LatencyStore::Compact { count, .. } => *count,
        }
    }

    /// Samples held verbatim (the memory the cap bounds); `None` once
    /// spilled to the fixed-size histogram.
    fn exact_samples_held(&self) -> Option<usize> {
        match self {
            LatencyStore::Exact(vec) => Some(vec.len()),
            LatencyStore::Compact { .. } => None,
        }
    }

    /// Nearest-rank percentile: exact over the sorted samples, bucket
    /// midpoint once spilled.
    fn percentile_ps(&self, q: f64) -> Option<u64> {
        match self {
            LatencyStore::Exact(vec) => {
                let mut sorted = vec.clone();
                sorted.sort_unstable();
                percentile_ps(&sorted, q)
            }
            LatencyStore::Compact { buckets, count } => {
                if *count == 0 {
                    return None;
                }
                let rank = ((q * *count as f64).ceil() as u64).clamp(1, *count);
                let mut cum = 0;
                for (idx, &n) in buckets.iter().enumerate() {
                    cum += n;
                    if cum >= rank {
                        return Some(lat_bucket_mid(idx));
                    }
                }
                None
            }
        }
    }

    /// Fold this store into an aggregate. Exact-into-exact extends the
    /// sample vector (the historical all-tenant path); as soon as any
    /// side has spilled, the aggregate spills too.
    fn merge_into(&self, acc: &mut LatencyStore) {
        match self {
            LatencyStore::Exact(vec) => match acc {
                LatencyStore::Exact(avec) => avec.extend_from_slice(vec),
                LatencyStore::Compact { buckets, count } => {
                    for &s in vec.iter() {
                        buckets[lat_bucket_index(s)] += 1;
                    }
                    *count += vec.len() as u64;
                }
            },
            LatencyStore::Compact {
                buckets: sb,
                count: sc,
            } => {
                if let LatencyStore::Exact(avec) = acc {
                    let mut buckets = vec![0u64; LAT_BUCKETS].into_boxed_slice();
                    for &s in avec.iter() {
                        buckets[lat_bucket_index(s)] += 1;
                    }
                    *acc = LatencyStore::Compact {
                        buckets,
                        count: avec.len() as u64,
                    };
                }
                if let LatencyStore::Compact { buckets, count } = acc {
                    for (b, s) in buckets.iter_mut().zip(sb.iter()) {
                        *b += s;
                    }
                    *count += sc;
                }
            }
        }
    }
}

/// Per-tenant running counters.
#[derive(Debug, Clone, Default)]
pub struct TenantCollector {
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    /// Requests answered by the digital fallback (correct, degraded).
    pub degraded: u64,
    pub degraded_energy_j: f64,
    /// Completed-request latencies, ps.
    latencies: LatencyStore,
    /// Degraded (digital-fallback) latencies, ps.
    degraded_latencies: LatencyStore,
    pub energy_j: f64,
    batch_size_sum: u64,
}

impl TenantCollector {
    fn record(&mut self, outcome: &Outcome, latency_cap: usize) {
        match *outcome {
            Outcome::Completed {
                latency_ps,
                batch_size,
                energy_j,
            } => {
                self.completed += 1;
                self.latencies.push(latency_ps, latency_cap);
                self.energy_j += energy_j;
                self.batch_size_sum += u64::from(batch_size);
            }
            Outcome::Shed { reason } => match reason {
                ShedReason::QueueFull => self.shed_queue_full += 1,
                ShedReason::DeadlineExpiredQueued => self.shed_expired_queued += 1,
                ShedReason::DeadlineExpiredServing => self.shed_expired_serving += 1,
                ShedReason::EngineFailed => self.shed_engine_failed += 1,
            },
            Outcome::DegradedDigital {
                latency_ps,
                energy_j,
            } => {
                self.degraded += 1;
                self.degraded_latencies.push(latency_ps, latency_cap);
                self.degraded_energy_j += energy_j;
            }
        }
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_expired_queued
            + self.shed_expired_serving
            + self.shed_engine_failed
    }

    /// Latency samples currently held verbatim (`None` once the tenant
    /// spilled to the bounded histogram).
    pub fn exact_latency_samples(&self) -> Option<usize> {
        self.latencies.exact_samples_held()
    }
}

/// Exact percentile over integer latencies (nearest-rank).
fn percentile_ps(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Pre-registered registry series for one tenant — sampled lock-free
/// on the hot path, no-ops when telemetry is disabled.
#[derive(Debug, Clone, Default)]
struct TenantSeries {
    arrivals: Counter,
    completed: Counter,
    shed: [Counter; 4],
    degraded: Counter,
    latency_ps: Histogram,
    energy_j: Gauge,
}

impl TenantSeries {
    fn register(tel: &Telemetry, tenant: &str) -> Self {
        let l = labels(&[("tenant", tenant)]);
        let shed_label = |reason: &str| labels(&[("tenant", tenant), ("reason", reason)]);
        TenantSeries {
            arrivals: tel.counter("serve_arrivals_total", &l),
            completed: tel.counter("serve_completed_total", &l),
            shed: [
                tel.counter("serve_shed_total", &shed_label("queue-full")),
                tel.counter("serve_shed_total", &shed_label("expired-queued")),
                tel.counter("serve_shed_total", &shed_label("expired-serving")),
                tel.counter("serve_shed_total", &shed_label("engine-failed")),
            ],
            degraded: tel.counter("serve_degraded_total", &l),
            latency_ps: tel.histogram("serve_latency_ps", &l),
            energy_j: tel.gauge("serve_energy_joules", &l),
        }
    }

    fn record(&self, outcome: &Outcome) {
        match *outcome {
            Outcome::Completed {
                latency_ps,
                energy_j,
                ..
            } => {
                self.completed.inc();
                self.latency_ps.record(latency_ps);
                self.energy_j.add(energy_j);
            }
            Outcome::Shed { reason } => self.shed[reason as usize].inc(),
            Outcome::DegradedDigital { .. } => self.degraded.inc(),
        }
    }
}

/// The metrics sink the runtime feeds.
///
/// The exact collectors (integer-ps latency vectors, per-stage energy
/// map) stay authoritative for [`MetricsSink::report`]; when built
/// [`MetricsSink::with_telemetry`], every sample is mirrored onto the
/// shared [`ofpc_telemetry::MetricsRegistry`] as
/// `serve_*`-prefixed series labeled by tenant/reason/stage, so the
/// Prometheus/JSON exporters see the same counts the report does.
#[derive(Debug)]
pub struct MetricsSink {
    tenants: Vec<TenantCollector>,
    /// Dispatched batch sizes (occupancy numerator/denominator).
    batch_sizes: Vec<u32>,
    /// Energy by hardware stage, deterministic order.
    pub energy_stages: std::collections::BTreeMap<String, f64>,
    /// Sampled verification results: |photonic − digital| per sample.
    pub verify_abs_errors: Vec<f64>,
    tel: Telemetry,
    series: Vec<TenantSeries>,
    batch_size_series: Histogram,
    stage_energy_series: std::collections::BTreeMap<String, Gauge>,
    /// Per-tenant exact-sample budget before spilling to the compact
    /// histogram. `usize::MAX` (the default) never spills.
    latency_cap: usize,
}

impl MetricsSink {
    pub fn new(tenant_count: usize) -> Self {
        let names: Vec<String> = (0..tenant_count).map(|t| t.to_string()).collect();
        MetricsSink::with_telemetry(&names, &Telemetry::disabled())
    }

    /// Like [`MetricsSink::new`], mirroring every sample onto `tel`'s
    /// registry with one series set per tenant, labeled by tenant name
    /// (no-op when `tel` is disabled).
    pub fn with_telemetry(tenant_names: &[String], tel: &Telemetry) -> Self {
        let series = if tel.is_enabled() {
            tenant_names
                .iter()
                .map(|t| TenantSeries::register(tel, t))
                .collect()
        } else {
            vec![TenantSeries::default(); tenant_names.len()]
        };
        MetricsSink {
            tenants: vec![TenantCollector::default(); tenant_names.len()],
            batch_sizes: Vec::new(),
            energy_stages: std::collections::BTreeMap::new(),
            verify_abs_errors: Vec::new(),
            batch_size_series: tel.histogram("serve_batch_size", &Vec::new()),
            tel: tel.clone(),
            series,
            stage_energy_series: std::collections::BTreeMap::new(),
            latency_cap: usize::MAX,
        }
    }

    /// Bound the memory held per tenant: once a tenant has recorded
    /// `cap` exact latency samples it spills to a fixed-size log-linear
    /// histogram (≤ ±3.2% percentile error) and stops growing. The
    /// default is unbounded, which keeps reports byte-identical to the
    /// pre-cap behavior; million-tenant front-ends (ofpc-ingest) set a
    /// small cap so metric state is O(tenants), not O(requests).
    pub fn with_latency_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "latency cap must be positive");
        self.latency_cap = cap;
        self
    }

    pub fn on_arrival(&mut self, tenant: TenantId) {
        self.tenants[tenant.0 as usize].arrivals += 1;
        self.series[tenant.0 as usize].arrivals.inc();
    }

    pub fn on_outcome(&mut self, tenant: TenantId, outcome: &Outcome) {
        self.tenants[tenant.0 as usize].record(outcome, self.latency_cap);
        self.series[tenant.0 as usize].record(outcome);
    }

    pub fn on_batch(&mut self, size: u32) {
        self.batch_sizes.push(size);
        self.batch_size_series.record(u64::from(size));
    }

    pub fn add_stage_energy(&mut self, stage: &str, joules: f64) {
        *self.energy_stages.entry(stage.to_string()).or_insert(0.0) += joules;
        if self.tel.is_enabled() {
            if let Some(g) = self.stage_energy_series.get(stage) {
                g.add(joules);
            } else {
                let g = self
                    .tel
                    .gauge("serve_stage_energy_joules", &labels(&[("stage", stage)]));
                g.add(joules);
                self.stage_energy_series.insert(stage.to_string(), g);
            }
        }
    }

    pub fn tenant(&self, t: TenantId) -> &TenantCollector {
        &self.tenants[t.0 as usize]
    }

    pub fn arrivals_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.arrivals).sum()
    }

    pub fn completed_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    pub fn shed_total(&self) -> u64 {
        self.tenants.iter().map(TenantCollector::shed_total).sum()
    }

    pub fn degraded_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.degraded).sum()
    }

    /// Build the final report. `unfinished` are requests still queued or
    /// in flight at the horizon; they must make conservation hold.
    pub fn report(&self, duration_s: f64, unfinished: u64, max_batch: usize) -> ServeReport {
        let mut tenants = Vec::new();
        for (i, t) in self.tenants.iter().enumerate() {
            tenants.push(TenantReport {
                tenant: TenantId(i as u32),
                arrivals: t.arrivals,
                completed: t.completed,
                shed_queue_full: t.shed_queue_full,
                shed_expired_queued: t.shed_expired_queued,
                shed_expired_serving: t.shed_expired_serving,
                shed_engine_failed: t.shed_engine_failed,
                degraded: t.degraded,
                degraded_energy_j: t.degraded_energy_j,
                goodput_rps: t.completed as f64 / duration_s,
                p50_latency_us: t.latencies.percentile_ps(0.50).map(|v| v as f64 / 1e6),
                p99_latency_us: t.latencies.percentile_ps(0.99).map(|v| v as f64 / 1e6),
                p999_latency_us: t.latencies.percentile_ps(0.999).map(|v| v as f64 / 1e6),
                mean_batch_size: if t.completed > 0 {
                    t.batch_size_sum as f64 / t.completed as f64
                } else {
                    0.0
                },
                energy_j: t.energy_j,
                joules_per_request: if t.completed > 0 {
                    t.energy_j / t.completed as f64
                } else {
                    0.0
                },
            });
        }
        let arrivals = self.arrivals_total();
        let completed = self.completed_total();
        let shed = self.shed_total();
        let degraded = self.degraded_total();
        debug_assert_eq!(
            arrivals,
            completed + shed + degraded + unfinished,
            "request conservation violated"
        );
        let mut all_lat = LatencyStore::default();
        for t in &self.tenants {
            t.latencies.merge_into(&mut all_lat);
        }
        let occupancy = if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().map(|&s| s as f64).sum::<f64>()
                / (self.batch_sizes.len() * max_batch) as f64
        };
        let energy_total: f64 = self.energy_stages.values().sum();
        let mut degraded_lat = LatencyStore::default();
        for t in &self.tenants {
            t.degraded_latencies.merge_into(&mut degraded_lat);
        }
        ServeReport {
            duration_s,
            arrivals,
            completed,
            shed,
            degraded,
            unfinished,
            offered_rps: arrivals as f64 / duration_s,
            goodput_rps: completed as f64 / duration_s,
            shed_rate: if arrivals > 0 {
                shed as f64 / arrivals as f64
            } else {
                0.0
            },
            degraded_rate: if arrivals > 0 {
                degraded as f64 / arrivals as f64
            } else {
                0.0
            },
            degraded_p99_latency_us: degraded_lat.percentile_ps(0.99).map(|v| v as f64 / 1e6),
            degraded_energy_j: self.tenants.iter().map(|t| t.degraded_energy_j).sum(),
            p50_latency_us: all_lat.percentile_ps(0.50).map(|v| v as f64 / 1e6),
            p99_latency_us: all_lat.percentile_ps(0.99).map(|v| v as f64 / 1e6),
            p999_latency_us: all_lat.percentile_ps(0.999).map(|v| v as f64 / 1e6),
            batches: self.batch_sizes.len() as u64,
            mean_batch_occupancy: occupancy,
            energy_total_j: energy_total,
            joules_per_completed: if completed > 0 {
                energy_total / completed as f64
            } else {
                0.0
            },
            energy_stages_j: self.energy_stages.clone(),
            verified_samples: self.verify_abs_errors.len() as u64,
            verify_mean_abs_error: if self.verify_abs_errors.is_empty() {
                0.0
            } else {
                self.verify_abs_errors.iter().sum::<f64>() / self.verify_abs_errors.len() as f64
            },
            tenants,
        }
    }
}

/// Per-tenant slice of the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    pub tenant: TenantId,
    pub arrivals: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired_queued: u64,
    pub shed_expired_serving: u64,
    pub shed_engine_failed: u64,
    pub degraded: u64,
    pub degraded_energy_j: f64,
    pub goodput_rps: f64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub p999_latency_us: Option<f64>,
    pub mean_batch_size: f64,
    pub energy_j: f64,
    pub joules_per_request: f64,
}

/// One serving run's summary, serialized for the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    pub duration_s: f64,
    pub arrivals: u64,
    pub completed: u64,
    pub shed: u64,
    /// Requests answered correctly by the digital fallback.
    pub degraded: u64,
    pub unfinished: u64,
    pub offered_rps: f64,
    pub goodput_rps: f64,
    pub shed_rate: f64,
    pub degraded_rate: f64,
    pub degraded_p99_latency_us: Option<f64>,
    pub degraded_energy_j: f64,
    pub p50_latency_us: Option<f64>,
    pub p99_latency_us: Option<f64>,
    pub p999_latency_us: Option<f64>,
    pub batches: u64,
    pub mean_batch_occupancy: f64,
    pub energy_total_j: f64,
    pub joules_per_completed: f64,
    pub energy_stages_j: std::collections::BTreeMap<String, f64>,
    pub verified_samples: u64,
    pub verify_mean_abs_error: f64,
    pub tenants: Vec<TenantReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ps(&v, 0.50), Some(50));
        assert_eq!(percentile_ps(&v, 0.99), Some(99));
        assert_eq!(percentile_ps(&v, 0.999), Some(100));
        assert_eq!(percentile_ps(&[], 0.5), None);
        assert_eq!(percentile_ps(&[7], 0.999), Some(7));
    }

    #[test]
    fn conservation_and_rates() {
        let mut m = MetricsSink::new(2);
        for _ in 0..10 {
            m.on_arrival(TenantId(0));
        }
        for _ in 0..5 {
            m.on_arrival(TenantId(1));
        }
        for i in 0..8 {
            m.on_outcome(
                TenantId(0),
                &Outcome::Completed {
                    latency_ps: 1_000_000 * (i + 1),
                    batch_size: 4,
                    energy_j: 1e-9,
                },
            );
        }
        for _ in 0..2 {
            m.on_outcome(
                TenantId(0),
                &Outcome::Shed {
                    reason: ShedReason::QueueFull,
                },
            );
        }
        for _ in 0..5 {
            m.on_outcome(
                TenantId(1),
                &Outcome::Shed {
                    reason: ShedReason::DeadlineExpiredQueued,
                },
            );
        }
        m.on_batch(4);
        m.on_batch(2);
        m.add_stage_energy("photonic-mac", 2e-9);
        let r = m.report(1.0, 0, 4);
        assert_eq!(r.arrivals, 15);
        assert_eq!(r.completed, 8);
        assert_eq!(r.shed, 7);
        assert!((r.shed_rate - 7.0 / 15.0).abs() < 1e-12);
        assert_eq!(r.batches, 2);
        assert!((r.mean_batch_occupancy - 6.0 / 8.0).abs() < 1e-12);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].completed, 8);
        assert_eq!(r.tenants[1].shed_expired_queued, 5);
        assert!(r.tenants[0].p50_latency_us.is_some());
        assert!(r.tenants[1].p50_latency_us.is_none());
    }

    #[test]
    fn latency_cap_bounds_memory_and_keeps_percentiles_close() {
        let mut capped = MetricsSink::new(1).with_latency_cap(64);
        let mut exact = MetricsSink::new(1);
        // A skewed latency population: ramp plus heavy tail.
        let samples: Vec<u64> = (0..5_000u64)
            .map(|i| 1_000 + i * 37 + if i % 97 == 0 { 900_000 } else { 0 })
            .collect();
        for &lat in &samples {
            for m in [&mut capped, &mut exact] {
                m.on_arrival(TenantId(0));
                m.on_outcome(
                    TenantId(0),
                    &Outcome::Completed {
                        latency_ps: lat,
                        batch_size: 1,
                        energy_j: 1e-12,
                    },
                );
            }
        }
        // The capped sink spilled: no per-sample memory retained.
        assert_eq!(capped.tenant(TenantId(0)).exact_latency_samples(), None);
        assert_eq!(
            exact.tenant(TenantId(0)).exact_latency_samples(),
            Some(samples.len())
        );
        let rc = capped.report(1.0, 0, 8);
        let re = exact.report(1.0, 0, 8);
        for (c, e) in [
            (rc.p50_latency_us, re.p50_latency_us),
            (rc.p99_latency_us, re.p99_latency_us),
            (rc.p999_latency_us, re.p999_latency_us),
        ] {
            let (c, e) = (c.unwrap(), e.unwrap());
            assert!(
                (c - e).abs() / e <= 0.033,
                "compact percentile {c} strayed from exact {e}"
            );
        }
        // Counters are unaffected by the cap.
        assert_eq!(rc.completed, re.completed);
        assert_eq!(rc.arrivals, re.arrivals);
    }

    #[test]
    fn default_sink_never_spills_and_matches_legacy_reports() {
        let mut m = MetricsSink::new(1);
        for i in 0..10_000u64 {
            m.on_arrival(TenantId(0));
            m.on_outcome(
                TenantId(0),
                &Outcome::Completed {
                    latency_ps: 10_000 - i,
                    batch_size: 1,
                    energy_j: 0.0,
                },
            );
        }
        assert_eq!(
            m.tenant(TenantId(0)).exact_latency_samples(),
            Some(10_000),
            "default cap must keep exact samples (golden fixtures depend on it)"
        );
        let r = m.report(1.0, 0, 8);
        // Nearest-rank over 1..=10_000.
        assert_eq!(r.p50_latency_us, Some(5_000.0 / 1e6));
        assert_eq!(r.p99_latency_us, Some(9_900.0 / 1e6));
    }

    #[test]
    fn bucket_index_and_mid_are_consistent() {
        for v in (0..200u64).chain([1_000, 65_535, 1 << 20, u64::MAX >> 3]) {
            let idx = lat_bucket_index(v);
            let mid = lat_bucket_mid(idx);
            if v < SUB as u64 {
                assert_eq!(mid, v, "sub-{SUB} values are exact");
            } else {
                let err = (mid as f64 - v as f64).abs() / v as f64;
                assert!(err <= 0.033, "v={v} mid={mid} err={err}");
            }
        }
        // Indices are monotone in the value.
        let mut last = 0;
        for v in 0..100_000u64 {
            let idx = lat_bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
        assert!(lat_bucket_index(u64::MAX) < LAT_BUCKETS);
    }

    #[test]
    fn merge_into_spills_the_aggregate_when_any_tenant_spilled() {
        let mut a = LatencyStore::default();
        for v in [10u64, 20, 30] {
            a.push(v, usize::MAX);
        }
        let mut b = LatencyStore::default();
        for v in 0..100u64 {
            b.push(1_000 + v, 8);
        }
        assert!(b.exact_samples_held().is_none());
        let mut acc = LatencyStore::default();
        a.merge_into(&mut acc);
        assert_eq!(acc.exact_samples_held(), Some(3));
        b.merge_into(&mut acc);
        assert!(acc.exact_samples_held().is_none());
        assert_eq!(acc.count(), 103);
        // Medians survive the spill within bucket tolerance.
        let p50 = acc.percentile_ps(0.50).unwrap();
        assert!((p50 as f64 - 1_051.0).abs() / 1_051.0 <= 0.033, "p50={p50}");
    }

    #[test]
    fn report_serializes_deterministically() {
        let build = || {
            let mut m = MetricsSink::new(1);
            m.on_arrival(TenantId(0));
            m.on_outcome(
                TenantId(0),
                &Outcome::Completed {
                    latency_ps: 123_456,
                    batch_size: 1,
                    energy_j: 3.25e-10,
                },
            );
            m.add_stage_energy("laser-supply", 1e-10);
            m.add_stage_energy("operand-dac", 2e-10);
            serde_json::to_string_pretty(&m.report(0.5, 0, 8)).unwrap()
        };
        assert_eq!(build(), build());
    }
}
