//! The deterministic event queue every serving event loop runs on.
//!
//! Extracted from [`crate::runtime::ServeRuntime`] so shard-local event
//! loops (the `ofpc-ingest` front-end) replay with exactly the same
//! ordering contract: events pop in ascending `(time, insertion
//! sequence)` order, so same-tick events resolve in the order they were
//! scheduled — a pure function of the schedule, never of the host.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of simulation events with deterministic
/// same-tick tie-breaking by insertion order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, E)>>,
    seq: u64,
}

impl<E: Ord> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `ev` at `t_ps`. Events at equal times pop in push order.
    pub fn push(&mut self, t_ps: u64, ev: E) {
        self.seq += 1;
        self.heap.push(Reverse((t_ps, self.seq, ev)));
    }

    /// Pop the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse((t, _, ev))| (t, ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Ord> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_events_pop_in_push_order() {
        // The payloads sort the *other* way round ("z" > "a"), so only
        // the insertion sequence can explain the observed order.
        let mut q = EventQueue::new();
        q.push(5, "z");
        q.push(5, "a");
        q.push(5, "m");
        assert_eq!(q.pop(), Some((5, "z")));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5, "m")));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q: EventQueue<u32> = EventQueue::default();
        assert!(q.is_empty());
        q.push(1, 1);
        q.push(2, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
