//! Request front-end types: what a user asks the substrate to do, and
//! every way that ask can end.
//!
//! The serving runtime is *open-loop*: requests arrive on their own
//! schedule whether or not the system keeps up, so every request must
//! reach a terminal [`Outcome`] — completed, shed, or expired — and the
//! metrics layer checks that none are silently dropped.

use ofpc_engine::Primitive;
use serde::{Deserialize, Serialize};

/// A tenant (one of the N users sharing the wavelength's compute
/// bandwidth, paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// Globally unique request identifier (assigned in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// One user request against the photonic substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeRequest {
    pub id: RequestId,
    pub tenant: TenantId,
    /// Which photonic primitive the request needs (P1/P2/P3).
    pub primitive: Primitive,
    /// Operand vector length. The runtime keeps requests payload-free —
    /// scheduling depends only on the shape; operand *values* are
    /// synthesized deterministically (see [`ComputeRequest::operands`])
    /// when a batch is cross-checked against the real photonic engine.
    pub operand_len: u32,
    /// Arrival at the serving front-end, ps of virtual time.
    pub arrival_ps: u64,
    /// Absolute completion deadline, ps. Missing it sheds the request.
    pub deadline_ps: u64,
}

impl ComputeRequest {
    /// Remaining slack at `now` (0 when already past the deadline).
    pub fn slack_ps(&self, now_ps: u64) -> u64 {
        self.deadline_ps.saturating_sub(now_ps)
    }

    /// Has the deadline passed at `now`?
    pub fn expired(&self, now_ps: u64) -> bool {
        now_ps > self.deadline_ps
    }

    /// The batching compatibility class: requests batch together only
    /// when they run the same primitive over the same vector shape (one
    /// weight/pattern configuration per wavelength pass).
    pub fn batch_class(&self) -> BatchClass {
        BatchClass {
            primitive: self.primitive,
            operand_len: self.operand_len,
        }
    }

    /// The request's operand vector, synthesized deterministically from
    /// its id (values in `[0, 1]`, the wire fixed-point domain). Used
    /// when the runtime cross-checks a sampled batch on the real engine.
    pub fn operands(&self) -> Vec<f64> {
        let base = self.id.0 as usize;
        (0..self.operand_len as usize)
            .map(|k| ((base + k) % 255) as f64 / 255.0)
            .collect()
    }
}

/// The compatibility key for dynamic batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BatchClass {
    pub primitive: Primitive,
    pub operand_len: u32,
}

/// Why a request was refused or abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ShedReason {
    /// The tenant's admission queue was full on arrival (backpressure).
    QueueFull,
    /// The deadline passed while the request waited in a queue or batch.
    DeadlineExpiredQueued,
    /// The request was scheduled, but service would (or did) finish past
    /// the deadline.
    DeadlineExpiredServing,
    /// The engine serving the request hard-failed, retries onto
    /// survivors were exhausted, and no digital fallback was configured.
    EngineFailed,
}

/// Terminal state of a request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Served within its deadline.
    Completed {
        /// End-to-end latency (arrival to result delivery), ps.
        latency_ps: u64,
        /// Requests sharing the same wavelength batch (1 = unbatched).
        batch_size: u32,
        /// Energy attributed to this request, joules.
        energy_j: f64,
    },
    /// Refused or abandoned; the reason is always reported upstream.
    Shed { reason: ShedReason },
    /// Photonic capacity was exhausted (engine faults), so the request
    /// was answered by the digital baseline instead: the result is
    /// correct, but latency and energy are worse than the photonic path.
    DegradedDigital {
        /// End-to-end latency including the digital compute time, ps.
        latency_ps: u64,
        /// Digital compute energy attributed to this request, joules.
        energy_j: f64,
    },
}

impl Outcome {
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: u64, deadline: u64) -> ComputeRequest {
        ComputeRequest {
            id: RequestId(1),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: 16,
            arrival_ps: arrival,
            deadline_ps: deadline,
        }
    }

    #[test]
    fn slack_and_expiry() {
        let r = req(100, 500);
        assert_eq!(r.slack_ps(100), 400);
        assert_eq!(r.slack_ps(500), 0);
        assert_eq!(r.slack_ps(600), 0);
        assert!(!r.expired(500));
        assert!(r.expired(501));
    }

    #[test]
    fn batch_class_separates_shapes_and_primitives() {
        let a = req(0, 1).batch_class();
        let mut b = req(0, 1);
        b.operand_len = 32;
        let mut c = req(0, 1);
        c.primitive = Primitive::PatternMatching;
        assert_ne!(a, b.batch_class());
        assert_ne!(a, c.batch_class());
        assert_eq!(a, req(5, 9).batch_class());
    }
}
