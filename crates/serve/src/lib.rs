//! # ofpc-serve — a request-serving runtime for on-fiber photonic compute
//!
//! The rest of the workspace models the substrate: photonic primitives
//! (`ofpc-engine`), the Fig.-4 compute transponder (`ofpc-transponder`),
//! the WAN and its controller (`ofpc-net`, `ofpc-controller`,
//! `ofpc-core`). This crate asks the systems question the paper leaves
//! open: **what does it take to *serve* multi-tenant compute requests on
//! that substrate at datacenter rates?**
//!
//! The pipeline, front to back:
//!
//! 1. [`arrivals`] — seeded open-loop request generators (Poisson and
//!    bursty MMPP-2), one per tenant. Open-loop means arrival times do
//!    not react to service: the honest way to measure saturation.
//! 2. [`admission`] — bounded per-tenant queues with deficit-round-robin
//!    weighted fair dequeue. Overload backs up here and is shed
//!    *explicitly*, never silently.
//! 3. [`batcher`] — dynamic batching by [`request::BatchClass`]
//!    (primitive × operand length), closed on size or timeout. Batches
//!    amortize the photonic fixed costs (weight reconfiguration, engine
//!    settling) across WDM-parallel operand streams.
//! 4. [`scheduler`] — earliest-deadline-first dispatch onto transponder
//!    slots tracked by the controller's inventory, with a hardware-derived
//!    latency/energy service model and pre-service deadline shedding.
//! 5. [`metrics`] — per-tenant p50/p99/p999, goodput, shed rate, batch
//!    occupancy, joules/request; serialized deterministically.
//!
//! Everything is sans-IO and virtual-time ([`runtime::ServeRuntime`]):
//! a fixed seed yields a byte-identical report, which the workspace
//! replay tests pin.

pub mod admission;
pub mod arrivals;
pub mod batcher;
pub mod events;
pub mod metrics;
pub mod parsweep;
pub mod request;
pub mod runtime;
pub mod scheduler;

pub use admission::{SparseAdmission, TenantShape};
pub use arrivals::{ArrivalProcess, ArrivalSpec, PS_PER_SEC};
pub use batcher::{Batch, BatchPolicy, Batcher};
pub use events::EventQueue;
pub use metrics::{MetricsSink, ServeReport, TenantReport};
pub use parsweep::{run_sweep, SweepScenario};
pub use request::{BatchClass, ComputeRequest, Outcome, RequestId, ShedReason, TenantId};
pub use runtime::{
    EngineFaultEvent, ResilSummary, RetryPolicy, ServeConfig, ServeRuntime, TenantSpec,
};
pub use scheduler::{Dispatch, Scheduler, ServiceModel, SiteSpec};
