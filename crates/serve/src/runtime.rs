//! The serving runtime: a deterministic, sans-IO event loop driving
//! arrivals → admission → batching → scheduling → completion.
//!
//! Time is virtual (integer picoseconds) and every data structure
//! iterates in a fixed order, so two runs with the same [`ServeConfig`]
//! produce byte-identical metrics JSON — the serving replay test pins
//! this. The loop is event-driven: arrivals, batch timeouts, and slot
//! releases are the only wake-ups, and after each one the pipeline
//! (expire → fair drain → batch → dispatch) runs to a fixed point.
//!
//! Completions are recorded at their computed delivery time when the
//! batch is dispatched; after the arrival horizon the loop keeps running
//! through a drain grace window so in-flight work finishes. Whatever is
//! still queued at the end is reported as `unfinished` — conservation
//! (`arrivals = completed + shed + unfinished`) is asserted in the
//! report.

use crate::admission::AdmissionControl;
use crate::arrivals::{ArrivalProcess, ArrivalSpec};
use crate::batcher::{Batch, BatchPolicy, Batcher};
use crate::metrics::{MetricsSink, ServeReport};
use crate::request::{ComputeRequest, Outcome, RequestId, ShedReason, TenantId};
use crate::scheduler::{Scheduler, ServiceModel, SiteSpec};
use ofpc_apps::digital::ComputeModel;
use ofpc_core::OnFiberNetwork;
use ofpc_engine::dot::{DotProductUnit, DotUnitConfig};
use ofpc_engine::Primitive;
use ofpc_faults::{FaultKind, FaultPlan};
use ofpc_net::routing::shortest_paths;
use ofpc_net::{LinkId, NodeId};
use ofpc_photonics::SimRng;
use ofpc_resil::{
    split_groups, DoneAction, LostAction, MultipathPlan, ReconstructModel, RedundancyMode,
    ResilTag, SetKind, WorkLedger,
};
use ofpc_telemetry::{track, Counter, Telemetry};
use ofpc_transponder::compute::ComputeTransponderConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::events::EventQueue;

/// One tenant's serving contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    pub name: String,
    /// Relative fair-share weight (> 0).
    pub weight: u32,
    /// Admission queue capacity (> 0); beyond it arrivals shed.
    pub queue_capacity: usize,
    pub arrivals: ArrivalSpec,
    pub primitive: Primitive,
    /// Operand vector length per request.
    pub operand_len: usize,
    /// Completion deadline relative to arrival, ps.
    pub deadline_ps: u64,
}

/// Full configuration of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    pub seed: u64,
    /// Arrivals are generated in `[0, horizon_ps)`.
    pub horizon_ps: u64,
    /// Extra time after the horizon to drain in-flight work, ps.
    pub drain_grace_ps: u64,
    pub batch: BatchPolicy,
    pub tenants: Vec<TenantSpec>,
    /// Cross-check every Nth dispatched batch against the real photonic
    /// engine (0 disables verification sampling).
    pub verify_every: u64,
}

impl ServeConfig {
    /// Total offered load across tenants, requests/second.
    pub fn offered_rps(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.arrivals.mean_rate_rps())
            .sum()
    }
}

/// One scheduled engine-site fault transition for a serving run
/// (injected via [`ServeRuntime::with_engine_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineFaultEvent {
    pub at_ps: u64,
    pub node: NodeId,
    /// `false` hard-fails every slot at the site; `true` repairs it.
    pub up: bool,
}

/// Capped exponential backoff for requests displaced by engine faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First-retry backoff, ps.
    pub base_ps: u64,
    /// Backoff ceiling, ps.
    pub max_backoff_ps: u64,
    /// Retries before the request falls back (or sheds).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ps: 10_000_000,           // 10 µs
            max_backoff_ps: 1_000_000_000, // 1 ms
            max_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), ps.
    pub fn backoff_ps(&self, attempt: u32) -> u64 {
        self.base_ps
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ps)
    }
}

/// A dispatched batch whose results have not reached the requesters yet.
/// Completion is only recorded at delivery time, so an engine fault in
/// `(dispatch, done)` can still abort it.
#[derive(Debug, Clone)]
struct PendingBatch {
    node: NodeId,
    /// When the slot finishes computing (site-local), ps. A fault before
    /// this loses the batch; after it, the results are light in the
    /// fiber and survive.
    done_ps: u64,
    delivered_ps: u64,
    batch_size: u32,
    per_request_j: f64,
    requests: Vec<ComputeRequest>,
    /// Trace-tree timestamps (meaningful only when telemetry is on).
    closed_ps: u64,
    dispatched_ps: u64,
    start_ps: u64,
    /// Redundancy-set membership, when this batch is a set member.
    resil: Option<ResilTag>,
    /// The fiber links the batch rides between front-end and site
    /// (empty when no multipath plan is installed): a cut on any of
    /// them before delivery loses the batch.
    route: Vec<LinkId>,
}

/// Event kinds, ordered deterministically via (time, seq).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival {
        tenant: u32,
    },
    BatchDue,
    SlotFree {
        node: NodeId,
        slot: usize,
    },
    /// Engine site hard-fail / repair (the injected fault plan).
    SiteFault {
        node: NodeId,
        up: bool,
    },
    /// Fiber cut / splice on one link (the injected storm plan).
    LinkFault {
        link: LinkId,
        up: bool,
    },
    /// Results of pending batch `key` reach the requesters.
    Deliver {
        key: u64,
    },
    /// Backoff expired for parked request `key`; try again.
    Retry {
        key: u64,
    },
}

/// What the redundancy layer did during a run, reported alongside the
/// [`ServeReport`] by [`ServeRuntime::run_with_resil`]. All counters
/// are deterministic functions of (config, storm, policies).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilSummary {
    /// Redundancy sets formed, by kind.
    pub replica_sets: u64,
    pub parity_sets: u64,
    /// Sets formed with only one usable entry path (serialized
    /// same-path fallback: survives engine faults, not a severed span).
    pub serialized_fallback_sets: u64,
    /// Protected batches admitted with *no* usable planned path — run
    /// unprotected, with a telemetry warning.
    pub unprotected_downgrades: u64,
    /// Late duplicates cancelled before launch (free) / mid-flight
    /// (energy already burned).
    pub duplicates_cancelled_prelaunch: u64,
    pub duplicates_cancelled_inflight: u64,
    /// Deliveries of already-complete sets, suppressed without effect.
    pub duplicate_deliveries_suppressed: u64,
    /// Member losses redundancy absorbed with zero client impact.
    pub losses_absorbed: u64,
    /// Parity reconstructions performed / requests recovered by them.
    pub reconstructions: u64,
    pub reconstructed_requests: u64,
    /// Sets that lost more members than redundancy covers; their
    /// requests re-entered admission.
    pub sets_lost: u64,
    pub requeued_requests: u64,
    /// Digital XOR-reconstruction energy, J.
    pub reconstruct_energy_j: f64,
    /// Fiber cuts the runtime observed (distinct cut events).
    pub link_cuts_seen: u64,
    /// Sets with a member unaccounted for at end of run (must be 0).
    pub unsettled_sets: u64,
}

/// The assembled serving runtime.
pub struct ServeRuntime {
    config: ServeConfig,
    admission: AdmissionControl,
    batcher: Batcher,
    scheduler: Scheduler,
    metrics: MetricsSink,
    arrivals: Vec<ArrivalProcess>,
    events: EventQueue<Event>,
    next_request_id: u64,
    now_ps: u64,
    /// Real photonic engine for sampled cross-checks.
    verify_unit: DotProductUnit,
    /// Backoff policy for fault-displaced requests.
    retry: RetryPolicy,
    /// Digital baseline that absorbs requests when photonic capacity is
    /// exhausted; `None` sheds them as `EngineFailed` instead.
    fallback: Option<ComputeModel>,
    /// Dispatched batches awaiting delivery, keyed by dispatch id.
    in_service: BTreeMap<u64, PendingBatch>,
    next_pending: u64,
    /// Requests parked on a retry backoff, keyed by park id.
    parked: BTreeMap<u64, ComputeRequest>,
    next_parked: u64,
    /// Retry attempts consumed per displaced request.
    attempts: BTreeMap<RequestId, u32>,
    /// Observability handle; disabled by default (one branch per emit
    /// site — see [`ServeRuntime::with_telemetry`]).
    tel: Telemetry,
    /// When each in-flight request left its admission queue (request id
    /// → ps); populated only while telemetry is enabled, feeds the
    /// per-request trace tree emitted at delivery.
    drained_ps: BTreeMap<u64, u64>,
    /// Profiling hooks: events handled / batches dispatched.
    ev_count: Counter,
    dispatch_count: Counter,
    /// Link-disjoint route plan for proactive redundancy (None = the
    /// legacy reactive-only path).
    site_plan: Option<MultipathPlan>,
    /// Planned route per site (first plan entry wins), for in-flight
    /// loss attribution and reachability tracking.
    site_routes: BTreeMap<NodeId, Vec<LinkId>>,
    /// Links currently cut.
    link_down: BTreeSet<LinkId>,
    /// Deterministic arbiter of redundancy-set completions/losses.
    ledger: WorkLedger,
    next_set: u64,
    /// Lost members' requests, parked for parity reconstruction or
    /// requeue, keyed by (set, member).
    stash: BTreeMap<(u64, u8), Vec<ComputeRequest>>,
    /// Requests already given a terminal outcome through the redundancy
    /// divert path; late sibling deliveries must skip them.
    finalized: BTreeSet<RequestId>,
    /// Digital XOR-reconstruction cost model.
    recon: ReconstructModel,
    resil_stats: ResilSummary,
}

impl ServeRuntime {
    /// Build over an explicit site list and service model (pure sans-IO
    /// construction; see [`ServeRuntime::over_network`] for the wired
    /// path).
    pub fn new(config: ServeConfig, model: ServiceModel, sites: Vec<SiteSpec>) -> Self {
        assert!(!config.tenants.is_empty(), "need at least one tenant");
        assert!(config.horizon_ps > 0, "horizon must be positive");
        let mut rng = SimRng::seed_from_u64(config.seed);
        let caps: Vec<(usize, u32)> = config
            .tenants
            .iter()
            .map(|t| (t.queue_capacity, t.weight))
            .collect();
        let arrivals: Vec<ArrivalProcess> = config
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| ArrivalProcess::new(t.arrivals, rng.derive(&format!("tenant-{i}"))))
            .collect();
        let mut verify_rng = rng.derive("verify-engine");
        let mut verify_unit = DotProductUnit::new(DotUnitConfig::realistic(), &mut verify_rng);
        verify_unit.calibrate(256);
        let tenant_count = config.tenants.len();
        let mut rt = ServeRuntime {
            admission: AdmissionControl::new(&caps),
            batcher: Batcher::new(config.batch),
            scheduler: Scheduler::new(model, sites),
            metrics: MetricsSink::new(tenant_count),
            arrivals,
            events: EventQueue::new(),
            next_request_id: 0,
            now_ps: 0,
            verify_unit,
            retry: RetryPolicy::default(),
            fallback: None,
            in_service: BTreeMap::new(),
            next_pending: 0,
            parked: BTreeMap::new(),
            next_parked: 0,
            attempts: BTreeMap::new(),
            tel: Telemetry::disabled(),
            drained_ps: BTreeMap::new(),
            ev_count: Counter::noop(),
            dispatch_count: Counter::noop(),
            site_plan: None,
            site_routes: BTreeMap::new(),
            link_down: BTreeSet::new(),
            ledger: WorkLedger::new(),
            next_set: 0,
            stash: BTreeMap::new(),
            finalized: BTreeSet::new(),
            recon: ReconstructModel::default(),
            resil_stats: ResilSummary::default(),
            config,
        };
        // Seed the first arrival of every tenant.
        for i in 0..tenant_count {
            rt.schedule_next_arrival(i as u32);
        }
        rt
    }

    /// Build over a deployed [`OnFiberNetwork`]: every upgraded site
    /// becomes a compute site, with access delay taken from shortest
    /// propagation paths out of `front_end`, and the service model
    /// derived from the given transponder hardware config.
    pub fn over_network(
        sys: &OnFiberNetwork,
        front_end: NodeId,
        transponder: &ComputeTransponderConfig,
        wdm_channels: usize,
        config: ServeConfig,
    ) -> Self {
        let dist = shortest_paths(&sys.net.topo, front_end);
        let sites: Vec<SiteSpec> = sys
            .compute_sites()
            .into_iter()
            .map(|(node, slots)| {
                let (access_ps, _) = *dist
                    .get(&node)
                    .unwrap_or_else(|| panic!("site {node:?} unreachable from {front_end:?}"));
                SiteSpec {
                    node,
                    slots,
                    access_ps,
                }
            })
            .collect();
        assert!(
            !sites.is_empty(),
            "no upgraded compute sites; call upgrade_site first"
        );
        let model = ServiceModel::from_transponder(transponder, wdm_channels);
        ServeRuntime::new(config, model, sites)
    }

    /// Inject a schedule of engine-site hard-fails and repairs. The plan
    /// is part of the run's identity: same seed + same faults ⇒
    /// byte-identical report.
    pub fn with_engine_faults(mut self, faults: &[EngineFaultEvent]) -> Self {
        for f in faults {
            self.push_event(
                f.at_ps,
                Event::SiteFault {
                    node: f.node,
                    up: f.up,
                },
            );
        }
        self
    }

    /// Inject a full fault storm (`ofpc-faults` plan): fiber cuts and
    /// splices become link-fault events, engine fails/repairs become
    /// site faults, analog noise steps are out of the serving loop's
    /// scope and are ignored. Same storm + same seed ⇒ byte-identical
    /// report.
    pub fn with_storm(mut self, plan: &FaultPlan) -> Self {
        for ev in &plan.events {
            match ev.kind {
                FaultKind::FiberCut { link } => {
                    self.push_event(ev.at_ps, Event::LinkFault { link, up: false });
                }
                FaultKind::LinkRestore { link } => {
                    self.push_event(ev.at_ps, Event::LinkFault { link, up: true });
                }
                FaultKind::EngineFail { node } => {
                    self.push_event(ev.at_ps, Event::SiteFault { node, up: false });
                }
                FaultKind::EngineRepair { node } => {
                    self.push_event(ev.at_ps, Event::SiteFault { node, up: true });
                }
                FaultKind::NoiseStep { .. } => {}
            }
        }
        self
    }

    /// Install per-tenant redundancy policies over a link-disjoint
    /// route plan. Protected tenants' batches expand into replica or
    /// parity sets pinned to disjoint entry paths; batches of
    /// `Unprotected` tenants (and all batches when no plan is
    /// installed) keep the legacy reactive path. Requires one policy
    /// per configured tenant.
    pub fn with_redundancy(mut self, policies: &[RedundancyMode], plan: MultipathPlan) -> Self {
        assert_eq!(
            policies.len(),
            self.config.tenants.len(),
            "one redundancy policy per tenant"
        );
        for (i, &p) in policies.iter().enumerate() {
            self.admission.set_policy(TenantId(i as u32), p);
        }
        for r in &plan.routes {
            self.site_routes
                .entry(r.node)
                .or_insert_with(|| r.route.links.clone());
        }
        self.site_plan = Some(plan);
        self
    }

    /// Attach an observability handle. With an enabled handle the
    /// runtime mirrors its metrics onto the shared registry
    /// (`serve_*` series), counts loop events and dispatches, and
    /// emits sim-time trace spans: one tree per completed request
    /// (queue → batch → sched → fiber → engine → fiber) on the
    /// request track, per-slot service spans on the site track, and
    /// instant events for sheds, faults, and fallbacks. Call before
    /// [`ServeRuntime::run`]; a disabled handle (the default) costs one
    /// branch per emit site.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        let names: Vec<String> = self.config.tenants.iter().map(|t| t.name.clone()).collect();
        self.metrics = MetricsSink::with_telemetry(&names, tel);
        self.ev_count = tel.counter("serve_events_total", &Vec::new());
        self.dispatch_count = tel.counter("serve_dispatches_total", &Vec::new());
        self
    }

    /// Override the fault-retry backoff policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run the per-request verification engine on the given
    /// [`KernelBackend`](ofpc_engine::dot::KernelBackend). `Scalar`
    /// (the default) is a strict no-op —
    /// the verify unit keeps the exact state `new` built, so historical
    /// runs stay byte-identical. `Vectorized` rebuilds the calibration
    /// on the fused kernels: same physics, own noise stream, so verify
    /// error statistics stay equivalent while the sweep runs several
    /// times faster (DESIGN.md §12).
    pub fn with_verify_backend(mut self, backend: ofpc_engine::dot::KernelBackend) -> Self {
        if backend != self.verify_unit.config.backend {
            self.verify_unit.config.backend = backend;
            self.verify_unit.calibrate(256);
        }
        self
    }

    /// Enable graceful degradation: when photonic capacity is exhausted
    /// by faults, requests are answered by this digital baseline —
    /// correct results at worse latency and energy — instead of shedding.
    pub fn with_digital_fallback(mut self, model: ComputeModel) -> Self {
        self.fallback = Some(model);
        self
    }

    fn push_event(&mut self, t_ps: u64, ev: Event) {
        self.events.push(t_ps, ev);
    }

    fn schedule_next_arrival(&mut self, tenant: u32) {
        let t = self.arrivals[tenant as usize].next_arrival_ps();
        if t < self.config.horizon_ps {
            self.push_event(t, Event::Arrival { tenant });
        }
    }

    fn handle_arrival(&mut self, tenant: u32) {
        let spec = &self.config.tenants[tenant as usize];
        let id = self.next_request_id;
        self.next_request_id += 1;
        let req = ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(tenant),
            primitive: spec.primitive,
            operand_len: spec.operand_len as u32,
            arrival_ps: self.now_ps,
            deadline_ps: self.now_ps.saturating_add(spec.deadline_ps),
        };
        self.metrics.on_arrival(TenantId(tenant));
        self.admission.offer(req);
        self.schedule_next_arrival(tenant);
    }

    /// Move work through admission → batcher → scheduler until nothing
    /// changes at the current instant.
    fn run_pipeline(&mut self) {
        let now = self.now_ps;
        // Every photonic slot hard-failed: with a fallback configured,
        // divert queued work to the digital baseline instead of letting
        // it expire in queues it can never leave.
        if self.fallback.is_some() && self.scheduler.healthy_slots() == 0 {
            self.divert_all_to_fallback(now);
            return;
        }
        self.admission.expire_stale(now);

        // Keep the downstream (open batches + closed backlog) bounded so
        // overload backs up into the per-tenant queues where weighted
        // fairness and QueueFull shedding apply.
        let cap = self.scheduler.total_slots() * self.batcher.policy().max_batch * 2;
        let downstream = self.batcher.open_len() + self.scheduler.backlog_requests();
        let budget = cap.saturating_sub(downstream);
        let drained = self.admission.drain_fair(budget, now);
        let had_queue_left = self.admission.queued() > 0;
        let tracing = self.tel.is_enabled();
        for req in drained {
            if tracing {
                self.drained_ps.insert(req.id.0, now);
            }
            let rank = self.admission.policy_of(req.tenant).rank();
            self.batcher.push_with_mode(req, rank, now);
        }
        self.batcher.flush_timeouts(now);
        // Idle capacity with no backlog and nothing else queued: waiting
        // longer only adds latency, so close what we have (continuous
        // batching, as inference servers do).
        if !had_queue_left
            && self.scheduler.backlog_requests() == 0
            && self.scheduler.idle_slots(now) > 0
        {
            self.batcher.flush_all(now);
        }
        for batch in self.batcher.take_closed() {
            self.metrics.on_batch(batch.len() as u32);
            self.enqueue_with_redundancy(batch);
        }
        let dispatches = self.scheduler.try_dispatch(now);
        for d in dispatches {
            for (req, reason) in &d.shed {
                self.note_shed(req, *reason);
                self.metrics
                    .on_outcome(req.tenant, &Outcome::Shed { reason: *reason });
            }
            if d.batch.is_empty() && d.batch.resil.is_none() {
                continue;
            }
            self.dispatch_count.inc();
            if tracing {
                self.tel.span_args(
                    track::SITES,
                    u64::from(d.node.0) * 64 + d.slot as u64,
                    "serve",
                    "engine.batch",
                    d.start_ps,
                    d.done_ps,
                    vec![
                        ("size".to_string(), d.batch.len().to_string()),
                        ("node".to_string(), d.node.0.to_string()),
                        ("slot".to_string(), d.slot.to_string()),
                    ],
                );
            }
            self.push_event(
                d.free_ps,
                Event::SlotFree {
                    node: d.node,
                    slot: d.slot,
                },
            );
            let n = d.batch.len() as u32;
            // A requestless parity member has n = 0; its energy was
            // still burned and is accounted via the stage ledger below.
            let per_request_j = if n == 0 {
                0.0
            } else {
                d.energy.total_j() / f64::from(n)
            };
            // Stage energy is burned at dispatch whether or not the batch
            // survives to delivery; per-request completion is recorded at
            // delivery time so an engine fault mid-service can abort it.
            for (stage, j) in d.energy.iter() {
                self.metrics.add_stage_energy(stage, j);
            }
            let key = self.next_pending;
            self.next_pending += 1;
            self.in_service.insert(
                key,
                PendingBatch {
                    node: d.node,
                    done_ps: d.done_ps,
                    delivered_ps: d.delivered_ps,
                    batch_size: n,
                    per_request_j,
                    closed_ps: d.batch.closed_ps,
                    dispatched_ps: now,
                    start_ps: d.start_ps,
                    requests: d.batch.requests.clone(),
                    resil: d.batch.resil,
                    route: self.site_routes.get(&d.node).cloned().unwrap_or_default(),
                },
            );
            self.push_event(d.delivered_ps, Event::Deliver { key });
            // Sampled ground-truth pass through the real photonic engine.
            if self.config.verify_every > 0
                && self
                    .scheduler
                    .batches_dispatched
                    .is_multiple_of(self.config.verify_every)
                && d.batch.class.primitive == Primitive::VectorDotProduct
                && !d.batch.requests.is_empty()
            {
                let operands = d.batch.requests[0].operands();
                let weights = vec![0.5; operands.len()];
                let photonic = self.verify_unit.dot_nonneg(&operands, &weights);
                let digital: f64 = operands.iter().zip(&weights).map(|(a, w)| a * w).sum();
                self.metrics
                    .verify_abs_errors
                    .push((photonic - digital).abs());
            }
        }
        // Shed records accumulated inside admission this instant.
        for (req, reason) in self.admission.take_shed() {
            self.note_shed(&req, reason);
            self.metrics
                .on_outcome(req.tenant, &Outcome::Shed { reason });
        }
        // Arm the batch-timeout alarm for the oldest open batch.
        if let Some(t) = self.batcher.next_timeout_ps() {
            self.push_event(t.max(now), Event::BatchDue);
        }
    }

    /// Expand a closed batch into its tenant's redundancy set — or pass
    /// it straight through for unprotected tenants / no installed plan.
    ///
    /// Set members pin to link-disjoint entry paths that are currently
    /// usable (links up, site slots healthy). With only one usable path
    /// the set degrades to serialized same-path replication (announced
    /// via telemetry); with none, the batch runs declared-unprotected.
    fn enqueue_with_redundancy(&mut self, batch: Batch) {
        if batch.is_empty() {
            return;
        }
        let mode = self.admission.policy_of(batch.requests[0].tenant);
        let Some(plan) = self.site_plan.as_ref() else {
            self.scheduler.enqueue(batch);
            return;
        };
        if !mode.is_protected() {
            self.scheduler.enqueue(batch);
            return;
        }
        let pins: Vec<NodeId> = plan
            .routes
            .iter()
            .filter(|r| {
                r.disjoint
                    && !r.route.links.iter().any(|l| self.link_down.contains(l))
                    && self.scheduler.site_healthy(r.node)
            })
            .map(|r| r.node)
            .collect();
        if pins.is_empty() {
            // Graceful degradation floor: no usable planned path at
            // all. Run the batch unprotected rather than stranding it,
            // and say so.
            self.resil_stats.unprotected_downgrades += 1;
            self.tel.instant(
                track::RESIL,
                self.next_set,
                "resil",
                "downgrade.unprotected",
                self.now_ps,
                vec![("size".to_string(), batch.len().to_string())],
            );
            self.scheduler.enqueue(batch);
            return;
        }
        if pins.len() == 1 {
            // One usable path: both members ride it serialized. Engine
            // faults and transient cuts are still survivable; a severed
            // shared span is not — warn, don't pretend.
            self.resil_stats.serialized_fallback_sets += 1;
            self.tel.instant(
                track::RESIL,
                self.next_set,
                "resil",
                "fallback.serialized",
                self.now_ps,
                vec![("pin".to_string(), pins[0].0.to_string())],
            );
        }
        let set = self.next_set;
        self.next_set += 1;
        let deadline_ps = batch.deadline_ps();
        // Rotate the pin assignment by set id so successive sets spread
        // across every disjoint route instead of always loading the
        // first `members` routes of the plan.
        let spread = set as usize;
        match mode {
            RedundancyMode::Replica => {
                self.ledger.register(set, SetKind::Replica);
                self.resil_stats.replica_sets += 1;
                for member in 0..2u8 {
                    let mut b = batch.clone();
                    b.resil = Some(ResilTag {
                        set,
                        member,
                        pin: pins[(spread + member as usize) % pins.len()],
                        phantom: 0,
                        deadline_ps,
                    });
                    self.scheduler.enqueue(b);
                }
            }
            RedundancyMode::XorParity { data_groups } => {
                let sizes = split_groups(batch.len(), data_groups as usize);
                let k = sizes.len() as u8;
                self.ledger
                    .register(set, SetKind::Parity { data_members: k });
                self.resil_stats.parity_sets += 1;
                let mut offset = 0usize;
                for (m, &sz) in sizes.iter().enumerate() {
                    let b = Batch {
                        class: batch.class,
                        requests: batch.requests[offset..offset + sz].to_vec(),
                        closed_ps: batch.closed_ps,
                        resil: Some(ResilTag {
                            set,
                            member: m as u8,
                            pin: pins[(spread + m) % pins.len()],
                            phantom: 0,
                            deadline_ps,
                        }),
                    };
                    offset += sz;
                    self.scheduler.enqueue(b);
                }
                // The parity group: XOR of the data groups, phantom-
                // sized like the widest one so its wavelength time and
                // energy are priced honestly.
                let phantom = sizes.iter().copied().max().unwrap_or(0) as u32;
                self.scheduler.enqueue(Batch {
                    class: batch.class,
                    requests: Vec::new(),
                    closed_ps: batch.closed_ps,
                    resil: Some(ResilTag {
                        set,
                        member: k,
                        pin: pins[(spread + k as usize) % pins.len()],
                        phantom,
                        deadline_ps,
                    }),
                });
            }
            RedundancyMode::Unprotected => unreachable!("filtered above"),
        }
    }

    /// Results of pending batch `key` reach the requesters: record the
    /// completions. Aborted batches were already removed from the table,
    /// so their stale delivery events are no-ops. Redundancy-set
    /// members route through the work ledger, which arbitrates
    /// first-home-wins, duplicate suppression, and reconstruction
    /// deterministically.
    fn handle_deliver(&mut self, key: u64) {
        let Some(p) = self.in_service.remove(&key) else {
            return;
        };
        let Some(tag) = p.resil else {
            self.complete_batch_requests(&p);
            return;
        };
        match self.ledger.on_member_done(tag.set, tag.member) {
            DoneAction::Complete { cancel } => {
                self.complete_batch_requests(&p);
                for m in cancel {
                    self.cancel_set_member(tag.set, m);
                }
                self.drop_set_stash(tag.set);
            }
            DoneAction::Duplicate => {
                self.resil_stats.duplicate_deliveries_suppressed += 1;
            }
            DoneAction::Record => {
                self.complete_batch_requests(&p);
            }
            DoneAction::RecordAndReconstruct { member } => {
                self.complete_batch_requests(&p);
                self.reconstruct_member(tag.set, member);
            }
        }
    }

    /// Record a completion outcome for every request of a delivered
    /// batch (skipping any the divert path already finalized).
    fn complete_batch_requests(&mut self, p: &PendingBatch) {
        for req in &p.requests {
            if self.finalized.contains(&req.id) {
                continue;
            }
            self.attempts.remove(&req.id);
            if self.tel.is_enabled() {
                self.trace_request(req, p);
            }
            self.metrics.on_outcome(
                req.tenant,
                &Outcome::Completed {
                    latency_ps: p.delivered_ps - req.arrival_ps,
                    batch_size: p.batch_size,
                    energy_j: p.per_request_j,
                },
            );
        }
    }

    /// Cancel a still-pending redundancy-set member: free if it has not
    /// launched, a write-off of already-spent energy if it is in
    /// flight. Members already terminal are left to the ledger.
    fn cancel_set_member(&mut self, set: u64, member: u8) {
        if self.scheduler.cancel_member(set, member) {
            self.resil_stats.duplicates_cancelled_prelaunch += 1;
            return;
        }
        let key = self
            .in_service
            .iter()
            .find(|(_, p)| p.resil.is_some_and(|t| t.set == set && t.member == member))
            .map(|(&k, _)| k);
        if let Some(k) = key {
            self.in_service.remove(&k);
            self.resil_stats.duplicates_cancelled_inflight += 1;
        }
    }

    /// Drop every stashed request list of `set`.
    fn drop_set_stash(&mut self, set: u64) {
        let keys: Vec<(u64, u8)> = self
            .stash
            .range((set, 0)..=(set, u8::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.stash.remove(&k);
        }
    }

    /// Digitally reconstruct a lost data group from its k surviving
    /// siblings + parity: XOR is byte-wise, so cost scales with the
    /// group's operand bytes times the groups read.
    fn reconstruct_member(&mut self, set: u64, member: u8) {
        let Some(reqs) = self.stash.remove(&(set, member)) else {
            return;
        };
        let k = match self.ledger.kind(set) {
            Some(SetKind::Parity { data_members }) => u64::from(data_members),
            _ => 1,
        };
        let bytes = reqs.iter().map(|r| r.operand_len as usize).sum::<usize>() * k as usize;
        let (recon_ps, recon_j) = self.recon.cost(bytes);
        self.metrics.add_stage_energy("parity-reconstruct", recon_j);
        self.resil_stats.reconstructions += 1;
        self.resil_stats.reconstructed_requests += reqs.len() as u64;
        self.resil_stats.reconstruct_energy_j += recon_j;
        self.tel.instant(
            track::RESIL,
            set,
            "resil",
            "parity.reconstruct",
            self.now_ps,
            vec![
                ("member".to_string(), member.to_string()),
                ("requests".to_string(), reqs.len().to_string()),
            ],
        );
        let delivered = self.now_ps + recon_ps;
        let per_j = if reqs.is_empty() {
            0.0
        } else {
            recon_j / reqs.len() as f64
        };
        for req in &reqs {
            if self.finalized.contains(&req.id) {
                continue;
            }
            self.attempts.remove(&req.id);
            self.metrics.on_outcome(
                req.tenant,
                &Outcome::Completed {
                    latency_ps: delivered - req.arrival_ps,
                    batch_size: reqs.len().max(1) as u32,
                    energy_j: per_j,
                },
            );
        }
    }

    /// An in-flight batch was lost to a fault. Unprotected batches take
    /// the legacy reactive path (retry backoff → fallback); set members
    /// are stashed and arbitrated by the ledger — one loss per set is
    /// absorbed outright, beyond that the lost work re-enters admission.
    fn lose_member(&mut self, resil: Option<ResilTag>, requests: Vec<ComputeRequest>) {
        let Some(tag) = resil else {
            for req in requests {
                self.requeue_or_fallback(req);
            }
            return;
        };
        self.stash.insert((tag.set, tag.member), requests);
        match self.ledger.on_member_lost(tag.set, tag.member) {
            LostAction::Absorbed => {
                self.resil_stats.losses_absorbed += 1;
                self.tel.instant(
                    track::RESIL,
                    tag.set,
                    "resil",
                    "loss.absorbed",
                    self.now_ps,
                    vec![("member".to_string(), tag.member.to_string())],
                );
            }
            LostAction::Reconstruct { member } => {
                self.resil_stats.losses_absorbed += 1;
                self.reconstruct_member(tag.set, member);
            }
            LostAction::AlreadyResolved => {
                self.stash.remove(&(tag.set, tag.member));
            }
            LostAction::Requeue { members } => {
                self.resil_stats.sets_lost += 1;
                let kind = self.ledger.kind(tag.set);
                let mut work: Vec<ComputeRequest> = Vec::new();
                let mut seen: BTreeSet<RequestId> = BTreeSet::new();
                for m in members {
                    if let Some(reqs) = self.stash.remove(&(tag.set, m)) {
                        for r in reqs {
                            if seen.insert(r.id) {
                                work.push(r);
                            }
                        }
                    }
                }
                // Replica copies carry identical requests: drop the
                // sibling stashes so nothing requeues twice.
                if matches!(kind, Some(SetKind::Replica)) {
                    self.drop_set_stash(tag.set);
                }
                self.tel.instant(
                    track::RESIL,
                    tag.set,
                    "resil",
                    "set.lost",
                    self.now_ps,
                    vec![("requeued".to_string(), work.len().to_string())],
                );
                for req in work {
                    self.resil_stats.requeued_requests += 1;
                    self.requeue_or_fallback(req);
                }
            }
        }
    }

    /// A fiber cut or splice fires. Cuts sever every planned route
    /// riding the link: affected sites become unreachable for new
    /// dispatches, and in-flight batches on the link — operands out or
    /// results back — are lost as loss-of-light.
    fn handle_link_fault(&mut self, link: LinkId, up: bool) {
        self.tel.instant(
            track::NET,
            u64::from(link.0),
            "fault",
            if up { "link.splice" } else { "link.cut" },
            self.now_ps,
            vec![("link".to_string(), link.0.to_string())],
        );
        if up {
            self.link_down.remove(&link);
        } else if self.link_down.insert(link) {
            self.resil_stats.link_cuts_seen += 1;
        }
        let reach: Vec<(NodeId, bool)> = self
            .site_routes
            .iter()
            .map(|(&n, links)| (n, !links.iter().any(|l| self.link_down.contains(l))))
            .collect();
        for (n, ok) in reach {
            self.scheduler.set_reachable(n, ok);
        }
        if up {
            return;
        }
        let lost: Vec<u64> = self
            .in_service
            .iter()
            .filter(|(_, p)| p.delivered_ps > self.now_ps && p.route.contains(&link))
            .map(|(&k, _)| k)
            .collect();
        for key in lost {
            let p = self.in_service.remove(&key).expect("just listed");
            self.tel.instant(
                track::NET,
                u64::from(link.0),
                "fault",
                "batch.lost",
                self.now_ps,
                vec![("size".to_string(), p.batch_size.to_string())],
            );
            self.lose_member(p.resil, p.requests);
        }
    }

    /// Emit one completed request's life as a trace tree: all
    /// timestamps are known at delivery time, so the whole nest —
    /// queue, batch-forming, scheduler wait, outbound fiber, engine
    /// service, return fiber — is emitted at once on the request's own
    /// track.
    fn trace_request(&mut self, req: &ComputeRequest, p: &PendingBatch) {
        let tid = req.id.0;
        let drained = self
            .drained_ps
            .remove(&tid)
            .unwrap_or(req.arrival_ps)
            .min(p.closed_ps);
        self.tel.begin(
            track::REQUESTS,
            tid,
            "serve",
            "request",
            req.arrival_ps,
            vec![("tenant".to_string(), req.tenant.0.to_string())],
        );
        let stages = [
            ("serve.queue", req.arrival_ps, drained),
            ("serve.batch", drained, p.closed_ps),
            ("serve.sched", p.closed_ps, p.dispatched_ps),
            ("fiber.out", p.dispatched_ps, p.start_ps),
            ("engine.mvm", p.start_ps, p.done_ps),
            ("fiber.ret", p.done_ps, p.delivered_ps),
        ];
        for (name, start, end) in stages {
            self.tel
                .span(track::REQUESTS, tid, "serve", name, start, end);
        }
        self.tel
            .end(track::REQUESTS, tid, "serve", "request", p.delivered_ps);
    }

    /// Telemetry-only record of a shed: drop the request's trace state
    /// and mark the shed as an instant event on its track.
    fn note_shed(&mut self, req: &ComputeRequest, reason: ShedReason) {
        if self.tel.is_enabled() {
            self.drained_ps.remove(&req.id.0);
            self.tel.instant(
                track::REQUESTS,
                req.id.0,
                "serve",
                "shed",
                self.now_ps,
                vec![
                    ("reason".to_string(), format!("{reason:?}")),
                    ("tenant".to_string(), req.tenant.0.to_string()),
                ],
            );
        }
    }

    /// An injected engine fault transition fires.
    fn handle_site_fault(&mut self, node: NodeId, up: bool) {
        self.tel.instant(
            track::NET,
            u64::from(node.0),
            "fault",
            if up { "site.repair" } else { "site.fail" },
            self.now_ps,
            vec![("node".to_string(), node.0.to_string())],
        );
        if up {
            self.scheduler.recover_site(node);
            return;
        }
        self.scheduler.fail_site(node);
        // Batches the site was still computing are lost; results already
        // past `done_ps` are light in the fiber and survive.
        let lost: Vec<u64> = self
            .in_service
            .iter()
            .filter(|(_, p)| p.node == node && p.done_ps > self.now_ps)
            .map(|(&k, _)| k)
            .collect();
        for key in lost {
            let p = self.in_service.remove(&key).expect("just listed");
            self.tel.instant(
                track::NET,
                u64::from(node.0),
                "fault",
                "batch.abort",
                self.now_ps,
                vec![("size".to_string(), p.batch_size.to_string())],
            );
            self.lose_member(p.resil, p.requests);
        }
    }

    /// A parked request's backoff expired.
    fn handle_retry(&mut self, key: u64) {
        let Some(req) = self.parked.remove(&key) else {
            return;
        };
        if self.scheduler.healthy_slots() == 0
            || (self.fallback.is_some() && req.expired(self.now_ps))
        {
            self.attempts.remove(&req.id);
            self.finish_degraded(req);
        } else {
            // Back through admission: the retry competes fairly with new
            // arrivals for the surviving slots (no second arrival count —
            // the request was counted once).
            self.admission.offer(req);
        }
    }

    /// Route a fault-displaced request: park it for a capped-exponential
    /// backoff retry while budget remains and survivors exist, else hand
    /// it to the terminal degraded/shed path.
    fn requeue_or_fallback(&mut self, req: ComputeRequest) {
        let attempt = {
            let a = self.attempts.entry(req.id).or_insert(0);
            *a += 1;
            *a
        };
        let at = self
            .now_ps
            .saturating_add(self.retry.backoff_ps(attempt - 1));
        // The capped backoff must never park a request past its own
        // deadline: it would wake only to expire. Hand it to the
        // terminal path now instead of wasting the wait.
        if attempt > self.retry.max_retries
            || self.scheduler.healthy_slots() == 0
            || at > req.deadline_ps
        {
            self.attempts.remove(&req.id);
            self.finish_degraded(req);
            return;
        }
        let key = self.next_parked;
        self.next_parked += 1;
        self.parked.insert(key, req);
        self.push_event(at, Event::Retry { key });
    }

    /// Terminal path for a request photonics cannot serve: the digital
    /// baseline computes it (correct answer, worse latency and energy),
    /// or — with no fallback configured — it sheds as `EngineFailed`.
    fn finish_degraded(&mut self, req: ComputeRequest) {
        if self.tel.is_enabled() {
            self.drained_ps.remove(&req.id.0);
            self.tel.instant(
                track::REQUESTS,
                req.id.0,
                "fault",
                if self.fallback.is_some() {
                    "fallback.digital"
                } else {
                    "shed"
                },
                self.now_ps,
                vec![("tenant".to_string(), req.tenant.0.to_string())],
            );
        }
        match &self.fallback {
            Some(model) => {
                let macs = u64::from(req.operand_len);
                let compute_ps = (model.time_for_macs(macs) * 1e12) as u64;
                let energy_j = model.energy_for_macs(macs);
                self.metrics.add_stage_energy("digital-fallback", energy_j);
                self.metrics.on_outcome(
                    req.tenant,
                    &Outcome::DegradedDigital {
                        latency_ps: self.now_ps + compute_ps - req.arrival_ps,
                        energy_j,
                    },
                );
            }
            None => {
                self.metrics.on_outcome(
                    req.tenant,
                    &Outcome::Shed {
                        reason: ShedReason::EngineFailed,
                    },
                );
            }
        }
    }

    /// Photonic capacity is gone: push everything queued anywhere to the
    /// digital fallback (deadlines included — a correct late answer beats
    /// a shed).
    fn divert_all_to_fallback(&mut self, now: u64) {
        let queued = self.admission.queued();
        for req in self.admission.drain_fair(queued, now) {
            self.finish_degraded(req);
        }
        self.batcher.flush_all(now);
        for batch in self.batcher.take_closed() {
            for req in batch.requests {
                self.finish_degraded(req);
            }
        }
        for batch in self.scheduler.drain_ready() {
            if let Some(tag) = batch.resil {
                // Blackout divert: every member of the set is headed
                // the same way, so degrade each request exactly once
                // (replica copies share ids) and settle the ledger.
                if let LostAction::Requeue { members } =
                    self.ledger.on_member_lost(tag.set, tag.member)
                {
                    for m in members {
                        if let Some(reqs) = self.stash.remove(&(tag.set, m)) {
                            for req in reqs {
                                if self.finalized.insert(req.id) {
                                    self.finish_degraded(req);
                                }
                            }
                        }
                    }
                }
                for req in batch.requests {
                    if self.finalized.insert(req.id) {
                        self.finish_degraded(req);
                    }
                }
            } else {
                for req in batch.requests {
                    self.finish_degraded(req);
                }
            }
        }
        // QueueFull sheds recorded at offer time still surface.
        for (req, reason) in self.admission.take_shed() {
            self.note_shed(&req, reason);
            self.metrics
                .on_outcome(req.tenant, &Outcome::Shed { reason });
        }
    }

    /// Requests with no terminal outcome at end of run. Redundancy-set
    /// copies are deduplicated by request id (two stranded replica
    /// members are one unfinished request, not two), and requests the
    /// divert path already finalized are excluded.
    fn unfinished_requests(&self) -> u64 {
        let plain: usize = self.admission.queued()
            + self.batcher.open_len()
            + self.parked.len()
            + self
                .scheduler
                .ready_batches()
                .iter()
                .filter(|b| b.resil.is_none())
                .map(Batch::len)
                .sum::<usize>();
        let mut grouped: BTreeSet<RequestId> = BTreeSet::new();
        for b in self.scheduler.ready_batches() {
            if b.resil.is_some() {
                for r in &b.requests {
                    grouped.insert(r.id);
                }
            }
        }
        for reqs in self.stash.values() {
            for r in reqs {
                grouped.insert(r.id);
            }
        }
        let grouped = grouped
            .iter()
            .filter(|id| !self.finalized.contains(id))
            .count();
        (plain + grouped) as u64
    }

    /// Run to completion and produce the final report.
    pub fn run(self) -> ServeReport {
        self.run_with_resil().0
    }

    /// Run to completion, returning the report plus the redundancy
    /// layer's summary (all-zero when no redundancy was configured).
    pub fn run_with_resil(mut self) -> (ServeReport, ResilSummary) {
        let end_ps = self.config.horizon_ps + self.config.drain_grace_ps;
        while let Some((t, ev)) = self.events.pop() {
            self.ev_count.inc();
            if t > end_ps {
                // Past the drain window no new work starts, but results
                // already dispatched are light in the fiber — their
                // deliveries still count.
                if let Event::Deliver { key } = ev {
                    self.now_ps = t;
                    self.handle_deliver(key);
                }
                continue;
            }
            self.now_ps = t;
            match ev {
                Event::Arrival { tenant } => self.handle_arrival(tenant),
                Event::BatchDue => {} // pipeline below re-checks timeouts
                Event::SlotFree { node, slot } => {
                    self.scheduler.release(node, slot, t);
                }
                Event::SiteFault { node, up } => self.handle_site_fault(node, up),
                Event::LinkFault { link, up } => self.handle_link_fault(link, up),
                Event::Deliver { key } => self.handle_deliver(key),
                Event::Retry { key } => self.handle_retry(key),
            }
            self.run_pipeline();
        }
        debug_assert!(self.in_service.is_empty(), "all dispatches delivered");
        let unfinished = self.unfinished_requests();
        let duration_s = self.config.horizon_ps as f64 / 1e12;
        let mut summary = self.resil_stats.clone();
        summary.unsettled_sets = self.ledger.unsettled_sets().len() as u64;
        let report = self
            .metrics
            .report(duration_s, unfinished, self.config.batch.max_batch);
        (report, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_net::Topology;

    fn tenant(rate_rps: f64, weight: u32) -> TenantSpec {
        TenantSpec {
            name: format!("t-w{weight}"),
            weight,
            queue_capacity: 64,
            arrivals: ArrivalSpec::Poisson { rate_rps },
            primitive: Primitive::VectorDotProduct,
            operand_len: 2048,
            deadline_ps: 200_000_000, // 200 µs
        }
    }

    fn small_config(rate_rps: f64) -> ServeConfig {
        ServeConfig {
            seed: 42,
            horizon_ps: 2_000_000_000, // 2 ms
            drain_grace_ps: 500_000_000,
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_ps: 20_000_000,
            },
            tenants: vec![tenant(rate_rps, 1), tenant(rate_rps, 1)],
            verify_every: 0,
        }
    }

    // Two slots, four WDM channels, 2048-element requests: per-slot
    // capacity ≈ 7.8M req/s, so test overload is reachable at tens of
    // millions of requests per second.
    fn runtime(config: ServeConfig) -> ServeRuntime {
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        let sites = vec![SiteSpec {
            node: NodeId(1),
            slots: 2,
            access_ps: 100_000,
        }];
        ServeRuntime::new(config, model, sites)
    }

    #[test]
    fn light_load_completes_everything() {
        let report = runtime(small_config(20_000.0)).run();
        assert!(report.arrivals > 30, "arrivals {}", report.arrivals);
        assert_eq!(report.shed, 0, "no shedding at light load");
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.completed, report.arrivals);
        assert!(report.p99_latency_us.unwrap() < 1_000.0);
    }

    #[test]
    fn overload_sheds_but_conserves() {
        // 2 × 16M req/s offered against ~15.5M req/s of slot capacity.
        let report = runtime(small_config(16_000_000.0)).run();
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(
            report.arrivals,
            report.completed + report.shed + report.unfinished
        );
        // Goodput saturates well below offered load.
        assert!(report.goodput_rps < report.offered_rps * 0.9);
    }

    #[test]
    fn same_seed_same_report() {
        let a = runtime(small_config(500_000.0)).run();
        let b = runtime(small_config(500_000.0)).run();
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap()
        );
    }

    #[test]
    fn over_network_derives_sites_from_upgrades() {
        let mut sys = OnFiberNetwork::new(Topology::fig1(), 7);
        sys.upgrade_site(NodeId(1), 2);
        sys.upgrade_site(NodeId(2), 1);
        // fig1 spans are 600–900 km, so the operand/result round trip
        // alone is ~8 ms — deadlines must be WAN-scale.
        let mut cfg = small_config(100_000.0);
        for t in &mut cfg.tenants {
            t.deadline_ps = 20_000_000_000; // 20 ms
        }
        let rt =
            ServeRuntime::over_network(&sys, NodeId(0), &ComputeTransponderConfig::ideal(), 8, cfg);
        assert_eq!(rt.scheduler.total_slots(), 3);
        let report = rt.run();
        assert!(report.completed > 0);
    }

    // A fault plan that takes the only site down mid-run and never
    // repairs it.
    fn outage(at_ps: u64) -> Vec<EngineFaultEvent> {
        vec![EngineFaultEvent {
            at_ps,
            node: NodeId(1),
            up: false,
        }]
    }

    #[test]
    fn engine_fault_without_fallback_sheds_displaced_work() {
        let report = runtime(small_config(500_000.0))
            .with_engine_faults(&outage(1_000_000_000))
            .run();
        assert!(report.completed > 0, "pre-fault work completes");
        assert_eq!(report.degraded, 0, "no fallback configured");
        // Everything after the outage is shed or stranded, never lost.
        assert!(report.shed + report.unfinished > 0);
        assert_eq!(
            report.arrivals,
            report.completed + report.shed + report.degraded + report.unfinished
        );
    }

    #[test]
    fn digital_fallback_converts_shed_into_degraded() {
        let cfg = small_config(500_000.0);
        let without = runtime(cfg.clone())
            .with_engine_faults(&outage(1_000_000_000))
            .run();
        let with = runtime(cfg)
            .with_engine_faults(&outage(1_000_000_000))
            .with_digital_fallback(ofpc_apps::digital::ComputeModel::edge_soc())
            .run();
        assert!(with.degraded > 0, "outage work goes digital");
        assert!(
            with.shed + with.unfinished < without.shed + without.unfinished,
            "fallback must beat shedding: {} vs {}",
            with.shed + with.unfinished,
            without.shed + without.unfinished
        );
        assert_eq!(
            with.arrivals,
            with.completed + with.shed + with.degraded + with.unfinished
        );
        // Degradation is visible in the ledger: digital joules appear.
        assert!(with.degraded_energy_j > 0.0);
        assert!(with.energy_stages_j.contains_key("digital-fallback"));
    }

    #[test]
    fn service_resumes_after_repair() {
        let mut faults = outage(500_000_000);
        faults.push(EngineFaultEvent {
            at_ps: 1_000_000_000,
            node: NodeId(1),
            up: true,
        });
        let report = runtime(small_config(500_000.0))
            .with_engine_faults(&faults)
            .with_digital_fallback(ofpc_apps::digital::ComputeModel::edge_soc())
            .run();
        // The outage degrades, the repair restores photonic service: both
        // populations must be present.
        assert!(report.degraded > 0, "outage window degrades");
        assert!(report.completed > 0, "photonic service resumes");
        assert_eq!(
            report.arrivals,
            report.completed + report.shed + report.degraded + report.unfinished
        );
    }

    #[test]
    fn mid_flight_fault_aborts_computing_batches_but_spares_egressed_results() {
        // Two sites so the displaced work still has survivors to retry
        // on; the fault hits site 1 while three batches are pending.
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        let sites = vec![
            SiteSpec {
                node: NodeId(1),
                slots: 2,
                access_ps: 100_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 2,
                access_ps: 100_000,
            },
        ];
        let mut rt = ServeRuntime::new(small_config(500_000.0), model, sites);
        rt.now_ps = 1_000_000;
        let req = |id: u64| ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: 2048,
            arrival_ps: 0,
            deadline_ps: u64::MAX,
        };
        let pending = |node: NodeId, done_ps: u64, ids: &[u64]| PendingBatch {
            node,
            done_ps,
            delivered_ps: done_ps + 100_000,
            batch_size: ids.len() as u32,
            per_request_j: 0.0,
            requests: ids.iter().map(|&i| req(i)).collect(),
            closed_ps: 0,
            dispatched_ps: 0,
            start_ps: 0,
            resil: None,
            route: Vec::new(),
        };
        // Batch 0 finished computing before the fault: its results
        // already egressed and are light in the return fiber. Batch 1 is
        // still on the failing engine; batch 2 runs at the other site.
        rt.in_service
            .insert(0, pending(NodeId(1), 900_000, &[1, 2]));
        rt.in_service.insert(1, pending(NodeId(1), 1_500_000, &[3]));
        rt.in_service.insert(2, pending(NodeId(2), 1_500_000, &[4]));
        rt.handle_site_fault(NodeId(1), false);
        assert!(
            rt.in_service.contains_key(&0),
            "egressed results must survive the engine fault"
        );
        assert!(
            !rt.in_service.contains_key(&1),
            "batch still computing at the fault must abort"
        );
        assert!(
            rt.in_service.contains_key(&2),
            "batches at healthy sites are untouched"
        );
        // The aborted batch's member is parked for a retry on the
        // surviving site, never silently dropped.
        assert_eq!(rt.parked.len(), 1);
        assert_eq!(rt.parked.values().next().unwrap().id, RequestId(3));
        // The surviving results still deliver after the site died.
        rt.now_ps = 1_000_000;
        rt.handle_deliver(0);
        assert!(!rt.in_service.contains_key(&0));
    }

    // Hub-and-spoke serving plant: front-end 0, `n` sites each on its
    // own 10 km span — every route link-disjoint by construction.
    fn star_plant(n: usize) -> (Vec<SiteSpec>, ofpc_resil::MultipathPlan) {
        let mut topo = Topology::new();
        let fe = topo.add_node("fe");
        let mut nodes = Vec::new();
        let mut sites = Vec::new();
        for i in 0..n {
            let s = topo.add_node(format!("s{i}"));
            topo.add_link(fe, s, 10.0);
            nodes.push(s);
            sites.push(SiteSpec {
                node: s,
                slots: 2,
                access_ps: 100_000,
            });
        }
        let plan = ofpc_resil::MultipathPlan::plan(&topo, fe, &nodes);
        (sites, plan)
    }

    fn storm_cut(link: ofpc_net::LinkId, at_ps: u64, restore_ps: u64) -> FaultPlan {
        FaultPlan {
            events: vec![
                ofpc_faults::FaultEvent {
                    at_ps,
                    kind: FaultKind::FiberCut { link },
                },
                ofpc_faults::FaultEvent {
                    at_ps: restore_ps,
                    kind: FaultKind::LinkRestore { link },
                },
            ],
        }
    }

    #[test]
    fn replica_tenants_survive_a_fiber_cut_with_zero_failed_requests() {
        let (sites, plan) = star_plant(2);
        let cut = plan.routes[0].route.links[0];
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        let (report, resil) = ServeRuntime::new(small_config(500_000.0), model, sites)
            .with_redundancy(&[RedundancyMode::Replica, RedundancyMode::Replica], plan)
            .with_storm(&storm_cut(cut, 800_000_000, 1_300_000_000))
            .run_with_resil();
        assert!(report.completed > 0);
        assert_eq!(report.shed, 0, "protected tenants never shed");
        assert_eq!(report.degraded, 0);
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.arrivals, report.completed, "zero lost work");
        assert!(resil.replica_sets > 0);
        assert_eq!(resil.link_cuts_seen, 1);
        assert_eq!(resil.unsettled_sets, 0, "every member accounted for");
        // First-home-wins visibly arbitrates: duplicates are cancelled
        // or suppressed, never double-counted.
        assert!(
            resil.duplicates_cancelled_prelaunch
                + resil.duplicates_cancelled_inflight
                + resil.duplicate_deliveries_suppressed
                > 0
        );
    }

    #[test]
    fn parity_tenants_survive_a_fiber_cut_with_zero_failed_requests() {
        let (sites, plan) = star_plant(4);
        let cut = plan.routes[1].route.links[0];
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        let mode = RedundancyMode::XorParity { data_groups: 3 };
        let (report, resil) = ServeRuntime::new(small_config(500_000.0), model, sites)
            .with_redundancy(&[mode, mode], plan)
            .with_storm(&storm_cut(cut, 800_000_000, 1_300_000_000))
            .run_with_resil();
        assert_eq!(report.shed, 0, "coded tenants never shed");
        assert_eq!(report.degraded, 0);
        assert_eq!(report.arrivals, report.completed + report.unfinished);
        assert_eq!(report.unfinished, 0);
        assert!(resil.parity_sets > 0);
        assert_eq!(resil.unsettled_sets, 0);
    }

    #[test]
    fn parity_loss_then_final_delivery_reconstructs_digitally() {
        let mut rt = runtime(small_config(500_000.0));
        rt.now_ps = 1_000_000;
        let req = |id: u64| ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: 64,
            arrival_ps: 0,
            deadline_ps: u64::MAX,
        };
        let tag = |member: u8, phantom: u32| ResilTag {
            set: 0,
            member,
            pin: NodeId(1),
            phantom,
            deadline_ps: u64::MAX,
        };
        let pending = |resil: Option<ResilTag>, ids: &[u64]| PendingBatch {
            node: NodeId(1),
            done_ps: 900_000,
            delivered_ps: 1_000_000,
            batch_size: ids.len() as u32,
            per_request_j: 0.0,
            requests: ids.iter().map(|&i| req(i)).collect(),
            closed_ps: 0,
            dispatched_ps: 0,
            start_ps: 0,
            resil,
            route: Vec::new(),
        };
        rt.ledger.register(0, SetKind::Parity { data_members: 2 });
        rt.in_service.insert(0, pending(Some(tag(0, 0)), &[1, 2]));
        rt.in_service.insert(2, pending(Some(tag(2, 2)), &[]));
        // Data group 0 delivers, group 1 dies mid-flight (absorbed),
        // and the parity group's delivery triggers reconstruction.
        rt.handle_deliver(0);
        rt.lose_member(Some(tag(1, 0)), vec![req(3), req(4)]);
        assert_eq!(rt.resil_stats.losses_absorbed, 1);
        assert_eq!(rt.stash.len(), 1);
        rt.handle_deliver(2);
        assert_eq!(rt.resil_stats.reconstructions, 1);
        assert_eq!(rt.resil_stats.reconstructed_requests, 2);
        assert!(rt.resil_stats.reconstruct_energy_j > 0.0);
        assert!(rt.stash.is_empty(), "reconstructed stash is consumed");
        assert!(rt.ledger.unsettled_sets().is_empty());
    }

    #[test]
    fn replica_first_home_cancels_the_in_flight_duplicate() {
        let mut rt = runtime(small_config(500_000.0));
        rt.now_ps = 1_000_000;
        let req = |id: u64| ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: 64,
            arrival_ps: 0,
            deadline_ps: u64::MAX,
        };
        let member = |m: u8| PendingBatch {
            node: NodeId(1),
            done_ps: 900_000 + u64::from(m),
            delivered_ps: 1_000_000 + u64::from(m),
            batch_size: 1,
            per_request_j: 0.0,
            requests: vec![req(1)],
            closed_ps: 0,
            dispatched_ps: 0,
            start_ps: 0,
            resil: Some(ResilTag {
                set: 0,
                member: m,
                pin: NodeId(1),
                phantom: 0,
                deadline_ps: u64::MAX,
            }),
            route: Vec::new(),
        };
        rt.ledger.register(0, SetKind::Replica);
        rt.in_service.insert(0, member(0));
        rt.in_service.insert(1, member(1));
        rt.handle_deliver(0);
        assert_eq!(rt.resil_stats.duplicates_cancelled_inflight, 1);
        assert!(
            rt.in_service.is_empty(),
            "losing copy is cancelled mid-flight"
        );
        // The cancelled copy's stale delivery event is a no-op.
        rt.handle_deliver(1);
        assert_eq!(rt.resil_stats.duplicate_deliveries_suppressed, 0);
        assert!(rt.ledger.unsettled_sets().is_empty());
    }

    #[test]
    fn retry_backoff_never_parks_a_request_past_its_deadline() {
        let mut rt = runtime(small_config(500_000.0));
        rt.now_ps = 1_000_000;
        let req = |id: u64, deadline_ps: u64| ComputeRequest {
            id: RequestId(id),
            tenant: TenantId(0),
            primitive: Primitive::VectorDotProduct,
            operand_len: 64,
            arrival_ps: 0,
            deadline_ps,
        };
        // First backoff is 10 µs; this deadline is 5 µs out, so parking
        // would only wake the request to expire. It must go terminal
        // now (no fallback configured ⇒ explicit shed).
        rt.requeue_or_fallback(req(1, rt.now_ps + 5_000_000));
        assert!(rt.parked.is_empty(), "hopeless retry must not park");
        // A deadline past the backoff parks as before.
        rt.requeue_or_fallback(req(2, rt.now_ps + 50_000_000));
        assert_eq!(rt.parked.len(), 1);
        // Deadline-free requests are unaffected by the guard.
        rt.requeue_or_fallback(req(3, u64::MAX));
        assert_eq!(rt.parked.len(), 2);
    }

    #[test]
    fn tree_topology_degrades_to_serialized_same_path_replication() {
        // Line 0 — 1 — 2: site 2 sits behind site 1's span, so only one
        // disjoint route exists. Replica sets must still form —
        // serialized onto the one path — and be announced as such.
        let mut topo = Topology::line(3, 10.0);
        let _ = &mut topo;
        let plan = ofpc_resil::MultipathPlan::plan(&topo, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(plan.diversity(), 1);
        let sites = vec![
            SiteSpec {
                node: NodeId(1),
                slots: 2,
                access_ps: 100_000,
            },
            SiteSpec {
                node: NodeId(2),
                slots: 2,
                access_ps: 200_000,
            },
        ];
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        let (report, resil) = ServeRuntime::new(small_config(200_000.0), model, sites)
            .with_redundancy(&[RedundancyMode::Replica, RedundancyMode::Replica], plan)
            .run_with_resil();
        assert!(
            resil.serialized_fallback_sets > 0,
            "degradation is declared"
        );
        assert_eq!(resil.serialized_fallback_sets, resil.replica_sets);
        assert_eq!(report.arrivals, report.completed);
        assert_eq!(resil.unsettled_sets, 0);
    }

    #[test]
    fn no_usable_path_downgrades_to_declared_unprotected() {
        let (sites, plan) = star_plant(1);
        let only_link = plan.routes[0].route.links[0];
        let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
        // The sole span is dark from before the first arrival until
        // 300 µs: every protected batch formed in that window has no
        // usable path and must run declared-unprotected instead of
        // stranding.
        let (report, resil) = ServeRuntime::new(small_config(500_000.0), model, sites)
            .with_redundancy(&[RedundancyMode::Replica, RedundancyMode::Replica], plan)
            .with_storm(&storm_cut(only_link, 0, 300_000_000))
            .run_with_resil();
        assert!(resil.unprotected_downgrades > 0);
        assert!(resil.replica_sets > 0, "protection resumes after splice");
        assert_eq!(
            report.arrivals,
            report.completed + report.shed + report.unfinished
        );
    }

    #[test]
    fn same_seed_same_storm_same_resil_summary() {
        let build = || {
            let (sites, plan) = star_plant(3);
            let cut = plan.routes[2].route.links[0];
            let model = ServiceModel::from_transponder(&ComputeTransponderConfig::ideal(), 4);
            let (report, resil) = ServeRuntime::new(small_config(500_000.0), model, sites)
                .with_redundancy(
                    &[
                        RedundancyMode::Replica,
                        RedundancyMode::XorParity { data_groups: 3 },
                    ],
                    plan,
                )
                .with_storm(&storm_cut(cut, 600_000_000, 1_100_000_000))
                .run_with_resil();
            (
                serde_json::to_string_pretty(&report).unwrap(),
                serde_json::to_string_pretty(&resil).unwrap(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn same_seed_same_fault_plan_same_report() {
        let build = || {
            runtime(small_config(500_000.0))
                .with_engine_faults(&outage(700_000_000))
                .with_digital_fallback(ofpc_apps::digital::ComputeModel::edge_soc())
                .with_retry_policy(RetryPolicy::default())
                .run()
        };
        assert_eq!(
            serde_json::to_string_pretty(&build()).unwrap(),
            serde_json::to_string_pretty(&build()).unwrap()
        );
    }

    #[test]
    fn backoff_caps_and_grows() {
        let r = RetryPolicy {
            base_ps: 100,
            max_backoff_ps: 1_000,
            max_retries: 8,
        };
        assert_eq!(r.backoff_ps(0), 100);
        assert_eq!(r.backoff_ps(1), 200);
        assert_eq!(r.backoff_ps(2), 400);
        assert_eq!(r.backoff_ps(5), 1_000, "capped");
        assert_eq!(r.backoff_ps(63), 1_000, "shift-safe far past the cap");
    }

    #[test]
    fn verification_sampling_runs_the_real_engine() {
        let mut cfg = small_config(100_000.0);
        cfg.verify_every = 4;
        // Keep verification vectors small: the analog engine's absolute
        // error grows with vector length.
        for t in &mut cfg.tenants {
            t.operand_len = 64;
        }
        let report = runtime(cfg).run();
        assert!(report.verified_samples > 0);
        // The realistic photonic engine tracks the digital result.
        assert!(
            report.verify_mean_abs_error < 1.0,
            "error {}",
            report.verify_mean_abs_error
        );
    }
}
