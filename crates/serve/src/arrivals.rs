//! Open-loop arrival generators.
//!
//! The serving experiments need traffic that does not slow down when the
//! system saturates (closed-loop harnesses hide the saturation knee).
//! Two processes cover the paper's "N users share one wavelength"
//! question: memoryless Poisson, and a two-state Markov-modulated Poisson
//! process (MMPP-2) for bursty tenants — the standard minimal model of
//! ON/OFF burstiness in serving literature.
//!
//! All draws come from a [`SimRng`] stream derived per tenant, so adding
//! a tenant never perturbs another tenant's arrival times.

use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// Picoseconds per second (the runtime's clock unit).
pub const PS_PER_SEC: f64 = 1e12;

/// Arrival process specification (serializable for experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Memoryless arrivals at `rate_rps` requests/second.
    Poisson { rate_rps: f64 },
    /// Two-state MMPP: exponentially distributed dwell in a calm and a
    /// burst state, each with its own Poisson rate.
    Mmpp {
        calm_rps: f64,
        burst_rps: f64,
        /// Mean dwell time in the calm state, seconds.
        mean_calm_s: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_s: f64,
    },
}

impl ArrivalSpec {
    /// Long-run mean arrival rate, requests/second.
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_rps } => rate_rps,
            ArrivalSpec::Mmpp {
                calm_rps,
                burst_rps,
                mean_calm_s,
                mean_burst_s,
            } => {
                let total = mean_calm_s + mean_burst_s;
                (calm_rps * mean_calm_s + burst_rps * mean_burst_s) / total
            }
        }
    }

    /// Scale the process's rate(s) by `factor` (load sweeps).
    pub fn scaled(&self, factor: f64) -> ArrivalSpec {
        match *self {
            ArrivalSpec::Poisson { rate_rps } => ArrivalSpec::Poisson {
                rate_rps: rate_rps * factor,
            },
            ArrivalSpec::Mmpp {
                calm_rps,
                burst_rps,
                mean_calm_s,
                mean_burst_s,
            } => ArrivalSpec::Mmpp {
                calm_rps: calm_rps * factor,
                burst_rps: burst_rps * factor,
                mean_calm_s,
                mean_burst_s,
            },
        }
    }
}

/// A running arrival process: yields successive absolute arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: ArrivalSpec,
    rng: SimRng,
    /// Absolute time of the last arrival, ps.
    now_ps: u64,
    /// MMPP state: currently bursting, and when the state flips next.
    bursting: bool,
    state_flip_ps: u64,
}

impl ArrivalProcess {
    pub fn new(spec: ArrivalSpec, mut rng: SimRng) -> Self {
        let (bursting, flip) = match spec {
            ArrivalSpec::Poisson { .. } => (false, u64::MAX),
            ArrivalSpec::Mmpp { mean_calm_s, .. } => {
                let dwell = rng.exponential(1.0 / mean_calm_s);
                (false, (dwell * PS_PER_SEC) as u64)
            }
        };
        ArrivalProcess {
            spec,
            rng,
            now_ps: 0,
            bursting,
            state_flip_ps: flip,
        }
    }

    fn current_rate_rps(&self) -> f64 {
        match self.spec {
            ArrivalSpec::Poisson { rate_rps } => rate_rps,
            ArrivalSpec::Mmpp {
                calm_rps,
                burst_rps,
                ..
            } => {
                if self.bursting {
                    burst_rps
                } else {
                    calm_rps
                }
            }
        }
    }

    /// Advance the MMPP state machine across `t` if needed.
    fn advance_state_to(&mut self, t_ps: u64) {
        let ArrivalSpec::Mmpp {
            mean_calm_s,
            mean_burst_s,
            ..
        } = self.spec
        else {
            return;
        };
        while t_ps >= self.state_flip_ps {
            self.bursting = !self.bursting;
            let mean_dwell = if self.bursting {
                mean_burst_s
            } else {
                mean_calm_s
            };
            let dwell_ps = (self.rng.exponential(1.0 / mean_dwell) * PS_PER_SEC) as u64;
            self.state_flip_ps = self.state_flip_ps.saturating_add(dwell_ps.max(1));
        }
    }

    /// Absolute time of the next arrival, ps. Monotonically increasing.
    pub fn next_arrival_ps(&mut self) -> u64 {
        loop {
            let rate = self.current_rate_rps();
            assert!(rate > 0.0, "arrival rate must be positive");
            let gap_s = self.rng.exponential(rate);
            let candidate = self.now_ps + ((gap_s * PS_PER_SEC) as u64).max(1);
            // If an MMPP state flip lands before the candidate arrival,
            // the memorylessness of the exponential lets us restart the
            // draw from the flip instant at the new rate.
            if candidate > self.state_flip_ps {
                self.now_ps = self.state_flip_ps;
                self.advance_state_to(self.state_flip_ps);
                continue;
            }
            self.now_ps = candidate;
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = ArrivalProcess::new(
            ArrivalSpec::Poisson { rate_rps: 1000.0 },
            SimRng::seed_from_u64(1),
        );
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = p.next_arrival_ps();
        }
        let mean_gap_s = last as f64 / PS_PER_SEC / n as f64;
        assert!(
            (mean_gap_s - 1e-3).abs() < 5e-5,
            "mean gap {mean_gap_s} vs expected 1e-3"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let spec = ArrivalSpec::Mmpp {
            calm_rps: 100.0,
            burst_rps: 10_000.0,
            mean_calm_s: 0.01,
            mean_burst_s: 0.002,
        };
        let mut a = ArrivalProcess::new(spec, SimRng::seed_from_u64(7));
        let mut b = ArrivalProcess::new(spec, SimRng::seed_from_u64(7));
        let mut last = 0;
        for _ in 0..5_000 {
            let ta = a.next_arrival_ps();
            let tb = b.next_arrival_ps();
            assert_eq!(ta, tb);
            assert!(ta > last);
            last = ta;
        }
    }

    #[test]
    fn mmpp_long_run_rate_matches_mixture() {
        let spec = ArrivalSpec::Mmpp {
            calm_rps: 500.0,
            burst_rps: 5_000.0,
            mean_calm_s: 0.004,
            mean_burst_s: 0.001,
        };
        let mut p = ArrivalProcess::new(spec, SimRng::seed_from_u64(3));
        let n = 50_000;
        let mut last = 0;
        for _ in 0..n {
            last = p.next_arrival_ps();
        }
        let measured_rps = n as f64 / (last as f64 / PS_PER_SEC);
        let expected = spec.mean_rate_rps();
        assert!(
            (measured_rps - expected).abs() / expected < 0.1,
            "measured {measured_rps} expected {expected}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for MMPP with distinct rates.
        let cv2 = |spec: ArrivalSpec, seed: u64| {
            let mut p = ArrivalProcess::new(spec, SimRng::seed_from_u64(seed));
            let mut gaps = Vec::new();
            let mut prev = 0u64;
            for _ in 0..30_000 {
                let t = p.next_arrival_ps();
                gaps.push((t - prev) as f64);
                prev = t;
            }
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(ArrivalSpec::Poisson { rate_rps: 2_000.0 }, 11);
        let mmpp = cv2(
            ArrivalSpec::Mmpp {
                calm_rps: 200.0,
                burst_rps: 20_000.0,
                mean_calm_s: 0.005,
                mean_burst_s: 0.0005,
            },
            11,
        );
        assert!((poisson - 1.0).abs() < 0.15, "poisson cv2 {poisson}");
        assert!(mmpp > 2.0, "mmpp cv2 {mmpp}");
    }

    #[test]
    fn scaling_scales_the_mean_rate() {
        let spec = ArrivalSpec::Poisson { rate_rps: 100.0 };
        assert_eq!(spec.scaled(2.5).mean_rate_rps(), 250.0);
    }
}
