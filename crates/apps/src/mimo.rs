//! Massive MIMO baseband processing (Table 1, class C2).
//!
//! Uplink detection for an `n_rx × n_tx` antenna array: received symbols
//! `y = H·x + n` are detected by a linear equalizer `x̂ = W·y` (matched
//! filter or zero-forcing), followed by symbol slicing. The equalizer is
//! computed offline (digital — it changes at channel-coherence time,
//! not per symbol); the per-symbol matrix-vector multiply — the
//! compute-hungry part Table 1 points at — runs on the photonic P1
//! engine (P1 + P3 in the table; slicing is the nonlinear step).
//!
//! We implement QPSK, a Rayleigh-ish Gaussian channel, Gauss–Jordan
//! matrix inversion from scratch for zero-forcing, and SER measurement
//! digital vs photonic.

use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_photonics::SimRng;

/// A real-valued matrix (row-major).
pub type Mat = Vec<Vec<f64>>;

/// QPSK symbol alphabet on the real/imag grid: each complex symbol is
/// two real dimensions in `{−1/√2, +1/√2}`. We work in the real-valued
/// equivalent model (dimension doubled), standard for MIMO detection.
pub const QPSK_AMP: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Draw a random channel `H` (real-equivalent, `2·n_rx × 2·n_tx`) with
/// i.i.d. Gaussian entries ~N(0, 1/(2·n_tx)).
pub fn random_channel(n_rx: usize, n_tx: usize, rng: &mut SimRng) -> Mat {
    assert!(n_rx >= n_tx && n_tx >= 1, "need n_rx ≥ n_tx ≥ 1");
    let (rows, cols) = (2 * n_rx, 2 * n_tx);
    let sigma = (1.0 / (2.0 * n_tx as f64)).sqrt();
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.normal(0.0, sigma)).collect())
        .collect()
}

/// Random QPSK bit vector → real-equivalent symbol vector of length
/// `2·n_tx` (bits map to ±QPSK_AMP).
pub fn random_symbols(n_tx: usize, rng: &mut SimRng) -> (Vec<bool>, Vec<f64>) {
    let bits: Vec<bool> = (0..2 * n_tx).map(|_| rng.chance(0.5)).collect();
    let symbols = bits
        .iter()
        .map(|&b| if b { QPSK_AMP } else { -QPSK_AMP })
        .collect();
    (bits, symbols)
}

/// `y = H·x + noise` with per-dimension noise sigma from `snr_db`
/// (signal power normalized to 1).
pub fn transmit(h: &Mat, x: &[f64], snr_db: f64, rng: &mut SimRng) -> Vec<f64> {
    let sigma = (10f64.powf(-snr_db / 10.0) / 2.0).sqrt();
    h.iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + rng.normal(0.0, sigma))
        .collect()
}

/// Matrix transpose.
pub fn transpose(m: &Mat) -> Mat {
    let rows = m.len();
    let cols = m[0].len();
    (0..cols)
        .map(|j| (0..rows).map(|i| m[i][j]).collect())
        .collect()
}

/// Matrix product.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let n = a.len();
    let k = b.len();
    let m = b[0].len();
    assert!(a.iter().all(|r| r.len() == k), "shape mismatch");
    (0..n)
        .map(|i| {
            (0..m)
                .map(|j| (0..k).map(|p| a[i][p] * b[p][j]).sum())
                .collect()
        })
        .collect()
}

/// Gauss–Jordan inverse. Panics on singular input (pivot < 1e-12).
#[allow(clippy::needless_range_loop)] // elimination reads clearest with indices
pub fn invert(m: &Mat) -> Mat {
    let n = m.len();
    assert!(m.iter().all(|r| r.len() == n), "matrix must be square");
    // Augment with identity.
    let mut a: Vec<Vec<f64>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        assert!(a[pivot_row][col].abs() > 1e-12, "singular matrix");
        a.swap(col, pivot_row);
        let pivot = a[col][col];
        for v in &mut a[col] {
            *v /= pivot;
        }
        for row in 0..n {
            if row != col && a[row][col].abs() > 0.0 {
                let f = a[row][col];
                for j in 0..2 * n {
                    a[row][j] -= f * a[col][j];
                }
            }
        }
    }
    a.into_iter().map(|row| row[n..].to_vec()).collect()
}

/// The zero-forcing equalizer `W = (HᵀH)⁻¹ Hᵀ` (computed offline).
pub fn zero_forcing(h: &Mat) -> Mat {
    let ht = transpose(h);
    let gram = matmul(&ht, h);
    matmul(&invert(&gram), &ht)
}

/// Slice a real-equivalent estimate back to bits.
pub fn slice_bits(x_hat: &[f64]) -> Vec<bool> {
    x_hat.iter().map(|&v| v > 0.0).collect()
}

/// The per-symbol detector backend.
pub enum Detector<'a> {
    Digital,
    Photonic(&'a mut PhotonicMatVec),
}

impl Detector<'_> {
    /// Apply the equalizer: `x̂ = W·y`. The photonic path normalizes
    /// inputs to the engine's `[-1, 1]` encoding range and restores the
    /// scale digitally (a single scalar per vector).
    pub fn equalize(&mut self, w: &Mat, y: &[f64]) -> Vec<f64> {
        match self {
            Detector::Digital => w
                .iter()
                .map(|row| row.iter().zip(y).map(|(a, b)| a * b).sum())
                .collect(),
            Detector::Photonic(engine) => {
                let y_peak = y.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-12);
                let w_peak = w
                    .iter()
                    .flatten()
                    .fold(0.0f64, |m, &v| m.max(v.abs()))
                    .max(1e-12);
                let y_n: Vec<f64> = y.iter().map(|&v| v / y_peak).collect();
                let w_n: Mat = w
                    .iter()
                    .map(|row| row.iter().map(|&v| v / w_peak).collect())
                    .collect();
                engine
                    .mat_vec_signed(&w_n, &y_n)
                    .into_iter()
                    .map(|v| v * y_peak * w_peak)
                    .collect()
            }
        }
    }
}

/// Measure symbol-error rate over `frames` QPSK vectors at `snr_db`.
pub fn measure_ser(
    n_rx: usize,
    n_tx: usize,
    snr_db: f64,
    frames: usize,
    detector: &mut Detector,
    rng: &mut SimRng,
) -> f64 {
    assert!(frames >= 1, "need at least one frame");
    let h = random_channel(n_rx, n_tx, rng);
    let w = zero_forcing(&h);
    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..frames {
        let (bits, x) = random_symbols(n_tx, rng);
        let y = transmit(&h, &x, snr_db, rng);
        let x_hat = detector.equalize(&w, &y);
        let got = slice_bits(&x_hat);
        errors += got.iter().zip(&bits).filter(|(a, b)| a != b).count();
        total += bits.len();
    }
    errors as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn invert_recovers_identity() {
        let m = vec![vec![4.0, 7.0], vec![2.0, 6.0]];
        let inv = invert(&m);
        let id = matmul(&m, &inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id[i][j] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_panics() {
        invert(&vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
    }

    #[test]
    fn zero_forcing_inverts_the_channel_noiselessly() {
        let mut rng = SimRng::seed_from_u64(0);
        let h = random_channel(8, 4, &mut rng);
        let w = zero_forcing(&h);
        let (_, x) = random_symbols(4, &mut rng);
        let y = transmit(&h, &x, 200.0, &mut rng); // effectively noiseless
        let mut det = Detector::Digital;
        let x_hat = det.equalize(&w, &y);
        for (a, b) in x_hat.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn high_snr_has_low_ser() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut det = Detector::Digital;
        let ser = measure_ser(8, 4, 25.0, 100, &mut det, &mut rng);
        assert!(ser < 0.01, "ser {ser}");
    }

    #[test]
    fn ser_falls_with_snr() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut det = Detector::Digital;
        let low = measure_ser(8, 4, 0.0, 150, &mut det, &mut rng);
        let mut rng2 = SimRng::seed_from_u64(2);
        let mut det2 = Detector::Digital;
        let high = measure_ser(8, 4, 15.0, 150, &mut det2, &mut rng2);
        assert!(high < low, "SER should fall with SNR: {high} vs {low}");
    }

    #[test]
    fn photonic_detector_tracks_digital() {
        let mut rng_d = SimRng::seed_from_u64(3);
        let mut det_d = Detector::Digital;
        let ser_digital = measure_ser(4, 2, 15.0, 60, &mut det_d, &mut rng_d);

        let mut rng_p = SimRng::seed_from_u64(3);
        let mut engine = PhotonicMatVec::ideal(4);
        let mut det_p = Detector::Photonic(&mut engine);
        let ser_photonic = measure_ser(4, 2, 15.0, 60, &mut det_p, &mut rng_p);
        assert!(
            ser_photonic <= ser_digital + 0.05,
            "photonic {ser_photonic} vs digital {ser_digital}"
        );
    }

    #[test]
    fn symbols_and_slicing_round_trip() {
        let mut rng = SimRng::seed_from_u64(4);
        let (bits, x) = random_symbols(8, &mut rng);
        assert_eq!(slice_bits(&x), bits);
        assert_eq!(x.len(), 16);
        assert!(x.iter().all(|&v| (v.abs() - QPSK_AMP).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "n_rx")]
    fn undersized_array_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        random_channel(2, 4, &mut rng);
    }
}
