//! Digital compute and placement baselines.
//!
//! The paper's §2.2 comparison constants made executable: compute models
//! (energy per MAC, sustained MAC rate, fixed invocation latency) for the
//! platforms Table 1 names as "current compute locations", and placement
//! models that turn a location into end-to-end request latency — a cloud
//! round trip pays fiber propagation both ways, an edge device pays
//! little propagation but computes slowly, in-network photonics computes
//! *during* propagation.

use ofpc_photonics::energy::constants;
use ofpc_photonics::units;
use serde::{Deserialize, Serialize};

/// A digital (or photonic) compute platform model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    pub name: String,
    /// Energy per 8-bit MAC, J.
    pub mac_energy_j: f64,
    /// Sustained MAC throughput, MAC/s.
    pub mac_rate_hz: f64,
    /// Fixed invocation overhead, s (kernel launch, NIC, queueing).
    pub fixed_latency_s: f64,
}

impl ComputeModel {
    /// TPU-class accelerator (§2.2: 7×10⁻¹⁴ J/MAC at ~1.05 GHz clock).
    pub fn tpu() -> Self {
        ComputeModel {
            name: "tpu".into(),
            mac_energy_j: constants::TPU_MAC_J,
            mac_rate_hz: constants::TPU_MAC_HZ,
            fixed_latency_s: 50e-6,
        }
    }

    /// GPU-class accelerator (§2.2: ~1.41 GHz clock; energy similar
    /// order to TPU per effective MAC).
    pub fn gpu() -> Self {
        ComputeModel {
            name: "gpu".into(),
            mac_energy_j: 1.5 * constants::TPU_MAC_J,
            mac_rate_hz: 15e12,
            fixed_latency_s: 30e-6,
        }
    }

    /// Server CPU.
    pub fn cpu() -> Self {
        ComputeModel {
            name: "cpu".into(),
            mac_energy_j: constants::CPU_MAC_J,
            mac_rate_hz: constants::CPU_MAC_HZ,
            fixed_latency_s: 5e-6,
        }
    }

    /// Edge-device SoC: an order slower and less efficient than a
    /// server CPU class for sustained MACs.
    pub fn edge_soc() -> Self {
        ComputeModel {
            name: "edge-soc".into(),
            mac_energy_j: 2.0 * constants::CPU_MAC_J,
            mac_rate_hz: 5e9,
            fixed_latency_s: 1e-6,
        }
    }

    /// Programmable switch ASIC ALUs: fast per-op but a tiny op budget
    /// per packet — the §1 "die already at capacity" constraint appears
    /// as `max_ops_per_packet` in [`SwitchBudget`].
    pub fn switch_asic() -> Self {
        ComputeModel {
            name: "switch-asic".into(),
            mac_energy_j: constants::SWITCH_ALU_OP_J,
            mac_rate_hz: 1e12,
            fixed_latency_s: 1e-7,
        }
    }

    /// The photonic engine (§2.2: 40 aJ/MAC; lane rate set by the
    /// modulator bandwidth).
    pub fn photonic() -> Self {
        ComputeModel {
            name: "photonic".into(),
            mac_energy_j: constants::PHOTONIC_MAC_J,
            mac_rate_hz: constants::PHOTONIC_LANE_HZ,
            fixed_latency_s: 5e-9,
        }
    }

    /// Time to execute `macs` multiply-accumulates, s.
    pub fn time_for_macs(&self, macs: u64) -> f64 {
        self.fixed_latency_s + macs as f64 / self.mac_rate_hz
    }

    /// Energy to execute `macs` multiply-accumulates, J.
    pub fn energy_for_macs(&self, macs: u64) -> f64 {
        macs as f64 * self.mac_energy_j
    }
}

/// The switch-ASIC op budget per packet (Taurus/Trio-class constraints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchBudget {
    pub max_ops_per_packet: u64,
}

impl Default for SwitchBudget {
    fn default() -> Self {
        // A handful of ALU stages × lanes: order 10² ops per packet.
        SwitchBudget {
            max_ops_per_packet: 256,
        }
    }
}

impl SwitchBudget {
    /// Whether an operation of `macs` MACs fits in the per-packet budget
    /// — the reason complex models can't run on router ASICs (§1).
    pub fn fits(&self, macs: u64) -> bool {
        macs <= self.max_ops_per_packet
    }
}

/// Where the computation happens, with its path geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Ship to a cloud DC `detour_km` of extra fiber away (each way),
    /// compute, ship onward/back.
    Cloud { detour_km: f64 },
    /// Compute on the end device before transmitting (no detour).
    EndDevice,
    /// Compute in-network while the packet traverses its normal path.
    OnFiber,
}

/// End-to-end request model: a request travels `path_km` of fiber from
/// source to destination and needs `macs` of computation somewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestModel {
    pub path_km: f64,
    pub macs: u64,
    /// Request + response bytes (serialization delay).
    pub bytes: usize,
    /// Line rate for serialization, bits/s.
    pub line_rate_bps: f64,
}

impl RequestModel {
    fn serialization_s(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.line_rate_bps
    }

    /// Total request latency under a placement/compute pairing, s.
    pub fn latency_s(&self, placement: &Placement, compute: &ComputeModel) -> f64 {
        let direct = units::fiber_delay_s(self.path_km) + self.serialization_s();
        match placement {
            Placement::Cloud { detour_km } => {
                // Source → cloud → destination: the detour adds fiber
                // both into and out of the DC.
                direct + 2.0 * units::fiber_delay_s(*detour_km) + compute.time_for_macs(self.macs)
            }
            Placement::EndDevice => direct + compute.time_for_macs(self.macs),
            Placement::OnFiber => {
                // Computation overlaps propagation; only the engine's
                // pipeline latency adds.
                direct + compute.fixed_latency_s + self.macs as f64 / compute.mac_rate_hz
            }
        }
    }

    /// Compute energy under a pairing, J (path transmission energy is
    /// common to all placements and excluded).
    pub fn compute_energy_j(&self, compute: &ComputeModel) -> f64 {
        compute.energy_for_macs(self.macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_energy_ratio_holds() {
        let tpu = ComputeModel::tpu();
        let phot = ComputeModel::photonic();
        let ratio = tpu.mac_energy_j / phot.mac_energy_j;
        assert!((ratio - 1750.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn time_and_energy_scale_with_macs() {
        let m = ComputeModel::cpu();
        assert!(m.time_for_macs(2_000) > m.time_for_macs(1_000));
        assert!((m.energy_for_macs(1_000) - 1_000.0 * m.mac_energy_j).abs() < 1e-18);
        assert_eq!(m.energy_for_macs(0), 0.0);
    }

    #[test]
    fn switch_budget_rejects_big_models() {
        let b = SwitchBudget::default();
        assert!(b.fits(100));
        assert!(!b.fits(1_000_000)); // a real DNN layer
    }

    #[test]
    fn on_fiber_beats_cloud_on_latency() {
        let req = RequestModel {
            path_km: 1500.0,
            macs: 1_000_000,
            bytes: 1_500,
            line_rate_bps: 100e9,
        };
        let cloud = req.latency_s(&Placement::Cloud { detour_km: 400.0 }, &ComputeModel::tpu());
        let on_fiber = req.latency_s(&Placement::OnFiber, &ComputeModel::photonic());
        assert!(
            on_fiber < cloud,
            "on-fiber {on_fiber} should beat cloud {cloud}"
        );
        // The win is the detour: ≥ 2×400 km of fiber ≈ 3.9 ms.
        assert!(cloud - on_fiber > 3.5e-3);
    }

    #[test]
    fn edge_is_latency_competitive_but_slow_for_big_models() {
        let small = RequestModel {
            path_km: 1500.0,
            macs: 10_000,
            bytes: 200,
            line_rate_bps: 100e9,
        };
        let big = RequestModel {
            macs: 500_000_000,
            ..small.clone()
        };
        let edge_small = small.latency_s(&Placement::EndDevice, &ComputeModel::edge_soc());
        let cloud_small =
            small.latency_s(&Placement::Cloud { detour_km: 400.0 }, &ComputeModel::tpu());
        assert!(edge_small < cloud_small, "small models favor the edge");
        let edge_big = big.latency_s(&Placement::EndDevice, &ComputeModel::edge_soc());
        let cloud_big = big.latency_s(&Placement::Cloud { detour_km: 400.0 }, &ComputeModel::tpu());
        assert!(cloud_big < edge_big, "big models overwhelm the edge SoC");
    }

    #[test]
    fn photonic_energy_dominates_all_baselines() {
        let req = RequestModel {
            path_km: 1000.0,
            macs: 1_000_000,
            bytes: 1_000,
            line_rate_bps: 100e9,
        };
        let phot = req.compute_energy_j(&ComputeModel::photonic());
        for model in [
            ComputeModel::tpu(),
            ComputeModel::gpu(),
            ComputeModel::cpu(),
            ComputeModel::edge_soc(),
            ComputeModel::switch_asic(),
        ] {
            assert!(
                req.compute_energy_j(&model) > 10.0 * phot,
                "{} should cost ≫ photonic",
                model.name
            );
        }
    }

    #[test]
    fn on_fiber_latency_is_propagation_dominated() {
        let req = RequestModel {
            path_km: 1500.0,
            macs: 4_096,
            bytes: 600,
            line_rate_bps: 100e9,
        };
        let lat = req.latency_s(&Placement::OnFiber, &ComputeModel::photonic());
        let prop = units::fiber_delay_s(1500.0);
        assert!((lat - prop) / prop < 0.01, "overhead {}", lat - prop);
    }
}
