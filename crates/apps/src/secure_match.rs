//! Pattern matching on *encrypted* optical data (§5 "Security" / §6
//! "computing on the encrypted optical data").
//!
//! The paper defers security but notes that on-fiber computing "allows
//! computing in the physical layer in the optical format without the
//! need to read the packet data" and could combine with encrypted
//! computation. This module demonstrates the concrete mechanism that
//! falls out of the phase-domain physics:
//!
//! **Phase-XOR encryption commutes with interference matching.** With
//! BPSK encoding, encrypting bit `dᵢ` with key bit `kᵢ` is a phase
//! addition; the P2 matcher's difference port measures the pairwise
//! phase *difference* between data and pattern arms. If the rule owner
//! encrypts the pattern with the same keystream the sender used
//! (`d⊕k` vs `p⊕k`), every per-symbol difference is unchanged:
//! `(d⊕k) ⊕ (p⊕k) = d ⊕ p`. The transponder therefore computes the
//! exact Hamming distance **without ever holding the key or seeing the
//! plaintext** — and anyone matching against an *unencrypted* pattern
//! learns nothing (distance ≈ n/2, indistinguishable from random).

use crate::encryption::Keystream;
use ofpc_engine::matcher::{MatcherConfig, PatternMatcher};
use ofpc_photonics::SimRng;

/// XOR a bit vector with the keystream derived from `key`.
pub fn encrypt_bits(bits: &[bool], key: u64) -> Vec<bool> {
    let mut ks = Keystream::from_key(key);
    let pad = ks.bits(bits.len());
    bits.iter().zip(pad).map(|(&b, k)| b ^ k).collect()
}

/// A secure matching deployment: the network-side matcher plus the
/// encrypted rule it was configured with. The key never reaches the
/// matcher — only the ciphertext pattern does.
#[derive(Debug)]
pub struct SecureMatcher {
    matcher: PatternMatcher,
    /// The encrypted pattern installed by the rule owner.
    encrypted_pattern: Vec<bool>,
}

impl SecureMatcher {
    /// The *rule owner* (who shares `key` with the sender, not with the
    /// network) encrypts the plaintext pattern and installs only the
    /// ciphertext.
    pub fn install(
        config: MatcherConfig,
        plaintext_pattern: &[bool],
        key: u64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!plaintext_pattern.is_empty(), "empty pattern");
        let mut matcher = PatternMatcher::new(config, rng);
        matcher.calibrate(128);
        SecureMatcher {
            matcher,
            encrypted_pattern: encrypt_bits(plaintext_pattern, key),
        }
    }

    pub fn ideal(plaintext_pattern: &[bool], key: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        SecureMatcher::install(MatcherConfig::ideal(), plaintext_pattern, key, &mut rng)
    }

    /// Match ciphertext data (as it arrives on the fiber) against the
    /// installed ciphertext rule. Returns the *plaintext* Hamming
    /// distance — computed without decryption.
    pub fn match_ciphertext(&mut self, encrypted_data: &[bool]) -> f64 {
        self.matcher
            .match_block(encrypted_data, &self.encrypted_pattern)
            .distance_estimate
    }

    /// What an adversary (or a matcher holding only a *plaintext* rule)
    /// would measure against the ciphertext.
    pub fn match_ciphertext_against_plaintext_rule(
        &mut self,
        encrypted_data: &[bool],
        plaintext_pattern: &[bool],
    ) -> f64 {
        self.matcher
            .match_block(encrypted_data, plaintext_pattern)
            .distance_estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn xor_round_trips() {
        let data = bits("1011001011110000");
        let enc = encrypt_bits(&data, 99);
        assert_ne!(enc, data, "ciphertext differs from plaintext");
        assert_eq!(encrypt_bits(&enc, 99), data, "same key decrypts");
    }

    #[test]
    fn encrypted_match_recovers_plaintext_distance() {
        let key = 0xC0FFEE;
        let pattern = bits("10110010111100001011001011110000");
        // Data differs from the pattern in exactly 3 positions.
        let mut data = pattern.clone();
        for &i in &[2usize, 13, 29] {
            data[i] = !data[i];
        }
        let mut sm = SecureMatcher::ideal(&pattern, key);
        let enc_data = encrypt_bits(&data, key);
        let dist = sm.match_ciphertext(&enc_data);
        assert!((dist - 3.0).abs() < 0.1, "distance {dist}");
    }

    #[test]
    fn exact_match_through_encryption() {
        let key = 7;
        let pattern = bits("1100101011110000");
        let mut sm = SecureMatcher::ideal(&pattern, key);
        let dist = sm.match_ciphertext(&encrypt_bits(&pattern, key));
        assert!(dist < 0.1, "distance {dist}");
    }

    #[test]
    fn wrong_key_looks_random() {
        let pattern = bits("11001010111100001100101011110000");
        let mut sm = SecureMatcher::ideal(&pattern, 1);
        // Sender used a different key: distance ≈ n/2, no information.
        let dist = sm.match_ciphertext(&encrypt_bits(&pattern, 2));
        let n = pattern.len() as f64;
        assert!(
            (dist - n / 2.0).abs() < n * 0.3,
            "distance {dist} should look random"
        );
    }

    #[test]
    fn plaintext_rule_learns_nothing_from_ciphertext() {
        // The security property: matching ciphertext against the
        // *plaintext* rule (i.e., a matcher without the rule owner's
        // cooperation) measures ≈ n/2 whether or not the data matched.
        let key = 0xDEAD;
        let pattern = bits("1011001011110000101100101111000010110010111100001011001011110000");
        let n = pattern.len() as f64;
        let mut sm = SecureMatcher::ideal(&pattern, key);
        let matching = encrypt_bits(&pattern, key);
        let mut non_matching = pattern.clone();
        for b in non_matching.iter_mut().take(8) {
            *b = !*b;
        }
        let non_matching = encrypt_bits(&non_matching, key);
        let d1 = sm.match_ciphertext_against_plaintext_rule(&matching, &pattern);
        let d2 = sm.match_ciphertext_against_plaintext_rule(&non_matching, &pattern);
        for d in [d1, d2] {
            assert!(
                (d - n / 2.0).abs() < n * 0.25,
                "plaintext-rule distance {d} leaks structure (n={n})"
            );
        }
        // While the encrypted rule still discriminates perfectly.
        assert!(sm.match_ciphertext(&matching) < 0.5);
        assert!(sm.match_ciphertext(&non_matching) > 7.0);
    }

    #[test]
    fn noisy_hardware_preserves_the_property() {
        let key = 42;
        let pattern: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let mut rng = SimRng::seed_from_u64(5);
        let mut sm = SecureMatcher::install(MatcherConfig::realistic(), &pattern, key, &mut rng);
        let enc = encrypt_bits(&pattern, key);
        let dist = sm.match_ciphertext(&enc);
        assert!(dist < 0.5, "noisy matched distance {dist}");
    }
}
