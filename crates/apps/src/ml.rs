//! Machine-learning inference (Table 1, class C1).
//!
//! The Fig.-1 "image recognition" application end-to-end: a synthetic
//! glyph-classification dataset, from-scratch MLP training (softmax +
//! SGD backprop), and photonic inference through the P1/P3 engine — with
//! the photonics-aware training loop the paper's §4 calls for ("new
//! algorithms to mitigate photonic noise during computation and achieve
//! high accuracy"): train against the *measured* activation transfer
//! curve at the deployment scale, so the analog engine executes the same
//! function it was trained with. Experiment E10 ablates exactly this.

use ofpc_engine::dnn::{argmax, interp_curve, Mlp, PhotonicDnn};
use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_engine::nonlinear::NonlinearUnit;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// A labelled image dataset (row-major pixels in `[0,1]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub images: Vec<Vec<f64>>,
    pub labels: Vec<usize>,
    pub side: usize,
    pub classes: usize,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.images.len()
    }

    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// Glyph classes of the synthetic dataset.
const GLYPHS: usize = 4;

/// Generate a synthetic glyph dataset: `n_per_class` examples of each of
/// four 8×8 glyphs (horizontal bar, vertical bar, main diagonal, cross),
/// with ±1-pixel position jitter and additive pixel noise. Deterministic
/// per seed; no external data needed (repro substitution for MNIST-class
/// workloads).
pub fn synthetic_glyphs(n_per_class: usize, noise: f64, rng: &mut SimRng) -> Dataset {
    let side = 8;
    let mut images = Vec::with_capacity(n_per_class * GLYPHS);
    let mut labels = Vec::with_capacity(n_per_class * GLYPHS);
    for class in 0..GLYPHS {
        for _ in 0..n_per_class {
            let jitter = rng.below(3) as i32 - 1;
            let mut img = vec![0.0f64; side * side];
            for i in 0..side {
                for j in 0..side {
                    let row_hit = i as i32 == (side as i32 / 2 + jitter);
                    let col_hit = j as i32 == (side as i32 / 2 + jitter);
                    let diag_hit = (i as i32 - j as i32 - jitter).abs() <= 0;
                    let lit = match class {
                        0 => row_hit,
                        1 => col_hit,
                        2 => diag_hit,
                        _ => row_hit || col_hit,
                    };
                    let base = if lit { 1.0 } else { 0.0 };
                    img[i * side + j] = (base + rng.normal(0.0, noise)).clamp(0.0, 1.0);
                }
            }
            images.push(img);
            labels.push(class);
        }
    }
    // Shuffle example order (deterministically) so SGD sees mixed classes.
    let mut idx: Vec<usize> = (0..images.len()).collect();
    rng.shuffle(&mut idx);
    Dataset {
        images: idx.iter().map(|&i| images[i].clone()).collect(),
        labels: idx.iter().map(|&i| labels[i]).collect(),
        side,
        classes: GLYPHS,
    }
}

/// The activation used during training.
#[derive(Debug, Clone)]
pub enum TrainActivation {
    /// Standard ReLU (photonics-unaware baseline).
    Relu,
    /// The measured photonic transfer curve, evaluated at `z / scale` —
    /// exactly the function `PhotonicDnn` executes at inference.
    ScaledCurve { curve: Vec<(f64, f64)>, scale: f64 },
}

impl TrainActivation {
    fn eval(&self, z: f64) -> f64 {
        match self {
            TrainActivation::Relu => z.max(0.0),
            TrainActivation::ScaledCurve { curve, scale } => {
                interp_curve(curve, (z / scale).clamp(0.0, 1.0))
            }
        }
    }

    /// Derivative (numeric secant for the measured curve).
    fn deriv(&self, z: f64) -> f64 {
        match self {
            TrainActivation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            TrainActivation::ScaledCurve { curve, scale } => {
                let h = 0.01 * scale;
                let secant = (self.eval_curve_at(curve, *scale, z + h)
                    - self.eval_curve_at(curve, *scale, z - h))
                    / (2.0 * h);
                // Floor the gradient below the knee (straight-through
                // style) so units in the curve's dead zone keep
                // learning; evaluation stays exact.
                secant.max(0.05)
            }
        }
    }

    fn eval_curve_at(&self, curve: &[(f64, f64)], scale: f64, z: f64) -> f64 {
        interp_curve(curve, (z / scale).clamp(0.0, 1.0))
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub learning_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
        }
    }
}

/// Train an MLP with softmax cross-entropy SGD. `sizes` must start at
/// `side²` and end at `classes`. Returns the trained network.
pub fn train_mlp(
    sizes: &[usize],
    data: &Dataset,
    cfg: TrainConfig,
    act: &TrainActivation,
    rng: &mut SimRng,
) -> Mlp {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_eq!(sizes[0], data.side * data.side, "input size mismatch");
    assert_eq!(*sizes.last().unwrap(), data.classes, "output size mismatch");
    let mut mlp = Mlp::new_random(sizes, rng);
    for _ in 0..cfg.epochs {
        for (x, &label) in data.images.iter().zip(&data.labels) {
            sgd_step(&mut mlp, x, label, cfg.learning_rate, act);
        }
    }
    mlp
}

/// One SGD step (forward with cached activations, softmax CE backward).
fn sgd_step(mlp: &mut Mlp, x: &[f64], label: usize, lr: f64, act: &TrainActivation) {
    let n_layers = mlp.layers.len();
    // Forward, caching inputs (a) and pre-activations (z) per layer.
    let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
    let mut zs: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
    for (li, layer) in mlp.layers.iter().enumerate() {
        let a = acts.last().expect("non-empty");
        let z: Vec<f64> = layer
            .weights
            .iter()
            .zip(&layer.bias)
            .map(|(row, b)| row.iter().zip(a).map(|(w, v)| w * v).sum::<f64>() + b)
            .collect();
        let out = if li + 1 < n_layers {
            z.iter().map(|&v| act.eval(v)).collect()
        } else {
            z.clone()
        };
        zs.push(z);
        acts.push(out);
    }
    // Softmax cross-entropy gradient at the output.
    let logits = acts.last().expect("non-empty");
    let max = logits.iter().cloned().fold(f64::MIN, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    let mut delta: Vec<f64> = exps.iter().map(|e| e / sum).collect();
    delta[label] -= 1.0;
    // Backward.
    for li in (0..n_layers).rev() {
        let a_in = acts[li].clone();
        let next_delta: Vec<f64> = if li > 0 {
            let layer = &mlp.layers[li];
            (0..layer.in_dim())
                .map(|j| {
                    let back: f64 = layer
                        .weights
                        .iter()
                        .zip(&delta)
                        .map(|(row, d)| row[j] * d)
                        .sum();
                    back * act.deriv(zs[li - 1][j])
                })
                .collect()
        } else {
            Vec::new()
        };
        let layer = &mut mlp.layers[li];
        for (row, (&d, b)) in layer
            .weights
            .iter_mut()
            .zip(delta.iter().zip(&mut layer.bias))
        {
            for (w, &a) in row.iter_mut().zip(&a_in) {
                *w -= lr * d * a;
            }
            *b -= lr * d;
        }
        delta = next_delta;
    }
}

/// Digital accuracy of `mlp` over `data` (ReLU hidden activations).
pub fn accuracy_digital(mlp: &Mlp, data: &Dataset) -> f64 {
    let correct = data
        .images
        .iter()
        .zip(&data.labels)
        .filter(|(x, &y)| mlp.predict_digital(x) == y)
        .count();
    correct as f64 / data.len() as f64
}

/// Digital accuracy under an arbitrary training activation (used to
/// evaluate curve-trained networks consistently).
pub fn accuracy_with_activation(mlp: &Mlp, data: &Dataset, act: &TrainActivation) -> f64 {
    let n_layers = mlp.layers.len();
    let correct = data
        .images
        .iter()
        .zip(&data.labels)
        .filter(|(x, &y)| {
            let mut a: Vec<f64> = (*x).clone();
            for (li, layer) in mlp.layers.iter().enumerate() {
                let z: Vec<f64> = layer
                    .weights
                    .iter()
                    .zip(&layer.bias)
                    .map(|(row, b)| row.iter().zip(&a).map(|(w, v)| w * v).sum::<f64>() + b)
                    .collect();
                a = if li + 1 < n_layers {
                    z.iter().map(|&v| act.eval(v)).collect()
                } else {
                    z
                };
            }
            argmax(&a) == y
        })
        .count();
    correct as f64 / data.len() as f64
}

/// Photonic accuracy of a bound network over `data`.
pub fn accuracy_photonic(pdnn: &mut PhotonicDnn, data: &Dataset) -> f64 {
    let correct = data
        .images
        .iter()
        .zip(&data.labels)
        .filter(|(x, &y)| pdnn.predict(x) == y)
        .count();
    correct as f64 / data.len() as f64
}

/// Build the photonics-aware deployment of a curve-trained network: the
/// engine runs with exactly the training scale.
pub fn deploy_curve_trained(mlp: &Mlp, scale: f64, lanes: usize, rng: &mut SimRng) -> PhotonicDnn {
    let mut engine = PhotonicMatVec::new(ofpc_engine::dot::DotUnitConfig::ideal(), lanes, rng);
    engine.calibrate(64);
    let act = NonlinearUnit::ideal();
    let hidden = mlp.layers.len().saturating_sub(1);
    PhotonicDnn::with_act_scales(mlp, engine, act, vec![scale; hidden])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data(rng: &mut SimRng) -> (Dataset, Dataset) {
        let train = synthetic_glyphs(30, 0.08, rng);
        let test = synthetic_glyphs(10, 0.08, rng);
        (train, test)
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let mut r1 = SimRng::seed_from_u64(1);
        let mut r2 = SimRng::seed_from_u64(1);
        let d1 = synthetic_glyphs(5, 0.1, &mut r1);
        let d2 = synthetic_glyphs(5, 0.1, &mut r2);
        assert_eq!(d1.images, d2.images);
        assert_eq!(d1.len(), 20);
        assert_eq!(d1.classes, 4);
        assert!(d1
            .images
            .iter()
            .flatten()
            .all(|&p| (0.0..=1.0).contains(&p)));
        // All four classes present.
        let mut seen = [false; 4];
        for &l in &d1.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn relu_training_learns_the_glyphs() {
        let mut rng = SimRng::seed_from_u64(2);
        let (train, test) = small_data(&mut rng);
        let mlp = train_mlp(
            &[64, 16, 4],
            &train,
            TrainConfig::default(),
            &TrainActivation::Relu,
            &mut rng,
        );
        let acc = accuracy_digital(&mlp, &test);
        assert!(acc >= 0.9, "test accuracy {acc}");
    }

    #[test]
    fn curve_training_learns_too() {
        let mut rng = SimRng::seed_from_u64(3);
        let (train, test) = small_data(&mut rng);
        let curve = NonlinearUnit::ideal().transfer_curve(64);
        let act = TrainActivation::ScaledCurve { curve, scale: 4.0 };
        let mlp = train_mlp(&[64, 16, 4], &train, TrainConfig::default(), &act, &mut rng);
        let acc = accuracy_with_activation(&mlp, &test, &act);
        assert!(acc >= 0.85, "curve-trained accuracy {acc}");
    }

    #[test]
    fn photonic_inference_of_curve_trained_net_matches_training_accuracy() {
        // The §4 noise-mitigation claim in miniature: train against the
        // measured activation at a fixed scale, deploy at that scale,
        // and photonic accuracy tracks digital accuracy.
        let mut rng = SimRng::seed_from_u64(4);
        let (train, test) = small_data(&mut rng);
        let curve = NonlinearUnit::ideal().transfer_curve(64);
        let scale = 4.0;
        let act = TrainActivation::ScaledCurve {
            curve: curve.clone(),
            scale,
        };
        let mlp = train_mlp(&[64, 16, 4], &train, TrainConfig::default(), &act, &mut rng);
        let digital = accuracy_with_activation(&mlp, &test, &act);
        let mut pdnn = deploy_curve_trained(&mlp, scale, 4, &mut rng);
        let photonic = accuracy_photonic(&mut pdnn, &test);
        assert!(
            photonic >= digital - 0.1,
            "photonic {photonic} vs digital {digital}"
        );
        assert!(photonic >= 0.75, "photonic accuracy {photonic}");
    }

    #[test]
    fn training_activations_derivatives_are_sane() {
        let relu = TrainActivation::Relu;
        assert_eq!(relu.eval(-1.0), 0.0);
        assert_eq!(relu.eval(2.0), 2.0);
        assert_eq!(relu.deriv(1.0), 1.0);
        assert_eq!(relu.deriv(-1.0), 0.0);
        let curve = vec![(0.0, 0.0), (1.0, 1.0)];
        let sc = TrainActivation::ScaledCurve { curve, scale: 2.0 };
        // Linear curve at scale 2: f(z) = z/2 on [0,2].
        assert!((sc.eval(1.0) - 0.5).abs() < 1e-9);
        assert!((sc.deriv(1.0) - 0.5).abs() < 1e-3);
        // Saturated region keeps only the training-time gradient floor.
        assert!((sc.deriv(5.0) - 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_rejects_empty_data() {
        let mut rng = SimRng::seed_from_u64(0);
        let empty = Dataset {
            images: vec![],
            labels: vec![],
            side: 8,
            classes: 4,
        };
        train_mlp(
            &[64, 4, 4],
            &empty,
            TrainConfig::default(),
            &TrainActivation::Relu,
            &mut rng,
        );
    }
}
