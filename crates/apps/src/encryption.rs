//! Data encryption on fiber (Table 1, class C2).
//!
//! Stream-cipher encryption executed in the optical phase domain: with
//! BPSK bit encoding (phases 0/π), XOR-ing a key bit into a data bit *is*
//! a π phase shift — addition of phases modulo 2π. A single phase
//! modulator driven by the keystream therefore encrypts the passing
//! light ("photonic encryption hardware"); the symmetric modulator at
//! the receiving transponder decrypts. No per-bit DAC/ADC is involved.
//!
//! The keystream comes from a from-scratch xoshiro-style generator keyed
//! by a shared secret (a real deployment would run a standardized stream
//! cipher; the network-level mechanics are identical). The digital
//! baseline charges CPU energy per encrypted byte.

use ofpc_photonics::laser::{Laser, LaserConfig};
use ofpc_photonics::modulator::{PhaseModulator, PhaseModulatorConfig};
use ofpc_photonics::signal::AnalogWaveform;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// Keystream generator (xoshiro256**-style; NOT a vetted cipher — a
/// stand-in with the right interface and statistical behavior).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Keystream {
    s: [u64; 4],
}

impl Keystream {
    pub fn from_key(key: u64) -> Self {
        // SplitMix64 expansion of the key into the state.
        let mut z = key;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = x ^ (x >> 31);
        }
        Keystream { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next `n` keystream bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let word = self.next_u64();
            for i in 0..64 {
                if out.len() == n {
                    break;
                }
                out.push((word >> i) & 1 == 1);
            }
        }
        out
    }

    /// Next `n` keystream bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let word = self.next_u64();
            for i in 0..8 {
                if out.len() == n {
                    break;
                }
                out.push((word >> (8 * i)) as u8);
            }
        }
        out
    }
}

/// Digital XOR stream cipher baseline with a CPU energy meter.
#[derive(Debug, Clone)]
pub struct DigitalCipher {
    key: u64,
    pub bytes_processed: u64,
    /// CPU energy per byte (AES-class software: order 10 pJ/byte on
    /// modern cores with AES-NI; higher on edge devices).
    pub energy_per_byte_j: f64,
}

impl DigitalCipher {
    pub fn new(key: u64) -> Self {
        DigitalCipher {
            key,
            bytes_processed: 0,
            energy_per_byte_j: 20e-12,
        }
    }

    /// Encrypt (or decrypt — XOR is symmetric) a buffer.
    pub fn process(&mut self, data: &[u8]) -> Vec<u8> {
        let mut ks = Keystream::from_key(self.key);
        let pad = ks.bytes(data.len());
        self.bytes_processed += data.len() as u64;
        data.iter().zip(pad).map(|(d, k)| d ^ k).collect()
    }

    pub fn energy_j(&self) -> f64 {
        self.bytes_processed as f64 * self.energy_per_byte_j
    }
}

/// The photonic phase-domain encryptor: BPSK data light through one
/// phase modulator driven by the keystream.
#[derive(Debug)]
pub struct PhotonicCipher {
    key: u64,
    laser: Laser,
    pm: PhaseModulator,
    sample_rate_hz: f64,
    pub bits_processed: u64,
}

impl PhotonicCipher {
    pub fn new(key: u64, rng: &mut SimRng) -> Self {
        PhotonicCipher {
            key,
            laser: Laser::new(
                LaserConfig {
                    rin_db_hz: f64::NEG_INFINITY,
                    linewidth_hz: 0.0,
                    ..LaserConfig::default()
                },
                rng.derive("cipher-laser"),
            ),
            // Ideal optics (exact phases) but realistic drive energy, so
            // the energy comparison against the CPU baseline is honest.
            pm: PhaseModulator::new(PhaseModulatorConfig {
                insertion_loss_db: 0.0,
                bandwidth_hz: 0.0,
                ..PhaseModulatorConfig::default()
            }),
            sample_rate_hz: 32e9,
            bits_processed: 0,
        }
    }

    /// Encrypt data bits: BPSK-encode them onto light, then add the key
    /// phase. Returns the per-bit *phase* of the output light (what a
    /// coherent receiver reads), demonstrating the ciphertext is the
    /// XOR.
    pub fn encrypt_bits(&mut self, data: &[bool]) -> Vec<f64> {
        assert!(!data.is_empty(), "nothing to encrypt");
        let n = data.len();
        let light = self.laser.emit(n, self.sample_rate_hz);
        // Stage 1: BPSK data encoding (this is the transponder's normal
        // modulator in a coherent system).
        let data_drive = AnalogWaveform::new(
            data.iter()
                .map(|&b| {
                    self.pm
                        .drive_for_phase(if b { std::f64::consts::PI } else { 0.0 })
                })
                .collect(),
            self.sample_rate_hz,
        );
        let encoded = self.pm.modulate(&light, &data_drive);
        // Stage 2: the key phase — the actual encryption device.
        let mut ks = Keystream::from_key(self.key);
        let key_bits = ks.bits(n);
        let key_drive = AnalogWaveform::new(
            key_bits
                .iter()
                .map(|&b| {
                    self.pm
                        .drive_for_phase(if b { std::f64::consts::PI } else { 0.0 })
                })
                .collect(),
            self.sample_rate_hz,
        );
        let cipher = self.pm.modulate(&encoded, &key_drive);
        self.bits_processed += n as u64;
        cipher.samples.iter().map(|s| s.arg()).collect()
    }

    /// Decrypt: apply the key phase again (π + π = 2π ≡ 0) and slice.
    pub fn decrypt_phases(&mut self, phases: &[f64]) -> Vec<bool> {
        let mut ks = Keystream::from_key(self.key);
        let key_bits = ks.bits(phases.len());
        phases
            .iter()
            .zip(key_bits)
            .map(|(&ph, k)| {
                let ph = ph + if k { std::f64::consts::PI } else { 0.0 };
                // Phase near π (mod 2π) = bit 1.
                let wrapped =
                    (ph % std::f64::consts::TAU + std::f64::consts::TAU) % std::f64::consts::TAU;
                (wrapped - std::f64::consts::PI).abs() < std::f64::consts::FRAC_PI_2
            })
            .collect()
    }

    /// Phase-modulator drive energy so far, J.
    pub fn energy_j(&self) -> f64 {
        self.pm.energy_consumed_j()
    }
}

/// Convert bytes to bits (MSB first) and back.
pub fn bits_of(bytes: &[u8]) -> Vec<bool> {
    ofpc_engine::correlator::bytes_to_bits(bytes)
}

pub fn bytes_of(bits: &[bool]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_deterministic_and_balanced() {
        let mut a = Keystream::from_key(42);
        let mut b = Keystream::from_key(42);
        assert_eq!(a.bits(256), b.bits(256));
        let mut c = Keystream::from_key(43);
        assert_ne!(a.bits(256), c.bits(256));
        // Roughly half ones.
        let mut k = Keystream::from_key(7);
        let ones = k.bits(10_000).iter().filter(|&&b| b).count();
        assert!((4_500..5_500).contains(&ones), "ones {ones}");
    }

    #[test]
    fn digital_cipher_round_trips() {
        let mut enc = DigitalCipher::new(99);
        let mut dec = DigitalCipher::new(99);
        let msg = b"secrets on fiber";
        let ct = enc.process(msg);
        assert_ne!(&ct[..], &msg[..]);
        assert_eq!(dec.process(&ct), msg.to_vec());
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let mut enc = DigitalCipher::new(1);
        let mut dec = DigitalCipher::new(2);
        let msg = b"attack at dawn!!";
        assert_ne!(dec.process(&enc.process(msg)), msg.to_vec());
    }

    #[test]
    fn photonic_cipher_round_trips() {
        let mut rng = SimRng::seed_from_u64(0);
        let mut alice = PhotonicCipher::new(0xDEADBEEF, &mut rng);
        let mut bob = PhotonicCipher::new(0xDEADBEEF, &mut rng);
        let msg = bits_of(b"photonic secret payload");
        let phases = alice.encrypt_bits(&msg);
        let got = bob.decrypt_phases(&phases);
        assert_eq!(got, msg);
        assert_eq!(bytes_of(&got), b"photonic secret payload".to_vec());
    }

    #[test]
    fn ciphertext_phase_hides_plaintext() {
        // The on-fiber phases must differ from the plain BPSK encoding
        // wherever the key bit is 1 (~half the positions).
        let mut rng = SimRng::seed_from_u64(1);
        let mut alice = PhotonicCipher::new(5, &mut rng);
        let msg = vec![false; 128]; // all-zeros plaintext
        let phases = alice.encrypt_bits(&msg);
        // Plain encoding of 0 is phase 0; count positions pushed to π.
        let flipped = phases
            .iter()
            .filter(|&&p| {
                let w = (p % std::f64::consts::TAU + std::f64::consts::TAU) % std::f64::consts::TAU;
                (w - std::f64::consts::PI).abs() < 0.1
            })
            .count();
        assert!((40..90).contains(&flipped), "flipped {flipped}/128");
    }

    #[test]
    fn wrong_key_photonic_decrypt_garbles() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut alice = PhotonicCipher::new(10, &mut rng);
        let mut eve = PhotonicCipher::new(11, &mut rng);
        let msg = bits_of(b"confidential");
        let phases = alice.encrypt_bits(&msg);
        let guess = eve.decrypt_phases(&phases);
        let wrong = guess.iter().zip(&msg).filter(|(a, b)| a != b).count();
        assert!(wrong > msg.len() / 4, "only {wrong} wrong bits");
    }

    #[test]
    fn photonic_energy_beats_cpu_baseline() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut phot = PhotonicCipher::new(1, &mut rng);
        let mut cpu = DigitalCipher::new(1);
        let msg = vec![0xA5u8; 1_000];
        let bits = bits_of(&msg);
        phot.encrypt_bits(&bits);
        cpu.process(&msg);
        // Phase-mod drive at tens of fJ/bit vs tens of pJ/byte on CPU.
        assert!(
            phot.energy_j() < cpu.energy_j(),
            "photonic {} vs cpu {}",
            phot.energy_j(),
            cpu.energy_j()
        );
    }

    #[test]
    fn bits_bytes_round_trip() {
        let b = vec![0x00, 0xFF, 0xA5, 0x5A];
        assert_eq!(bytes_of(&bits_of(&b)), b);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn ragged_bits_panic() {
        bytes_of(&[true, false, true]);
    }
}
