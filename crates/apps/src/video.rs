//! Video encoding (Table 1, class C1).
//!
//! An intra-frame transform encoder in the HEVC/JPEG lineage: 8×8 block
//! DCT-II, quantization, zigzag scan, run-length coding. The transform —
//! the MAC-heavy stage — runs on the photonic P1 engine as two
//! matrix-matrix passes (`D·B·Dᵀ` decomposed into matvecs), which is
//! exactly the "in-network encoding algorithm" Table 1 calls for. The
//! decoder and the PSNR meter are digital, as they would be at the
//! receiving end-host.

use ofpc_engine::mvm::PhotonicMatVec;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// Block size (8×8, the classic transform size).
pub const B: usize = 8;

/// The 8×8 DCT-II basis matrix `D` (orthonormal).
pub fn dct_matrix() -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; B]; B];
    for (k, row) in d.iter_mut().enumerate() {
        let alpha = if k == 0 {
            (1.0 / B as f64).sqrt()
        } else {
            (2.0 / B as f64).sqrt()
        };
        for (n, v) in row.iter_mut().enumerate() {
            *v = alpha
                * (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / (2.0 * B as f64))
                    .cos();
        }
    }
    d
}

/// Transpose a square matrix.
fn transpose(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    (0..n).map(|j| (0..n).map(|i| m[i][j]).collect()).collect()
}

/// JPEG-style luminance quantization table scaled by `quality ∈ (0, 1]`
/// (1 = finest).
pub fn quant_table(quality: f64) -> Vec<Vec<f64>> {
    assert!(quality > 0.0 && quality <= 1.0, "quality must be in (0,1]");
    const BASE: [[f64; 8]; 8] = [
        [16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0],
        [12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0],
        [14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0],
        [14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0],
        [18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0],
        [24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0],
        [49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0],
        [72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0],
    ];
    BASE.iter()
        .map(|row| {
            row.iter()
                .map(|&v| (v / quality / 255.0).max(1e-3))
                .collect()
        })
        .collect()
}

/// Zigzag scan order for an 8×8 block.
pub fn zigzag_order() -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(B * B);
    for s in 0..(2 * B - 1) {
        let coords: Vec<(usize, usize)> = (0..=s.min(B - 1))
            .filter_map(|i| {
                let j = s - i;
                (j < B).then_some((i, j))
            })
            .collect();
        if s % 2 == 0 {
            order.extend(coords.into_iter().rev());
        } else {
            order.extend(coords);
        }
    }
    order
}

/// Run-length encode a quantized coefficient sequence. Each `(v, run)`
/// symbol means "`run` zeros, then the value `v`" — so `(0, n)` encodes
/// `n + 1` zeros. The symbol stream reconstructs the input exactly.
pub fn rle_encode(coeffs: &[i32]) -> Vec<(i32, u8)> {
    let mut out = Vec::new();
    let mut zeros: u8 = 0;
    for &c in coeffs {
        if c == 0 && zeros < u8::MAX {
            zeros += 1;
        } else {
            out.push((c, zeros));
            zeros = 0;
        }
    }
    if zeros > 0 {
        // `zeros` trailing zeros = (zeros − 1) run + one zero value.
        out.push((0, zeros - 1));
    }
    out
}

/// Invert [`rle_encode`]; pads or truncates to `len` defensively.
pub fn rle_decode(rle: &[(i32, u8)], len: usize) -> Vec<i32> {
    let mut out = Vec::with_capacity(len);
    for &(v, run) in rle {
        out.extend(std::iter::repeat_n(0, run as usize));
        out.push(v);
    }
    out.truncate(len);
    while out.len() < len {
        out.push(0);
    }
    out
}

/// One encoded 8×8 block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedBlock {
    pub rle: Vec<(i32, u8)>,
}

impl EncodedBlock {
    /// Compressed size in bytes (3 bytes per RLE symbol: i16 value + run).
    pub fn bytes(&self) -> usize {
        self.rle.len() * 3
    }
}

/// The transform backend: exact digital math or the photonic engine.
pub enum Transform<'a> {
    Digital,
    Photonic(&'a mut PhotonicMatVec),
}

impl Transform<'_> {
    /// `y = M · x` for the 8-vector `x` with signed matrix rows.
    fn matvec(&mut self, m: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        match self {
            Transform::Digital => m
                .iter()
                .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
                .collect(),
            Transform::Photonic(engine) => {
                // The photonic engine encodes values in [-1,1]; DCT
                // inputs are pixel values in [0,1] shifted to [-0.5,0.5]
                // upstream, and basis entries are within [-0.5,0.5].
                engine.mat_vec_signed(m, x)
            }
        }
    }

    /// 2-D DCT of a block: `D · block · Dᵀ`.
    pub fn dct2(&mut self, block: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let d = dct_matrix();
        // rows: tmp = D · block  (column-wise matvecs on blockᵀ)
        let bt = transpose(block);
        let tmp_t: Vec<Vec<f64>> = bt.iter().map(|col| self.matvec(&d, col)).collect();
        let tmp = transpose(&tmp_t); // tmp = D·block
        let tmp2: Vec<Vec<f64>> = tmp.iter().map(|row| self.matvec(&d, row)).collect();
        // tmp2 rows are D·(rows of tmp) = (D·tmpᵀ)ᵀ → tmp·Dᵀ done right.
        tmp2
    }
}

/// Exact inverse 2-D DCT (digital; runs at the decoder).
pub fn idct2(coeffs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = dct_matrix();
    let dt = transpose(&d);
    // block = Dᵀ · coeffs · D
    let mul = |a: &[Vec<f64>], b: &[Vec<f64>]| -> Vec<Vec<f64>> {
        (0..B)
            .map(|i| {
                (0..B)
                    .map(|j| (0..B).map(|k| a[i][k] * b[k][j]).sum())
                    .collect()
            })
            .collect()
    };
    mul(&mul(&dt, coeffs), &d)
}

/// Encode one block (pixels in `[0,1]`): center, transform, quantize,
/// zigzag, RLE.
pub fn encode_block(block: &[Vec<f64>], quality: f64, tf: &mut Transform) -> EncodedBlock {
    assert_eq!(block.len(), B, "block must be 8×8");
    let centered: Vec<Vec<f64>> = block
        .iter()
        .map(|row| {
            assert_eq!(row.len(), B, "block must be 8×8");
            row.iter().map(|&p| p - 0.5).collect()
        })
        .collect();
    let coeffs = tf.dct2(&centered);
    let q = quant_table(quality);
    let zz = zigzag_order();
    let scanned: Vec<i32> = zz
        .iter()
        .map(|&(i, j)| (coeffs[i][j] / q[i][j]).round() as i32)
        .collect();
    EncodedBlock {
        rle: rle_encode(&scanned),
    }
}

/// Decode one block back to pixels in `[0,1]`.
pub fn decode_block(enc: &EncodedBlock, quality: f64) -> Vec<Vec<f64>> {
    let q = quant_table(quality);
    let zz = zigzag_order();
    let scanned = rle_decode(&enc.rle, B * B);
    let mut coeffs = vec![vec![0.0; B]; B];
    for (&(i, j), &v) in zz.iter().zip(&scanned) {
        coeffs[i][j] = v as f64 * q[i][j];
    }
    idct2(&coeffs)
        .into_iter()
        .map(|row| row.into_iter().map(|p| (p + 0.5).clamp(0.0, 1.0)).collect())
        .collect()
}

/// A synthetic frame: smooth gradient plus a moving bright square —
/// compressible structure with edges (stand-in for real video content).
pub fn synthetic_frame(
    width: usize,
    height: usize,
    phase: usize,
    rng: &mut SimRng,
) -> Vec<Vec<f64>> {
    let mut f = vec![vec![0.0; width]; height];
    let sq = 8 + (phase * 4) % width.saturating_sub(16).max(1);
    for (i, row) in f.iter_mut().enumerate() {
        for (j, p) in row.iter_mut().enumerate() {
            let grad = 0.3 + 0.4 * (j as f64 / width as f64);
            let in_square = (4..12).contains(&i) && j >= sq && j < sq + 8;
            let v = if in_square { 0.9 } else { grad };
            *p = (v + rng.normal(0.0, 0.01)).clamp(0.0, 1.0);
        }
    }
    f
}

/// PSNR between two images, dB.
pub fn psnr(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert_eq!(a.len(), b.len(), "image height mismatch");
    let mut se = 0.0;
    let mut n = 0usize;
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "image width mismatch");
        for (&x, &y) in ra.iter().zip(rb) {
            se += (x - y) * (x - y);
            n += 1;
        }
    }
    let mse = se / n as f64;
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / mse).log10()
    }
}

/// Full-frame encode: tile into 8×8 blocks (frame dims must be multiples
/// of 8). Returns blocks in row-major tile order.
pub fn encode_frame(frame: &[Vec<f64>], quality: f64, tf: &mut Transform) -> Vec<EncodedBlock> {
    let h = frame.len();
    let w = frame[0].len();
    assert!(
        h.is_multiple_of(B) && w.is_multiple_of(B),
        "frame dims must be multiples of 8"
    );
    let mut out = Vec::new();
    for bi in (0..h).step_by(B) {
        for bj in (0..w).step_by(B) {
            let block: Vec<Vec<f64>> = (0..B).map(|i| frame[bi + i][bj..bj + B].to_vec()).collect();
            out.push(encode_block(&block, quality, tf));
        }
    }
    out
}

/// Full-frame decode.
pub fn decode_frame(
    blocks: &[EncodedBlock],
    width: usize,
    height: usize,
    quality: f64,
) -> Vec<Vec<f64>> {
    let mut frame = vec![vec![0.0; width]; height];
    let tiles_per_row = width / B;
    for (t, enc) in blocks.iter().enumerate() {
        let bi = (t / tiles_per_row) * B;
        let bj = (t % tiles_per_row) * B;
        let block = decode_block(enc, quality);
        for i in 0..B {
            frame[bi + i][bj..bj + B].copy_from_slice(&block[i]);
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_matrix_is_orthonormal() {
        let d = dct_matrix();
        for i in 0..B {
            for j in 0..B {
                let dot: f64 = (0..B).map(|k| d[i][k] * d[j][k]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-12, "({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn dct_idct_round_trip_is_exact_digitally() {
        let mut rng = SimRng::seed_from_u64(0);
        let block: Vec<Vec<f64>> = (0..B)
            .map(|_| (0..B).map(|_| rng.uniform() - 0.5).collect())
            .collect();
        let mut tf = Transform::Digital;
        let coeffs = tf.dct2(&block);
        let back = idct2(&coeffs);
        for i in 0..B {
            for j in 0..B {
                assert!((back[i][j] - block[i][j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zigzag_covers_all_64_once() {
        let zz = zigzag_order();
        assert_eq!(zz.len(), 64);
        let set: std::collections::HashSet<(usize, usize)> = zz.iter().copied().collect();
        assert_eq!(set.len(), 64);
        assert_eq!(zz[0], (0, 0));
        assert_eq!(zz[63], (7, 7));
    }

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<i32>> = vec![
            vec![5, 0, 0, -3, 0, 0, 0, 1],
            vec![0; 10],
            vec![1, 2, 3],
            vec![],
        ];
        for c in cases {
            let enc = rle_encode(&c);
            let dec = rle_decode(&enc, c.len());
            assert_eq!(dec, c, "case {c:?} enc {enc:?}");
        }
    }

    #[test]
    fn rle_compresses_sparse_data() {
        let mut coeffs = vec![0i32; 64];
        coeffs[0] = 50;
        coeffs[1] = -3;
        let enc = rle_encode(&coeffs);
        assert!(enc.len() <= 3, "{enc:?}");
    }

    #[test]
    fn block_round_trip_quality() {
        let mut rng = SimRng::seed_from_u64(1);
        // A smooth block compresses nearly losslessly at high quality.
        let block: Vec<Vec<f64>> = (0..B)
            .map(|i| (0..B).map(|j| 0.3 + 0.03 * (i + j) as f64).collect())
            .collect();
        let _ = &mut rng;
        let mut tf = Transform::Digital;
        let enc = encode_block(&block, 1.0, &mut tf);
        let dec = decode_block(&enc, 1.0);
        let p = psnr(&block, &dec);
        assert!(p > 35.0, "psnr {p}");
    }

    #[test]
    fn photonic_transform_tracks_digital() {
        let mut rng = SimRng::seed_from_u64(2);
        let frame = synthetic_frame(32, 16, 0, &mut rng);
        let mut digital = Transform::Digital;
        let enc_d = encode_frame(&frame, 0.8, &mut digital);
        let dec_d = decode_frame(&enc_d, 32, 16, 0.8);
        let psnr_digital = psnr(&frame, &dec_d);

        let mut engine = PhotonicMatVec::ideal(8);
        let mut photonic = Transform::Photonic(&mut engine);
        let enc_p = encode_frame(&frame, 0.8, &mut photonic);
        let dec_p = decode_frame(&enc_p, 32, 16, 0.8);
        let psnr_photonic = psnr(&frame, &dec_p);
        assert!(psnr_digital > 28.0, "digital psnr {psnr_digital}");
        assert!(
            psnr_photonic > psnr_digital - 3.0,
            "photonic {psnr_photonic} vs digital {psnr_digital}"
        );
    }

    #[test]
    fn lower_quality_means_fewer_bytes() {
        let mut rng = SimRng::seed_from_u64(3);
        let frame = synthetic_frame(32, 16, 1, &mut rng);
        let mut tf = Transform::Digital;
        let hi: usize = encode_frame(&frame, 1.0, &mut tf)
            .iter()
            .map(|b| b.bytes())
            .sum();
        let lo: usize = encode_frame(&frame, 0.2, &mut tf)
            .iter()
            .map(|b| b.bytes())
            .sum();
        assert!(lo < hi, "lo {lo} hi {hi}");
        // And both beat raw (512 pixels × 1 byte).
        assert!(lo < 512);
    }

    #[test]
    fn psnr_extremes() {
        let a = vec![vec![0.5; 8]; 8];
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let b = vec![vec![1.0; 8]; 8];
        let p = psnr(&a, &b);
        assert!((p - 6.02).abs() < 0.1, "psnr {p}"); // MSE 0.25 → ~6 dB
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_frame_dims_panic() {
        let frame = vec![vec![0.0; 10]; 10];
        encode_frame(&frame, 1.0, &mut Transform::Digital);
    }
}
