//! Intrusion detection (Table 1, class C2).
//!
//! Signature scanning over packet payloads: the digital baseline is a
//! from-scratch Aho–Corasick automaton (what Snort-class IDS engines
//! build), the photonic path is the sliding correlator of
//! [`ofpc_engine::correlator`] running at line rate on the optical
//! payload — "photonic regular expression matching hardware" in Table
//! 1's terms, here the exact-and-fuzzy signature subset that maps to
//! interference matching.

use ofpc_engine::correlator::{bytes_to_bits, Correlator};
use ofpc_engine::matcher::MatcherConfig;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A match reported by either engine: `(byte_offset, signature_index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SigHit {
    pub offset: usize,
    pub signature: usize,
}

/// Aho–Corasick multi-pattern matcher (digital baseline).
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// goto[state][byte] — dense next-state table.
    next: Vec<[u32; 256]>,
    fail: Vec<u32>,
    /// Output signatures (index, length) per state.
    out: Vec<Vec<(usize, usize)>>,
    pub bytes_scanned: u64,
}

impl AhoCorasick {
    #[allow(clippy::needless_range_loop)] // byte-alphabet tables read clearest with indices
    pub fn new(signatures: &[Vec<u8>]) -> Self {
        assert!(!signatures.is_empty(), "need at least one signature");
        assert!(
            signatures.iter().all(|s| !s.is_empty()),
            "signatures must be non-empty"
        );
        let mut next: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut out: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
        // Build the trie.
        for (si, sig) in signatures.iter().enumerate() {
            let mut state = 0usize;
            for &b in sig {
                let slot = next[state][b as usize];
                state = if slot == u32::MAX {
                    next.push([u32::MAX; 256]);
                    out.push(Vec::new());
                    let new_state = (next.len() - 1) as u32;
                    next[state][b as usize] = new_state;
                    new_state as usize
                } else {
                    slot as usize
                };
            }
            out[state].push((si, sig.len()));
        }
        // BFS fail links, converting to a dense DFA.
        let mut fail = vec![0u32; next.len()];
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let s = next[0][b];
            if s == u32::MAX {
                next[0][b] = 0;
            } else {
                fail[s as usize] = 0;
                queue.push_back(s as usize);
            }
        }
        while let Some(state) = queue.pop_front() {
            let f = fail[state] as usize;
            let inherited: Vec<(usize, usize)> = out[f].clone();
            out[state].extend(inherited);
            for b in 0..256 {
                let s = next[state][b];
                if s == u32::MAX {
                    next[state][b] = next[f][b];
                } else {
                    fail[s as usize] = next[f][b];
                    queue.push_back(s as usize);
                }
            }
        }
        AhoCorasick {
            next,
            fail,
            out,
            bytes_scanned: 0,
        }
    }

    pub fn state_count(&self) -> usize {
        self.next.len()
    }

    /// Fail-link of a state (diagnostic; the dense DFA already folds
    /// fail transitions into `next`).
    pub fn fail_link(&self, state: usize) -> u32 {
        self.fail[state]
    }

    /// Scan a payload, reporting every signature occurrence.
    pub fn scan(&mut self, payload: &[u8]) -> Vec<SigHit> {
        let mut hits = Vec::new();
        let mut state = 0usize;
        for (i, &b) in payload.iter().enumerate() {
            state = self.next[state][b as usize] as usize;
            for &(si, len) in &self.out[state] {
                hits.push(SigHit {
                    offset: i + 1 - len,
                    signature: si,
                });
            }
        }
        self.bytes_scanned += payload.len() as u64;
        hits.sort();
        hits.dedup();
        hits
    }
}

/// Photonic IDS: the engine's sliding correlator over byte-aligned
/// payload bits.
#[derive(Debug)]
pub struct PhotonicIds {
    correlator: Correlator,
    pub payloads_scanned: u64,
}

impl PhotonicIds {
    pub fn new(signatures: &[Vec<u8>], tolerance_bits: f64, rng: &mut SimRng) -> Self {
        let bit_sigs: Vec<Vec<bool>> = signatures.iter().map(|s| bytes_to_bits(s)).collect();
        PhotonicIds {
            correlator: Correlator::new(MatcherConfig::ideal(), bit_sigs, tolerance_bits, 8, rng),
            payloads_scanned: 0,
        }
    }

    pub fn ideal(signatures: &[Vec<u8>]) -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        PhotonicIds::new(signatures, 0.0, &mut rng)
    }

    /// Scan a payload.
    pub fn scan(&mut self, payload: &[u8]) -> Vec<SigHit> {
        self.payloads_scanned += 1;
        let bits = bytes_to_bits(payload);
        let mut hits: Vec<SigHit> = self
            .correlator
            .scan(&bits)
            .into_iter()
            .map(|h| SigHit {
                offset: h.offset / 8,
                signature: h.pattern_index,
            })
            .collect();
        hits.sort();
        hits.dedup();
        hits
    }

    /// Wall-clock scan latency at line rate for a payload of `bytes`.
    pub fn scan_latency_s(&self, bytes: usize) -> f64 {
        self.correlator.scan_latency_s(bytes * 8)
    }
}

/// Synthesize traffic: `n` payloads of `len` bytes; a `plant_rate`
/// fraction get a random signature planted at a random offset. Returns
/// payloads plus ground truth hits.
pub fn synthesize_traffic(
    n: usize,
    len: usize,
    signatures: &[Vec<u8>],
    plant_rate: f64,
    rng: &mut SimRng,
) -> (Vec<Vec<u8>>, HashMap<usize, Vec<SigHit>>) {
    assert!(!signatures.is_empty(), "need signatures to plant");
    let mut payloads = Vec::with_capacity(n);
    let mut truth: HashMap<usize, Vec<SigHit>> = HashMap::new();
    for p in 0..n {
        // Base payload avoids accidental ASCII signature collisions by
        // drawing from bytes 128..=255.
        let mut payload: Vec<u8> = (0..len).map(|_| 128 + (rng.below(128) as u8)).collect();
        if rng.chance(plant_rate) {
            let si = rng.below(signatures.len());
            let sig = &signatures[si];
            if sig.len() <= len {
                let off = rng.below(len - sig.len() + 1);
                payload[off..off + sig.len()].copy_from_slice(sig);
                truth.entry(p).or_default().push(SigHit {
                    offset: off,
                    signature: si,
                });
            }
        }
        payloads.push(payload);
    }
    (payloads, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> Vec<Vec<u8>> {
        vec![b"ATTACK".to_vec(), b"EVIL".to_vec(), b"ROOTKIT".to_vec()]
    }

    #[test]
    fn aho_corasick_finds_all_occurrences() {
        let mut ac = AhoCorasick::new(&sigs());
        let hits = ac.scan(b"xxATTACKyyEVILzzATTACK");
        assert_eq!(
            hits,
            vec![
                SigHit {
                    offset: 2,
                    signature: 0
                },
                SigHit {
                    offset: 10,
                    signature: 1
                },
                SigHit {
                    offset: 16,
                    signature: 0
                },
            ]
        );
    }

    #[test]
    fn aho_corasick_overlapping_signatures() {
        // "HE" inside "SHE"; "HERS" shares a prefix path.
        let sigs = vec![b"HE".to_vec(), b"SHE".to_vec(), b"HERS".to_vec()];
        let mut ac = AhoCorasick::new(&sigs);
        let hits = ac.scan(b"USHERS");
        let expect: Vec<SigHit> = vec![
            SigHit {
                offset: 1,
                signature: 1,
            }, // SHE @1
            SigHit {
                offset: 2,
                signature: 0,
            }, // HE @2
            SigHit {
                offset: 2,
                signature: 2,
            }, // HERS @2
        ];
        assert_eq!(hits, expect);
    }

    #[test]
    fn clean_payload_has_no_hits() {
        let mut ac = AhoCorasick::new(&sigs());
        assert!(ac.scan(b"perfectly normal traffic").is_empty());
        assert_eq!(ac.bytes_scanned, 24);
    }

    #[test]
    fn photonic_ids_matches_aho_corasick() {
        let mut rng = SimRng::seed_from_u64(1);
        let signatures = sigs();
        let (payloads, _) = synthesize_traffic(12, 48, &signatures, 0.7, &mut rng);
        let mut ac = AhoCorasick::new(&signatures);
        let mut ids = PhotonicIds::ideal(&signatures);
        for p in &payloads {
            assert_eq!(ids.scan(p), ac.scan(p), "payload {p:?}");
        }
    }

    #[test]
    fn ground_truth_is_detected() {
        let mut rng = SimRng::seed_from_u64(2);
        let signatures = sigs();
        let (payloads, truth) = synthesize_traffic(20, 64, &signatures, 0.5, &mut rng);
        let mut ids = PhotonicIds::ideal(&signatures);
        for (p, payload) in payloads.iter().enumerate() {
            let hits = ids.scan(payload);
            if let Some(expected) = truth.get(&p) {
                for e in expected {
                    assert!(hits.contains(e), "missed {e:?} in payload {p}");
                }
            }
        }
    }

    #[test]
    fn photonic_latency_scales_with_payload() {
        let ids = PhotonicIds::ideal(&sigs());
        assert!(ids.scan_latency_s(1500) > ids.scan_latency_s(64));
    }

    #[test]
    fn automaton_size_is_sum_of_lengths_plus_root() {
        let ac = AhoCorasick::new(&sigs());
        // Disjoint signatures: states = 1 + Σ|sig|.
        assert_eq!(ac.state_count(), 1 + 6 + 4 + 7);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_signature_set_panics() {
        AhoCorasick::new(&[]);
    }
}
