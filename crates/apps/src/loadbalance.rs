//! Load balancing (Table 1, class C2).
//!
//! Table 1's bottleneck: switches have "limited memory for precise load
//! balancing due to replicating entries". The photonic alternative reads
//! link queue depths as *analog* values through a photonic comparator
//! (balanced detection — no per-entry state at all) and steers each
//! flowlet to the emptier path. Baselines: ECMP-style hashing (stateless
//! but congestion-blind) and static WCMP weights.
//!
//! The experiment runs on the Fig.-1 topology, which conveniently has
//! two disjoint A→D paths.

use ofpc_engine::comparator::{Comparison, PhotonicComparator};
use ofpc_net::packet::Packet;
use ofpc_net::sim::Network;
use ofpc_net::topology::{LinkId, Topology};
use ofpc_net::NodeId;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// The balancing policy at the source's two-path fork.
#[derive(Debug)]
pub enum Balancer {
    /// Hash the flow id (ECMP model).
    EcmpHash,
    /// Static weights: probability of the first path.
    Wcmp { first_path_weight: f64 },
    /// Photonic comparator on the two egress queue occupancies
    /// (boxed: the device model is much larger than the other arms).
    Photonic(Box<PhotonicComparator>),
}

impl Balancer {
    /// Pick a path (0 or 1) for a flowlet.
    pub fn pick(
        &mut self,
        flow_id: u32,
        occupancy0: f64,
        occupancy1: f64,
        rng: &mut SimRng,
    ) -> usize {
        match self {
            Balancer::EcmpHash => {
                // FNV-style hash of the flow id.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in flow_id.to_be_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                (h % 2) as usize
            }
            Balancer::Wcmp { first_path_weight } => {
                if rng.uniform() < *first_path_weight {
                    0
                } else {
                    1
                }
            }
            Balancer::Photonic(cmp) => match cmp.compare(occupancy0, occupancy1) {
                // Send to the *less* occupied path.
                Comparison::AGreater => 1,
                Comparison::BGreater => 0,
                Comparison::TooClose => (flow_id % 2) as usize,
            },
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Balancer::EcmpHash => "ecmp",
            Balancer::Wcmp { .. } => "wcmp",
            Balancer::Photonic(_) => "photonic",
        }
    }
}

/// Result of one load-balancing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbReport {
    pub policy: String,
    pub delivered: usize,
    pub drops: u64,
    pub p99_latency_ms: f64,
    pub mean_latency_ms: f64,
    /// Packets sent down each path.
    pub path_counts: [usize; 2],
}

/// Build the asymmetric two-path test network: Fig. 1 with the B path's
/// A→B link capacity cut to stress precision. Returns the network and
/// the two first-hop link IDs (A→B, A→C).
pub fn build_two_path_network(rng: SimRng, capacity_ratio: f64) -> (Network, [LinkId; 2]) {
    assert!(capacity_ratio > 0.0 && capacity_ratio <= 1.0);
    let mut topo = Topology::new();
    let a = topo.add_node("A");
    let b = topo.add_node("B");
    let c = topo.add_node("C");
    let d = topo.add_node("D");
    let cap = ofpc_net::topology::DEFAULT_CAPACITY_BPS;
    let l_ab = topo.add_link_with_capacity(a, b, 800.0, cap * capacity_ratio);
    let l_ac = topo.add_link_with_capacity(a, c, 800.0, cap);
    topo.add_link_with_capacity(b, d, 700.0, cap);
    topo.add_link_with_capacity(c, d, 700.0, cap);
    let mut net = Network::with_queue_capacity(topo, rng, 64 * 1024);
    net.install_shortest_path_routes();
    (net, [l_ab, l_ac])
}

/// Run `flowlets` flowlets of `packets_per_flowlet` packets each from A
/// to D under `balancer`, reading egress occupancies at decision time.
/// A persistent background flow loads the thin A→B link to
/// `bg_load` of its capacity — the asymmetry a congestion-aware
/// balancer should route around and a hash-based one cannot see.
pub fn run_lb(
    balancer: &mut Balancer,
    flowlets: usize,
    packets_per_flowlet: usize,
    payload_bytes: usize,
    gap_ps: u64,
    bg_load: f64,
    rng: &mut SimRng,
) -> LbReport {
    assert!((0.0..2.0).contains(&bg_load), "bg_load out of range");
    let (mut net, first_hops) = build_two_path_network(SimRng::seed_from_u64(1), 0.25);
    let a = NodeId(0);
    let d = NodeId(3);
    let b = NodeId(1);
    let mut path_counts = [0usize; 2];
    let mut id = 0u32;

    // Background load on the thin path: plain packets terminating at B.
    if bg_load > 0.0 {
        let thin_capacity = net.topo.link(first_hops[0]).capacity_bps;
        let wire = (payload_bytes + ofpc_net::packet::IP_HEADER_BYTES) as f64;
        let bg_gap_ps = (wire * 8.0 / (bg_load * thin_capacity) * 1e12).round() as u64;
        let duration_ps = (flowlets * packets_per_flowlet) as u64 * gap_ps;
        let mut bt = 0u64;
        while bt < duration_ps {
            let p = Packet::data(
                Network::node_addr(a, 9),
                Network::node_addr(b, 9),
                1_000_000 + id,
                vec![0u8; payload_bytes],
            );
            net.inject(bt, a, p);
            id += 1;
            bt += bg_gap_ps;
        }
    }

    let mut t = 0u64;
    let foreground_base = 2_000_000u32;
    let mut fg_id = foreground_base;
    for f in 0..flowlets {
        // Advance simulated time to the flowlet boundary, then take the
        // occupancy snapshot — in hardware this is the analog tap the
        // comparator reads at decision time.
        net.run_until(t);
        let occ0 = net.queue_occupancy(first_hops[0], true);
        let occ1 = net.queue_occupancy(first_hops[1], true);
        let path = balancer.pick(f as u32, occ0, occ1, rng);
        path_counts[path] += 1;
        // Pin the flowlet to its path with a /32 route at the fork.
        let dst = Network::node_addr(d, (f % 200 + 1) as u8);
        net.routing_table_mut(a).install(
            ofpc_net::Prefix::host(dst),
            ofpc_net::routing::RouteEntry {
                next_hop: Some(first_hops[path]),
                ..Default::default()
            },
        );
        for _ in 0..packets_per_flowlet {
            let p = Packet::data(
                Network::node_addr(a, 1),
                dst,
                fg_id,
                vec![0u8; payload_bytes],
            );
            net.inject(t, a, p);
            fg_id += 1;
            t += gap_ps;
        }
    }
    net.run_to_idle();
    // Report foreground deliveries only (background is plumbing).
    let fg: Vec<&ofpc_net::stats::DeliveryRecord> = net
        .stats
        .delivered
        .iter()
        .filter(|r| r.packet_id >= foreground_base)
        .collect();
    let lat: Vec<f64> = fg.iter().map(|r| r.latency_ms()).collect();
    let p99 = ofpc_net::stats::percentile(lat.clone(), 0.99).unwrap_or(f64::NAN);
    let mean = if lat.is_empty() {
        f64::NAN
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    LbReport {
        policy: balancer.name().to_string(),
        delivered: fg.len(),
        drops: net.stats.total_drops(),
        p99_latency_ms: p99,
        mean_latency_ms: mean,
        path_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_hash_is_deterministic_per_flow() {
        let mut b = Balancer::EcmpHash;
        let mut rng = SimRng::seed_from_u64(0);
        let p1 = b.pick(42, 0.0, 0.0, &mut rng);
        let p2 = b.pick(42, 0.9, 0.1, &mut rng);
        assert_eq!(p1, p2, "hash ignores occupancy");
        // Different flows spread across paths.
        let spread: std::collections::HashSet<usize> =
            (0..32).map(|f| b.pick(f, 0.0, 0.0, &mut rng)).collect();
        assert_eq!(spread.len(), 2);
    }

    #[test]
    fn photonic_balancer_prefers_empty_path() {
        let mut b = Balancer::Photonic(Box::new(PhotonicComparator::ideal()));
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(b.pick(0, 0.9, 0.1, &mut rng), 1);
        assert_eq!(b.pick(0, 0.1, 0.9, &mut rng), 0);
    }

    #[test]
    fn wcmp_follows_weights() {
        let mut b = Balancer::Wcmp {
            first_path_weight: 0.2,
        };
        let mut rng = SimRng::seed_from_u64(2);
        let first = (0..2_000)
            .filter(|&f| b.pick(f, 0.0, 0.0, &mut rng) == 0)
            .count();
        assert!((300..500).contains(&first), "first-path picks {first}");
    }

    #[test]
    fn photonic_lb_beats_ecmp_under_asymmetry() {
        // The A→B path has a quarter of the capacity; ECMP still sends
        // half the flowlets there, the photonic comparator shifts load
        // toward the fat path. Load is sized so queues actually build
        // (packet serialization on the thin path exceeds the gap), and
        // the comparator needs a small dead zone so an empty-vs-empty
        // comparison alternates instead of biasing one port.
        let mut rng = SimRng::seed_from_u64(3);
        let mut ecmp = Balancer::EcmpHash;
        let ecmp_report = run_lb(&mut ecmp, 24, 12, 8_000, 150_000, 0.9, &mut rng);
        let mut cmp_rng = SimRng::seed_from_u64(30);
        let mut cfg = ofpc_engine::comparator::ComparatorConfig::ideal();
        cfg.dead_zone = 0.01;
        let mut phot = Balancer::Photonic(Box::new(PhotonicComparator::new(cfg, &mut cmp_rng)));
        let phot_report = run_lb(&mut phot, 24, 12, 8_000, 150_000, 0.9, &mut rng);
        // The photonic policy must shift traffic toward path 1 (fat).
        assert!(
            phot_report.path_counts[1] > ecmp_report.path_counts[1],
            "photonic {:?} vs ecmp {:?}",
            phot_report.path_counts,
            ecmp_report.path_counts
        );
        // And not lose more packets.
        assert!(phot_report.drops <= ecmp_report.drops);
    }

    #[test]
    fn reports_are_complete() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut b = Balancer::Wcmp {
            first_path_weight: 0.25,
        };
        let r = run_lb(&mut b, 10, 5, 1_000, 100_000, 0.0, &mut rng);
        assert_eq!(r.policy, "wcmp");
        assert_eq!(r.delivered, 50);
        assert_eq!(r.path_counts[0] + r.path_counts[1], 10);
        assert!(r.p99_latency_ms >= r.mean_latency_ms * 0.5);
    }
}
