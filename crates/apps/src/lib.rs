//! # ofpc-apps — the Table-1 use cases
//!
//! Every row of the paper's Table 1, implemented end-to-end against the
//! photonic engine (`ofpc-engine`), the transponder models
//! (`ofpc-transponder`), and the WAN simulator (`ofpc-net`), each with
//! the digital baseline it displaces:
//!
//! | Use case | Module | Primitives | Baseline |
//! |---|---|---|---|
//! | Machine-learning inference | [`ml`] | P1 (+P3) | cloud/edge digital DNN |
//! | Video encoding | [`video`] | P1 | digital DCT encoder |
//! | IP routing | [`iprouting`] | P2 | TCAM model |
//! | Intrusion detection | [`intrusion`] | P2 | Aho–Corasick on servers |
//! | Data encryption | [`encryption`] | P1/P2 phase ops | CPU stream cipher |
//! | Load balancing | [`loadbalance`] | P2 comparator | ECMP hash / WCMP |
//! | Massive MIMO baseband | [`mimo`] | P1 + P3 | digital matched filter |
//!
//! [`digital`] provides the calibrated digital compute and placement
//! models (TPU/GPU/CPU/switch-ASIC energy and rate constants from the
//! paper's §2.2, plus cloud/edge round-trip geometry) that every
//! comparison in experiments E1/E4/E5 uses.

pub mod digital;
pub mod encryption;
pub mod intrusion;
pub mod iprouting;
pub mod loadbalance;
pub mod mimo;
pub mod ml;
pub mod secure_match;
pub mod video;
