//! IP routing via photonic ternary matching (Table 1, class C2).
//!
//! Longest-prefix match is what TCAMs burn watts on ("Current
//! bottleneck: power hungry"); the photonic alternative is the ternary
//! matcher of Fig. 2b with wildcards: each rule's prefix becomes a
//! ternary pattern (`1010****`), the engine matches the destination
//! address against all rules, and the longest matching prefix wins.
//!
//! This module provides the rule compiler, a digital TCAM model with a
//! published-class per-lookup energy, and the photonic LPM engine built
//! on [`ofpc_engine::ternary::TernaryMatcher`].

use ofpc_engine::ternary::{Tern, TernaryConfig, TernaryMatcher};
use ofpc_net::{Addr, Prefix};
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// One forwarding rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub prefix: Prefix,
    pub port: u16,
}

/// Convert an address to its 32 bits, MSB first.
pub fn addr_bits(addr: Addr) -> Vec<bool> {
    (0..32).rev().map(|i| (addr.0 >> i) & 1 == 1).collect()
}

/// Compile a prefix to a ternary pattern: `len` literal bits then
/// wildcards.
pub fn prefix_pattern(prefix: Prefix) -> Vec<Tern> {
    let bits = addr_bits(prefix.network());
    (0..32)
        .map(|i| {
            if (i as u8) < prefix.len() {
                if bits[i] {
                    Tern::One
                } else {
                    Tern::Zero
                }
            } else {
                Tern::Wild
            }
        })
        .collect()
}

/// Digital TCAM model: exact LPM plus an energy meter. A 32-bit TCAM
/// search charges every stored entry in parallel — that is the "power
/// hungry" bottleneck (order 10 fJ per bit per search in modern TCAMs).
#[derive(Debug, Clone)]
pub struct TcamModel {
    rules: Vec<Rule>,
    pub lookups: u64,
    /// Energy per bitcell per search, J.
    pub energy_per_bit_search_j: f64,
}

impl TcamModel {
    pub fn new(mut rules: Vec<Rule>) -> Self {
        // TCAM priority = longest prefix first.
        rules.sort_by_key(|r| std::cmp::Reverse(r.prefix.len()));
        TcamModel {
            rules,
            lookups: 0,
            energy_per_bit_search_j: 10e-15,
        }
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// LPM lookup.
    pub fn lookup(&mut self, addr: Addr) -> Option<u16> {
        self.lookups += 1;
        self.rules
            .iter()
            .find(|r| r.prefix.contains(addr))
            .map(|r| r.port)
    }

    /// Total search energy so far, J.
    pub fn energy_j(&self) -> f64 {
        self.lookups as f64 * self.rules.len() as f64 * 32.0 * self.energy_per_bit_search_j
    }
}

/// Photonic LPM engine: one ternary pattern per rule, matched optically;
/// the longest matching prefix wins (ties by insertion order of equal
/// lengths — same as TCAM priority).
#[derive(Debug)]
pub struct PhotonicLpm {
    matcher: TernaryMatcher,
    rules: Vec<(Rule, Vec<Tern>)>,
    pub lookups: u64,
}

impl PhotonicLpm {
    pub fn new(config: TernaryConfig, mut rules: Vec<Rule>, rng: &mut SimRng) -> Self {
        rules.sort_by_key(|r| std::cmp::Reverse(r.prefix.len()));
        let compiled = rules
            .into_iter()
            .map(|r| {
                let p = prefix_pattern(r.prefix);
                (r, p)
            })
            .collect();
        let mut matcher = TernaryMatcher::new(config, rng);
        matcher.calibrate(128);
        PhotonicLpm {
            matcher,
            rules: compiled,
            lookups: 0,
        }
    }

    pub fn ideal(rules: Vec<Rule>) -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        PhotonicLpm::new(TernaryConfig::ideal(), rules, &mut rng)
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Photonic LPM lookup: match rules longest-first, first hit wins.
    pub fn lookup(&mut self, addr: Addr) -> Option<u16> {
        self.lookups += 1;
        let bits = addr_bits(addr);
        for i in 0..self.rules.len() {
            let pattern = self.rules[i].1.clone();
            if self.matcher.match_block(&bits, &pattern).matched {
                return Some(self.rules[i].0.port);
            }
        }
        None
    }

    /// Optical symbols pushed through the matcher (cost metric).
    pub fn symbols_matched(&self) -> u64 {
        self.matcher.symbols_matched
    }
}

/// A deterministic random rule table: `n` prefixes of assorted lengths
/// over `10.0.0.0/8`, each with a port.
pub fn random_rules(n: usize, rng: &mut SimRng) -> Vec<Rule> {
    assert!(n >= 1, "need at least one rule");
    let mut rules = Vec::with_capacity(n);
    // Always include a default-ish /8 so every address resolves.
    rules.push(Rule {
        prefix: "10.0.0.0/8".parse().unwrap(),
        port: 0,
    });
    for i in 1..n {
        let len = 9 + rng.below(16) as u8; // /9../24
        let addr = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
        rules.push(Rule {
            prefix: Prefix::new(addr, len),
            port: i as u16,
        });
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_basic() -> Vec<Rule> {
        vec![
            Rule {
                prefix: "10.0.0.0/8".parse().unwrap(),
                port: 1,
            },
            Rule {
                prefix: "10.1.0.0/16".parse().unwrap(),
                port: 2,
            },
            Rule {
                prefix: "10.1.2.0/24".parse().unwrap(),
                port: 3,
            },
        ]
    }

    #[test]
    fn addr_bits_msb_first() {
        let bits = addr_bits(Addr::new(128, 0, 0, 1));
        assert!(bits[0]);
        assert!(bits[31]);
        assert!(!bits[1]);
        assert_eq!(bits.len(), 32);
    }

    #[test]
    fn prefix_pattern_shape() {
        let p = prefix_pattern("10.0.0.0/8".parse().unwrap());
        assert_eq!(p.len(), 32);
        assert_eq!(p.iter().filter(|&&t| t == Tern::Wild).count(), 24);
        // 10 = 00001010.
        assert_eq!(p[4], Tern::One);
        assert_eq!(p[6], Tern::One);
        assert_eq!(p[7], Tern::Zero);
    }

    #[test]
    fn tcam_longest_prefix_wins() {
        let mut tcam = TcamModel::new(rules_basic());
        assert_eq!(tcam.lookup("10.1.2.3".parse().unwrap()), Some(3));
        assert_eq!(tcam.lookup("10.1.9.9".parse().unwrap()), Some(2));
        assert_eq!(tcam.lookup("10.9.9.9".parse().unwrap()), Some(1));
        assert_eq!(tcam.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn photonic_lpm_agrees_with_tcam() {
        let mut tcam = TcamModel::new(rules_basic());
        let mut plpm = PhotonicLpm::ideal(rules_basic());
        for addr in ["10.1.2.3", "10.1.9.9", "10.9.9.9", "11.0.0.1", "10.1.2.255"] {
            let a: Addr = addr.parse().unwrap();
            assert_eq!(plpm.lookup(a), tcam.lookup(a), "addr {addr}");
        }
    }

    #[test]
    fn photonic_lpm_agrees_on_random_tables() {
        let mut rng = SimRng::seed_from_u64(5);
        let rules = random_rules(24, &mut rng);
        let mut tcam = TcamModel::new(rules.clone());
        let mut plpm = PhotonicLpm::ideal(rules);
        for _ in 0..40 {
            let a = Addr(0x0A00_0000 | (rng.next_u64() as u32 & 0x00FF_FFFF));
            assert_eq!(plpm.lookup(a), tcam.lookup(a), "addr {a}");
        }
    }

    #[test]
    fn tcam_energy_scales_with_table_and_lookups() {
        let mut small = TcamModel::new(rules_basic());
        let mut rng = SimRng::seed_from_u64(6);
        let mut big = TcamModel::new(random_rules(100, &mut rng));
        let a: Addr = "10.1.2.3".parse().unwrap();
        small.lookup(a);
        big.lookup(a);
        assert!(big.energy_j() > 10.0 * small.energy_j());
        let one = big.energy_j();
        big.lookup(a);
        assert!((big.energy_j() - 2.0 * one).abs() < 1e-24);
    }

    #[test]
    fn default_route_rule_catches_everything() {
        let rules = vec![Rule {
            prefix: Prefix::default_route(),
            port: 9,
        }];
        let mut plpm = PhotonicLpm::ideal(rules);
        assert_eq!(plpm.lookup("1.2.3.4".parse().unwrap()), Some(9));
        assert_eq!(plpm.lookup("255.255.255.255".parse().unwrap()), Some(9));
    }

    #[test]
    fn lookup_counters_track() {
        let mut plpm = PhotonicLpm::ideal(rules_basic());
        plpm.lookup("10.1.2.3".parse().unwrap());
        plpm.lookup("10.9.9.9".parse().unwrap());
        assert_eq!(plpm.lookups, 2);
        assert!(plpm.symbols_matched() > 0);
        assert_eq!(plpm.rule_count(), 3);
    }
}
