//! XOR-parity erasure coding over WDM sub-batches.
//!
//! A protected batch is split into k data groups, each dispatched on
//! its own fiber path; one extra *parity* group carries the byte-wise
//! XOR of the k data payloads. Lose any single group to a fiber cut
//! and the missing payload is `parity ⊕ (surviving data)` — a purely
//! digital reconstruction at the front-end, no photonic re-execution.
//! The codec is byte-level and exact, so reconstruction is
//! deterministic and replayable: the recovered bytes are identical to
//! the bytes that would have arrived on the lost wavelength group.
//!
//! Operand payloads in the serving simulator are `f64` activations in
//! `[0, 1]` quantized from the 8-bit DAC grid (`k / 255`); see
//! [`quantize_bytes`]. XOR over those bytes round-trips exactly.

/// Quantize DAC-grid operands (`k / 255` values in `[0, 1]`) back to
/// their 8-bit codes — the byte representation the parity code runs
/// over.
pub fn quantize_bytes(operands: &[f64]) -> Vec<u8> {
    operands
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect()
}

/// Byte-wise XOR of all `groups` (shorter groups are zero-padded to the
/// longest). The returned parity payload reconstructs any single
/// missing group via [`reconstruct_group`].
pub fn encode_parity(groups: &[Vec<u8>]) -> Vec<u8> {
    let len = groups.iter().map(|g| g.len()).max().unwrap_or(0);
    let mut parity = vec![0u8; len];
    for g in groups {
        for (i, &b) in g.iter().enumerate() {
            parity[i] ^= b;
        }
    }
    parity
}

/// Recover the single missing group: `surviving` holds each group slot
/// with exactly one `None` (the lost one), `parity` is the payload from
/// [`encode_parity`], and `lost_len` is the original length of the lost
/// group (zero-padding is stripped back to it). Returns `None` unless
/// exactly one group is missing.
pub fn reconstruct_group(
    surviving: &[Option<&[u8]>],
    parity: &[u8],
    lost_len: usize,
) -> Option<Vec<u8>> {
    if surviving.iter().filter(|g| g.is_none()).count() != 1 {
        return None;
    }
    let mut out = parity.to_vec();
    for g in surviving.iter().flatten() {
        for (i, &b) in g.iter().enumerate() {
            if i < out.len() {
                out[i] ^= b;
            }
        }
    }
    out.truncate(lost_len);
    Some(out)
}

/// Split `n` items into `k` contiguous groups as evenly as possible:
/// returns the group sizes (first `n % k` groups get one extra).
/// `k` is clamped to `1..=n` for `n ≥ 1`; `n = 0` yields no groups.
pub fn split_groups(n: usize, k: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let base = n / k;
    let extra = n % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_reconstructs_any_single_lost_group() {
        let groups: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![250, 0], vec![9, 9, 9, 9]];
        let parity = encode_parity(&groups);
        for lost in 0..groups.len() {
            let surviving: Vec<Option<&[u8]>> = groups
                .iter()
                .enumerate()
                .map(|(i, g)| (i != lost).then_some(g.as_slice()))
                .collect();
            let rec = reconstruct_group(&surviving, &parity, groups[lost].len()).unwrap();
            assert_eq!(rec, groups[lost], "group {lost} round-trips");
        }
    }

    #[test]
    fn reconstruction_refuses_double_losses() {
        let groups: Vec<Vec<u8>> = vec![vec![1], vec![2], vec![3]];
        let parity = encode_parity(&groups);
        assert!(reconstruct_group(&[None, None, Some(&[3])], &parity, 1).is_none());
        let all: Vec<Option<&[u8]>> = groups.iter().map(|g| Some(g.as_slice())).collect();
        assert!(reconstruct_group(&all, &parity, 1).is_none());
    }

    #[test]
    fn dac_grid_operands_round_trip_through_bytes() {
        let ops: Vec<f64> = [0u8, 1, 17, 128, 254, 255]
            .iter()
            .map(|&k| k as f64 / 255.0)
            .collect();
        assert_eq!(quantize_bytes(&ops), vec![0, 1, 17, 128, 254, 255]);
    }

    #[test]
    fn split_groups_is_even_and_exhaustive() {
        assert_eq!(split_groups(10, 3), vec![4, 3, 3]);
        assert_eq!(split_groups(3, 3), vec![1, 1, 1]);
        assert_eq!(split_groups(2, 3), vec![1, 1], "k clamps to n");
        assert_eq!(split_groups(0, 3), Vec::<usize>::new());
        for n in 1..40 {
            for k in 1..8 {
                let g = split_groups(n, k);
                assert_eq!(g.iter().sum::<usize>(), n);
                assert!(g.iter().all(|&s| s >= 1));
            }
        }
    }
}
