//! The in-flight work ledger: deterministic arbitration of redundancy
//! sets.
//!
//! Every protected batch expands into a *redundancy set* of member
//! batches (two replica copies, or k data groups + 1 parity group).
//! The ledger is the single state machine that decides, for each
//! delivery and each loss, what the serving runtime must do:
//!
//! * replica: first delivery **completes** the set and cancels the
//!   still-pending sibling; a late sibling delivery is a suppressed
//!   **duplicate**; one loss is **absorbed**; losing both copies
//!   requeues the work.
//! * parity: each delivery **records** its own sub-batch; when exactly
//!   one data group was lost and every other member has delivered, the
//!   final delivery triggers digital **reconstruction** of the lost
//!   group; a second loss kills the set and requeues the lost data
//!   groups (work that already delivered stays delivered).
//!
//! Every transition is a pure function of (set state, event), with all
//! member sets ordered — no wall clock, no hash iteration — so the same
//! event sequence produces byte-identical decisions on any worker
//! count. The requeue path never drops or double-counts a request:
//! each lost member's stashed requests are requeued at most once
//! (`SetState::requeued` guards deaths discovered across multiple
//! loss events).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of redundancy a set uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetKind {
    /// Two identical copies; members 0 and 1.
    Replica,
    /// `data_members` data groups (members `0..k`) plus one parity
    /// group (member `k`).
    Parity {
        /// Number of data groups k.
        data_members: u8,
    },
}

impl SetKind {
    /// Total members in a set of this kind.
    pub fn members(&self) -> u8 {
        match self {
            SetKind::Replica => 2,
            SetKind::Parity { data_members } => data_members + 1,
        }
    }

    /// The parity member id, if this kind has one.
    pub fn parity_member(&self) -> Option<u8> {
        match self {
            SetKind::Replica => None,
            SetKind::Parity { data_members } => Some(*data_members),
        }
    }
}

/// What the runtime must do after a member delivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoneAction {
    /// First replica copy home: complete its requests and cancel the
    /// listed still-pending members (pre-launch cancels cost nothing;
    /// in-flight cancels only the already-spent energy).
    Complete {
        /// Members to cancel, ascending.
        cancel: Vec<u8>,
    },
    /// Late replica copy: outcomes already recorded, suppress.
    Duplicate,
    /// Parity member home: complete its own sub-batch (the parity
    /// group itself carries no requests).
    Record,
    /// Final surviving member home and exactly one data group was lost:
    /// complete this member's sub-batch and digitally reconstruct the
    /// lost member's from parity.
    RecordAndReconstruct {
        /// The lost data member whose stash is now recoverable.
        member: u8,
    },
}

/// What the runtime must do after a member is lost to a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LostAction {
    /// Redundancy absorbs the loss: stash the member's requests (a
    /// parity sibling may reconstruct them) and carry on.
    Absorbed,
    /// The lost data group was the *last* outstanding member — every
    /// sibling already delivered, so the k surviving groups suffice:
    /// reconstruct the stashed requests right now (no future delivery
    /// event will ever fire for this set).
    Reconstruct {
        /// The lost data member to reconstruct from parity.
        member: u8,
    },
    /// The set can no longer self-heal: requeue the stashed requests of
    /// the listed members (ascending), then drop the set's stashes.
    Requeue {
        /// Lost members whose stashed requests must re-enter admission.
        members: Vec<u8>,
    },
    /// The set already completed (or the member carries no requests):
    /// drop the stash, nothing to recover.
    AlreadyResolved,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SetState {
    kind: SetKind,
    delivered: BTreeSet<u8>,
    lost: BTreeSet<u8>,
    cancelled: BTreeSet<u8>,
    /// Lost members whose stashes were already requeued (guards double
    /// requeue when a dead set keeps losing members).
    requeued: BTreeSet<u8>,
    /// Replica only: a copy delivered, all work complete.
    complete: bool,
    /// Too many losses, the set cannot self-heal.
    dead: bool,
}

/// Deterministic ledger over all live redundancy sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkLedger {
    sets: BTreeMap<u64, SetState>,
}

impl WorkLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new redundancy set before its members dispatch.
    pub fn register(&mut self, set: u64, kind: SetKind) {
        let prev = self.sets.insert(
            set,
            SetState {
                kind,
                delivered: BTreeSet::new(),
                lost: BTreeSet::new(),
                cancelled: BTreeSet::new(),
                requeued: BTreeSet::new(),
                complete: false,
                dead: false,
            },
        );
        debug_assert!(prev.is_none(), "set {set} registered twice");
    }

    /// A member batch delivered its results.
    pub fn on_member_done(&mut self, set: u64, member: u8) -> DoneAction {
        let st = self.sets.get_mut(&set).expect("delivery for unknown set");
        match st.kind {
            SetKind::Replica => {
                if st.complete || st.cancelled.contains(&member) || st.dead {
                    st.delivered.insert(member);
                    return DoneAction::Duplicate;
                }
                st.complete = true;
                st.delivered.insert(member);
                let cancel: Vec<u8> = (0..st.kind.members())
                    .filter(|m| {
                        !st.delivered.contains(m)
                            && !st.lost.contains(m)
                            && !st.cancelled.contains(m)
                    })
                    .collect();
                st.cancelled.extend(cancel.iter().copied());
                DoneAction::Complete { cancel }
            }
            SetKind::Parity { data_members } => {
                st.delivered.insert(member);
                let lost_data: Vec<u8> = st
                    .lost
                    .iter()
                    .copied()
                    .filter(|&m| m < data_members)
                    .collect();
                let all_others_home =
                    st.delivered.len() + st.lost.len() == st.kind.members() as usize;
                if !st.dead && lost_data.len() == 1 && st.lost.len() == 1 && all_others_home {
                    st.complete = true;
                    DoneAction::RecordAndReconstruct {
                        member: lost_data[0],
                    }
                } else {
                    DoneAction::Record
                }
            }
        }
    }

    /// A member batch was lost (fiber cut or engine fault mid-flight).
    pub fn on_member_lost(&mut self, set: u64, member: u8) -> LostAction {
        let st = self.sets.get_mut(&set).expect("loss for unknown set");
        st.lost.insert(member);
        if st.complete {
            return LostAction::AlreadyResolved;
        }
        match st.kind {
            SetKind::Replica => {
                if st.lost.len() >= 2 {
                    st.dead = true;
                    // Both copies carry the same requests: requeue the
                    // lowest-id lost member's stash once, drop the rest.
                    let first = *st.lost.iter().next().expect("lost nonempty");
                    if st.requeued.insert(first) {
                        LostAction::Requeue {
                            members: vec![first],
                        }
                    } else {
                        LostAction::AlreadyResolved
                    }
                } else {
                    LostAction::Absorbed
                }
            }
            SetKind::Parity { data_members } => {
                if st.lost.len() == 1
                    && member < data_members
                    && st.delivered.len() == st.kind.members() as usize - 1
                {
                    // Every sibling already delivered: parity plus the
                    // surviving data groups reconstruct this one now.
                    st.complete = true;
                    return LostAction::Reconstruct { member };
                }
                if st.lost.len() >= 2 {
                    st.dead = true;
                    let members: Vec<u8> = st
                        .lost
                        .iter()
                        .copied()
                        .filter(|&m| m < data_members && !st.requeued.contains(&m))
                        .collect();
                    st.requeued.extend(members.iter().copied());
                    if members.is_empty() {
                        // Only the parity group (requestless) was newly
                        // lost — nothing to requeue.
                        LostAction::AlreadyResolved
                    } else {
                        LostAction::Requeue { members }
                    }
                } else {
                    LostAction::Absorbed
                }
            }
        }
    }

    /// The kind of a registered set, if any.
    pub fn kind(&self, set: u64) -> Option<SetKind> {
        self.sets.get(&set).map(|s| s.kind)
    }

    /// True when every member of `set` has a terminal disposition
    /// (delivered, lost, or cancelled).
    pub fn is_settled(&self, set: u64) -> bool {
        self.sets.get(&set).is_some_and(|st| {
            let mut seen = st.delivered.clone();
            seen.extend(st.lost.iter().copied());
            seen.extend(st.cancelled.iter().copied());
            seen.len() == st.kind.members() as usize
        })
    }

    /// Sets not yet settled, ascending — the end-of-run invariant
    /// (`unsettled_sets().is_empty()`) says no member batch vanished
    /// without a delivery, loss, or cancellation.
    pub fn unsettled_sets(&self) -> Vec<u64> {
        self.sets
            .keys()
            .copied()
            .filter(|&s| !self.is_settled(s))
            .collect()
    }

    /// Number of registered sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no set was ever registered.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_first_home_wins_and_cancels_the_sibling() {
        let mut led = WorkLedger::new();
        led.register(7, SetKind::Replica);
        assert_eq!(
            led.on_member_done(7, 1),
            DoneAction::Complete { cancel: vec![0] }
        );
        // A stale delivery of the cancelled copy is suppressed.
        assert_eq!(led.on_member_done(7, 0), DoneAction::Duplicate);
        assert!(led.is_settled(7));
    }

    #[test]
    fn replica_absorbs_one_loss_and_requeues_on_two() {
        let mut led = WorkLedger::new();
        led.register(1, SetKind::Replica);
        assert_eq!(led.on_member_lost(1, 0), LostAction::Absorbed);
        assert_eq!(
            led.on_member_lost(1, 1),
            LostAction::Requeue { members: vec![0] }
        );
        assert!(led.is_settled(1));
    }

    #[test]
    fn replica_loss_after_completion_is_moot() {
        let mut led = WorkLedger::new();
        led.register(2, SetKind::Replica);
        led.on_member_done(2, 0);
        assert_eq!(led.on_member_lost(2, 1), LostAction::AlreadyResolved);
    }

    #[test]
    fn replica_survivor_completes_after_sibling_loss() {
        let mut led = WorkLedger::new();
        led.register(3, SetKind::Replica);
        assert_eq!(led.on_member_lost(3, 1), LostAction::Absorbed);
        // The surviving copy completes; nothing left to cancel.
        assert_eq!(
            led.on_member_done(3, 0),
            DoneAction::Complete { cancel: vec![] }
        );
        assert!(led.is_settled(3));
    }

    #[test]
    fn parity_reconstructs_a_single_lost_data_group() {
        let mut led = WorkLedger::new();
        led.register(4, SetKind::Parity { data_members: 3 });
        assert_eq!(led.on_member_done(4, 0), DoneAction::Record);
        assert_eq!(led.on_member_lost(4, 1), LostAction::Absorbed);
        assert_eq!(led.on_member_done(4, 2), DoneAction::Record);
        // Parity group is the last one home: reconstruction fires.
        assert_eq!(
            led.on_member_done(4, 3),
            DoneAction::RecordAndReconstruct { member: 1 }
        );
        assert!(led.is_settled(4));
    }

    #[test]
    fn parity_member_loss_alone_needs_no_recovery() {
        let mut led = WorkLedger::new();
        led.register(5, SetKind::Parity { data_members: 2 });
        assert_eq!(led.on_member_lost(5, 2), LostAction::Absorbed);
        assert_eq!(led.on_member_done(5, 0), DoneAction::Record);
        assert_eq!(led.on_member_done(5, 1), DoneAction::Record);
        assert!(led.is_settled(5));
    }

    #[test]
    fn parity_double_loss_requeues_only_lost_data() {
        let mut led = WorkLedger::new();
        led.register(6, SetKind::Parity { data_members: 3 });
        assert_eq!(led.on_member_lost(6, 3), LostAction::Absorbed); // parity
        assert_eq!(
            led.on_member_lost(6, 0),
            LostAction::Requeue { members: vec![0] }
        );
        // Surviving data groups still deliver and count.
        assert_eq!(led.on_member_done(6, 1), DoneAction::Record);
        // A third loss requeues only the newly lost member.
        assert_eq!(
            led.on_member_lost(6, 2),
            LostAction::Requeue { members: vec![2] }
        );
        assert!(led.is_settled(6));
    }

    #[test]
    fn parity_two_data_losses_requeue_both_once() {
        let mut led = WorkLedger::new();
        led.register(8, SetKind::Parity { data_members: 2 });
        assert_eq!(led.on_member_lost(8, 0), LostAction::Absorbed);
        assert_eq!(
            led.on_member_lost(8, 1),
            LostAction::Requeue {
                members: vec![0, 1]
            }
        );
        // Parity delivering afterwards records nothing harmful.
        assert_eq!(led.on_member_done(8, 2), DoneAction::Record);
        assert!(led.is_settled(8));
    }

    #[test]
    fn parity_loss_after_all_others_delivered_reconstructs_immediately() {
        let mut led = WorkLedger::new();
        led.register(9, SetKind::Parity { data_members: 2 });
        assert_eq!(led.on_member_done(9, 0), DoneAction::Record);
        assert_eq!(led.on_member_done(9, 2), DoneAction::Record); // parity home
                                                                  // The last outstanding member dies in flight: no delivery event
                                                                  // remains to trigger recovery, so the loss itself must.
        assert_eq!(
            led.on_member_lost(9, 1),
            LostAction::Reconstruct { member: 1 }
        );
        assert!(led.is_settled(9));
        assert_eq!(led.on_member_lost(9, 1), LostAction::AlreadyResolved);
    }

    #[test]
    fn parity_member_lost_last_needs_no_reconstruction() {
        let mut led = WorkLedger::new();
        led.register(12, SetKind::Parity { data_members: 2 });
        assert_eq!(led.on_member_done(12, 0), DoneAction::Record);
        assert_eq!(led.on_member_done(12, 1), DoneAction::Record);
        // The parity group carries no requests: its loss is absorbed
        // even as the final member.
        assert_eq!(led.on_member_lost(12, 2), LostAction::Absorbed);
        assert!(led.is_settled(12));
    }

    #[test]
    fn unsettled_sets_flag_members_in_flight() {
        let mut led = WorkLedger::new();
        led.register(10, SetKind::Replica);
        led.register(11, SetKind::Replica);
        led.on_member_done(10, 0);
        assert_eq!(led.unsettled_sets(), vec![11]);
        led.on_member_lost(11, 0);
        led.on_member_lost(11, 1);
        assert!(led.unsettled_sets().is_empty());
        assert_eq!(led.len(), 2);
    }
}
