//! # ofpc-resil — proactive multipath resilience
//!
//! PR 2's fault story is *reactive*: detect a fiber cut, reconverge,
//! re-allocate — and every cut still loses the work that was in flight,
//! surfacing as `degraded`/`shed` outcomes. This crate moves the story
//! to *proactive*: place redundant copies of a request's computation
//! across link-disjoint fiber paths **before** any fault, so a cut
//! loses a copy, never the work.
//!
//! * [`mode`] — the per-tenant [`RedundancyMode`] policy (full replica
//!   vs XOR-parity erasure coding over WDM sub-batches) and the
//!   [`ResilTag`] that pins a redundant batch to its path and set.
//! * [`multipath`] — the placement planner: greedy pairwise
//!   link-disjoint routes from the serving front-end to the compute
//!   sites (built on `ofpc_net::routing::k_disjoint_paths` /
//!   `ofpc_controller::protection`), with graceful degradation when the
//!   topology is a tree ([`multipath::MultipathPlan::protection_mode`]).
//! * [`parity`] — the byte-level XOR codec: one parity group over k
//!   data groups reconstructs any single lost group digitally.
//! * [`ledger`] — the deterministic in-flight work ledger: first valid
//!   replica wins, the late duplicate is cancelled, single lost parity
//!   groups reconstruct at the k-th delivery, double losses requeue —
//!   every transition a pure state-machine step, so the whole recovery
//!   dance replays byte-identically on the `ofpc-par` worker pool.
//! * [`overhead`] — redundancy overhead accounting through whatever
//!   batch price model the caller supplies (the serving layer passes
//!   its transponder-derived `ServiceModel`), plus the digital
//!   reconstruction cost model.

pub mod ledger;
pub mod mode;
pub mod multipath;
pub mod overhead;
pub mod parity;

pub use ledger::{DoneAction, LostAction, SetKind, WorkLedger};
pub use mode::{RedundancyMode, ResilTag};
pub use multipath::{MultipathPlan, SiteRoute};
pub use overhead::{energy_factor_with, ReconstructModel};
pub use parity::{encode_parity, quantize_bytes, reconstruct_group, split_groups};
