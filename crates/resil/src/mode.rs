//! Redundancy policy and the tag that rides on every redundant batch.
//!
//! A tenant picks one [`RedundancyMode`] at admission:
//!
//! * `Unprotected` — today's behaviour; a fiber cut mid-flight costs
//!   the batch (degraded digital fallback or shed).
//! * `Replica` — the whole batch is dispatched twice, on link-disjoint
//!   paths. First valid result wins; the duplicate is cancelled.
//!   Deterministic, simple, ≈2× energy.
//! * `XorParity { data_groups }` — the batch is split into
//!   `data_groups` WDM sub-batches plus one XOR-parity group, each on
//!   its own path. Any single lost group is reconstructed digitally
//!   from the surviving k groups, for ≈(k+1)/k energy.
//!
//! Redundant batches carry a [`ResilTag`] naming their redundancy set,
//! member index, and pinned entry path, so the scheduler can place them
//! disjointly and the [`crate::ledger::WorkLedger`] can arbitrate
//! completions deterministically.

use ofpc_net::NodeId;
use serde::{Deserialize, Serialize};

/// Per-tenant redundancy policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedundancyMode {
    /// No redundancy: the existing reactive fault path applies.
    Unprotected,
    /// Full duplication across two link-disjoint paths.
    Replica,
    /// XOR-parity erasure coding: `data_groups` data sub-batches plus
    /// one parity group, each on its own path.
    XorParity {
        /// Number of data groups k (parity adds one more member).
        data_groups: u8,
    },
}

impl RedundancyMode {
    /// Stable small integer for keying batches by mode (batcher must
    /// never mix requests of different modes in one batch).
    pub fn rank(&self) -> u8 {
        match self {
            RedundancyMode::Unprotected => 0,
            RedundancyMode::Replica => 1,
            RedundancyMode::XorParity { data_groups } => 2 + *data_groups,
        }
    }

    /// True when this mode spawns redundancy sets.
    pub fn is_protected(&self) -> bool {
        !matches!(self, RedundancyMode::Unprotected)
    }

    /// Number of set members a batch of `batch_len` requests expands
    /// into: replica = 2 copies; parity = min(k, batch_len) data groups
    /// plus 1 parity group (a 1-request batch degenerates to 1+1, i.e.
    /// a replica in coding clothes).
    pub fn members(&self, batch_len: usize) -> usize {
        match self {
            RedundancyMode::Unprotected => 1,
            RedundancyMode::Replica => 2,
            RedundancyMode::XorParity { data_groups } => {
                let k = (*data_groups as usize).clamp(1, batch_len.max(1));
                k + 1
            }
        }
    }

    /// Minimum path diversity this mode wants for full protection:
    /// surviving any single fiber cut needs ≥ 2 link-disjoint paths.
    pub fn paths_wanted(&self) -> usize {
        match self {
            RedundancyMode::Unprotected => 1,
            _ => 2,
        }
    }
}

/// Tag carried by each member batch of a redundancy set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilTag {
    /// Redundancy set id (unique per run, allocation order).
    pub set: u64,
    /// Member index within the set (replica: 0/1; parity: data groups
    /// 0..k-1, parity group = k).
    pub member: u8,
    /// Compute site this member is pinned to (disjoint-path entry).
    pub pin: NodeId,
    /// Work the member prices but does not carry as requests — the
    /// parity group's synthetic request count (0 for data/replica
    /// members). Keeps transponder energy/latency pricing honest for
    /// batches whose payload is coded, not raw.
    pub phantom: u32,
    /// Deadline inherited from the set's tightest request, ps.
    pub deadline_ps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_separate_modes_for_batching() {
        let modes = [
            RedundancyMode::Unprotected,
            RedundancyMode::Replica,
            RedundancyMode::XorParity { data_groups: 2 },
            RedundancyMode::XorParity { data_groups: 3 },
        ];
        let ranks: Vec<u8> = modes.iter().map(|m| m.rank()).collect();
        let mut dedup = ranks.clone();
        dedup.dedup();
        assert_eq!(ranks, dedup, "distinct modes key distinct batches");
    }

    #[test]
    fn member_counts_follow_the_mode() {
        assert_eq!(RedundancyMode::Unprotected.members(8), 1);
        assert_eq!(RedundancyMode::Replica.members(8), 2);
        assert_eq!(RedundancyMode::XorParity { data_groups: 3 }.members(8), 4);
        // A parity batch smaller than k degenerates gracefully.
        assert_eq!(RedundancyMode::XorParity { data_groups: 3 }.members(2), 3);
        assert_eq!(RedundancyMode::XorParity { data_groups: 3 }.members(1), 2);
    }

    #[test]
    fn protected_modes_want_two_paths() {
        assert_eq!(RedundancyMode::Unprotected.paths_wanted(), 1);
        assert_eq!(RedundancyMode::Replica.paths_wanted(), 2);
        assert_eq!(
            RedundancyMode::XorParity { data_groups: 3 }.paths_wanted(),
            2
        );
    }
}
