//! Redundancy overhead accounting.
//!
//! Redundant members are priced by the *same* transponder-derived
//! service model as primary work — a replica copy is a real batch on a
//! real slot, a parity group is a real sub-batch plus one coded group.
//! This module predicts the resulting overhead factor for any additive
//! per-batch cost function (the serving layer passes a closure over
//! `ServiceModel::batch_service`), and prices the one genuinely new
//! operation: digital XOR reconstruction at the front-end.

use crate::mode::RedundancyMode;
use crate::parity::split_groups;
use serde::{Deserialize, Serialize};

/// Predicted protected-to-unprotected cost factor for a batch of
/// `batch_len` requests under `mode`, where `price(n)` is any additive
/// batch cost (energy in J, or service time in ps) of an `n`-request
/// batch from the deployment's transponder price model.
///
/// Replica prices two full copies; parity prices the k data sub-batches
/// plus one parity group sized like the largest sub-batch. Per-batch
/// fixed costs (engine settle, laser supply during reconfig) are why
/// the parity factor sits *above* the ideal `(k+1)/k`.
pub fn energy_factor_with(
    price: &dyn Fn(usize) -> f64,
    mode: RedundancyMode,
    batch_len: usize,
) -> f64 {
    let base = price(batch_len);
    if base <= 0.0 || batch_len == 0 {
        return 1.0;
    }
    match mode {
        RedundancyMode::Unprotected => 1.0,
        RedundancyMode::Replica => 2.0 * price(batch_len) / base,
        RedundancyMode::XorParity { data_groups } => {
            let groups = split_groups(batch_len, data_groups as usize);
            let parity_len = groups.iter().copied().max().unwrap_or(0);
            let total: f64 = groups.iter().map(|&g| price(g)).sum::<f64>() + price(parity_len);
            total / base
        }
    }
}

/// Cost model for digital XOR reconstruction of a lost parity group at
/// the serving front-end (a memory-bandwidth-bound pass over the
/// surviving payloads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructModel {
    /// Fixed software/bookkeeping overhead per reconstruction, ps.
    pub fixed_ps: u64,
    /// Time per XORed byte, ps (all surviving groups stream once).
    pub per_byte_ps: u64,
    /// Energy per XORed byte, J (DRAM traffic dominated).
    pub per_byte_j: f64,
}

impl Default for ReconstructModel {
    fn default() -> Self {
        ReconstructModel {
            fixed_ps: 50_000,  // 50 ns of software dispatch
            per_byte_ps: 100,  // ≈10 GB/s effective XOR bandwidth
            per_byte_j: 2e-11, // ≈20 pJ/byte of memory traffic
        }
    }
}

impl ReconstructModel {
    /// Latency (ps) and energy (J) to reconstruct a group when `bytes`
    /// total bytes of surviving payload must be XORed.
    pub fn cost(&self, bytes: usize) -> (u64, f64) {
        (
            self.fixed_ps + self.per_byte_ps * bytes as u64,
            self.per_byte_j * bytes as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_prices_exactly_two_copies() {
        let price = |n: usize| 5.0 + n as f64; // fixed + per-request
        let f = energy_factor_with(&price, RedundancyMode::Replica, 8);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parity_factor_sits_between_ideal_and_replica() {
        let price = |n: usize| 1.0 + n as f64;
        let mode = RedundancyMode::XorParity { data_groups: 3 };
        let f = energy_factor_with(&price, mode, 9);
        // Ideal (k+1)/k = 4/3; fixed per-batch cost pushes it up, but a
        // 9-request batch stays well under replica's 2×.
        assert!(f > 4.0 / 3.0, "fixed costs push above ideal: {f}");
        assert!(f < 2.0, "parity beats replica: {f}");
    }

    #[test]
    fn fixed_cost_free_parity_hits_the_ideal_factor() {
        let price = |n: usize| n as f64;
        let mode = RedundancyMode::XorParity { data_groups: 3 };
        let f = energy_factor_with(&price, mode, 9);
        assert!((f - 4.0 / 3.0).abs() < 1e-12, "pure per-request: {f}");
    }

    #[test]
    fn unprotected_is_free_and_degenerate_inputs_are_safe() {
        let price = |n: usize| n as f64;
        assert_eq!(
            energy_factor_with(&price, RedundancyMode::Unprotected, 8),
            1.0
        );
        assert_eq!(energy_factor_with(&price, RedundancyMode::Replica, 0), 1.0);
    }

    #[test]
    fn reconstruction_cost_scales_with_bytes() {
        let m = ReconstructModel::default();
        let (t0, e0) = m.cost(0);
        let (t1, e1) = m.cost(4096);
        assert_eq!(t0, m.fixed_ps);
        assert_eq!(e0, 0.0);
        assert_eq!(t1, m.fixed_ps + 4096 * m.per_byte_ps);
        assert!(e1 > 0.0);
    }
}
