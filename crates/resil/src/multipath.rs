//! Multipath placement planning: link-disjoint routes from the serving
//! front-end to the compute sites.
//!
//! The planner is greedy and deterministic: sites are routed in the
//! order given, each preferring a route that shares no fiber with any
//! route already selected. When the topology cannot offer another
//! disjoint route (a tree, or a site stranded behind the same span),
//! the planner degrades gracefully — the site still gets its shortest
//! route, just flagged non-disjoint — and
//! [`MultipathPlan::protection_mode`] reports what level of protection
//! is actually achievable so the serving layer can fall back to
//! serialized-same-path replication or a declared-unprotected downgrade
//! instead of silently promising diversity it does not have.

use ofpc_controller::ProtectionMode;
use ofpc_net::routing::{shortest_route_filtered, RoutedPath};
use ofpc_net::{LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One planned route from the front-end to a compute site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRoute {
    /// The compute site this route lands on.
    pub node: NodeId,
    /// The fiber route from the front-end to `node`.
    pub route: RoutedPath,
    /// True when this route shares no link with any earlier route in
    /// the plan (the disjointness the redundancy layer relies on).
    pub disjoint: bool,
}

/// Link-disjoint route plan from one front-end to a set of sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultipathPlan {
    /// The serving front-end all routes originate from.
    pub front_end: NodeId,
    /// Per-site routes, in the site order given to [`MultipathPlan::plan`];
    /// unreachable sites are dropped.
    pub routes: Vec<SiteRoute>,
}

impl MultipathPlan {
    /// Plan routes from `front_end` to each of `sites`, greedily
    /// preferring link-disjoint routes. Sites unreachable even over the
    /// full topology are omitted from the plan.
    pub fn plan(topo: &Topology, front_end: NodeId, sites: &[NodeId]) -> MultipathPlan {
        let mut used: BTreeSet<LinkId> = BTreeSet::new();
        let mut routes = Vec::new();
        for &node in sites {
            let disjoint_route =
                shortest_route_filtered(topo, front_end, node, &|l| !used.contains(&l));
            let (route, disjoint) = match disjoint_route {
                Some(r) => (r, true),
                None => match shortest_route_filtered(topo, front_end, node, &|_| true) {
                    Some(r) => (r, false),
                    None => continue, // unreachable outright
                },
            };
            for &l in &route.links {
                used.insert(l);
            }
            routes.push(SiteRoute {
                node,
                route,
                disjoint,
            });
        }
        MultipathPlan { front_end, routes }
    }

    /// Number of pairwise link-disjoint routes in the plan.
    pub fn diversity(&self) -> usize {
        self.routes.iter().filter(|r| r.disjoint).count()
    }

    /// What the redundancy layer can honestly promise on this plan:
    /// ≥ 2 disjoint routes → true disjoint multipath; exactly 1 route
    /// worth of diversity → serialized same-path replication (survives
    /// engine faults and transient cuts, not a severed shared span);
    /// no routes at all → unprotected.
    pub fn protection_mode(&self) -> ProtectionMode {
        if self.diversity() >= 2 {
            ProtectionMode::DisjointMultipath
        } else if !self.routes.is_empty() {
            ProtectionMode::SerializedSamePath
        } else {
            ProtectionMode::Unprotected
        }
    }

    /// Indices (into `routes`) of routes currently usable: every link
    /// on the route is up. Deterministic order (plan order).
    pub fn up_routes(&self, down: &BTreeSet<LinkId>) -> Vec<usize> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.route.links.iter().any(|l| down.contains(l)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The route landing on `node`, if planned.
    pub fn route_to(&self, node: NodeId) -> Option<&SiteRoute> {
        self.routes.iter().find(|r| r.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub-and-spoke: front-end 0, sites 1..=n each on its own span.
    fn star(n: usize) -> Topology {
        let mut t = Topology::new();
        let hub = t.add_node("fe");
        for i in 0..n {
            let s = t.add_node(format!("site{i}"));
            t.add_link(hub, s, 10.0);
        }
        t
    }

    #[test]
    fn star_routes_are_all_disjoint() {
        let topo = star(4);
        let sites: Vec<NodeId> = (1u32..=4).map(NodeId).collect();
        let plan = MultipathPlan::plan(&topo, NodeId(0), &sites);
        assert_eq!(plan.routes.len(), 4);
        assert_eq!(plan.diversity(), 4);
        assert_eq!(plan.protection_mode(), ProtectionMode::DisjointMultipath);
        // Pairwise disjoint in fact, not just by flag.
        for i in 0..plan.routes.len() {
            for j in i + 1..plan.routes.len() {
                assert!(!plan.routes[i].route.shares_link_with(&plan.routes[j].route));
            }
        }
    }

    #[test]
    fn line_degrades_to_serialized_same_path() {
        // 0 - 1 - 2: both sites sit behind the same first span, so only
        // the first route can be disjoint; the plan says so.
        let topo = Topology::line(3, 10.0);
        let plan = MultipathPlan::plan(&topo, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(plan.routes.len(), 2);
        assert_eq!(plan.diversity(), 1);
        assert_eq!(plan.protection_mode(), ProtectionMode::SerializedSamePath);
        assert!(plan.routes[0].disjoint);
        assert!(!plan.routes[1].disjoint);
    }

    #[test]
    fn unreachable_sites_are_dropped() {
        let mut topo = star(2);
        let island = topo.add_node("island");
        let plan = MultipathPlan::plan(&topo, NodeId(0), &[NodeId(1), island]);
        assert_eq!(plan.routes.len(), 1);
        assert!(plan.route_to(island).is_none());
        let empty = MultipathPlan::plan(&topo, island, &[NodeId(1), NodeId(2)]);
        assert_eq!(empty.protection_mode(), ProtectionMode::Unprotected);
    }

    #[test]
    fn up_routes_tracks_downed_fibers() {
        let topo = star(3);
        let sites: Vec<NodeId> = (1u32..=3).map(NodeId).collect();
        let plan = MultipathPlan::plan(&topo, NodeId(0), &sites);
        let mut down = BTreeSet::new();
        assert_eq!(plan.up_routes(&down), vec![0, 1, 2]);
        down.insert(plan.routes[1].route.links[0]);
        assert_eq!(plan.up_routes(&down), vec![0, 2]);
    }

    #[test]
    fn ring_offers_two_disjoint_routes_to_one_site() {
        // On a ring, the same site listed twice gets the clockwise and
        // counter-clockwise routes — true multipath to a single engine.
        let topo = Topology::ring(5, 10.0);
        let plan = MultipathPlan::plan(&topo, NodeId(0), &[NodeId(2), NodeId(2)]);
        assert_eq!(plan.diversity(), 2);
        assert_eq!(plan.protection_mode(), ProtectionMode::DisjointMultipath);
        assert!(!plan.routes[0].route.shares_link_with(&plan.routes[1].route));
    }
}
