//! The dataflow IR: typed ops with tensor shapes and precision
//! requirements, connected by edges that carry data volumes.
//!
//! A [`WorkGraph`] describes one Table-1 application as the compiler
//! sees it — *what* must be computed and to *how many effective bits*,
//! with no commitment yet to photonic vs digital execution or to any
//! site. Ops map onto the repo's engine primitives (P1 MVM, P2
//! correlate/match/compare, P3 nonlinear) plus an explicit digital op
//! for work that never had a photonic form (framing, decision logic).
//! Builders at the bottom construct the Table-1 app graphs, starting
//! with the DNN chain derived from [`ofpc_engine::dnn::Mlp`].

use ofpc_engine::dnn::Mlp;
use ofpc_engine::Primitive;
use serde::{Deserialize, Serialize};

/// Node identifier within one [`WorkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

/// A typed operation with its tensor shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Matrix-vector multiply, `rows × cols` (P1 on WDM lanes).
    Mvm { rows: usize, cols: usize },
    /// Element-wise nonlinear activation over `width` values (P3).
    Nonlinear { width: usize },
    /// Sliding correlation of a `pattern_len` template over a `window`
    /// sample stream (P2).
    Correlate { pattern_len: usize, window: usize },
    /// Block pattern match against a `pattern_len` template (P2).
    Match { pattern_len: usize },
    /// Threshold/compare reduction over `width` values (P2 physics).
    Compare { width: usize },
    /// Digital-only work: `macs` multiply-accumulates taking `input_len`
    /// values to `output_len` (framing, decision logic, fallback).
    Digital {
        input_len: usize,
        output_len: usize,
        macs: u64,
    },
}

impl OpKind {
    /// Elements consumed per invocation.
    pub fn input_elems(&self) -> usize {
        match *self {
            OpKind::Mvm { cols, .. } => cols,
            OpKind::Nonlinear { width } => width,
            OpKind::Correlate { window, .. } => window,
            OpKind::Match { pattern_len } => pattern_len,
            OpKind::Compare { width } => width,
            OpKind::Digital { input_len, .. } => input_len,
        }
    }

    /// Elements produced per invocation.
    pub fn output_elems(&self) -> usize {
        match *self {
            OpKind::Mvm { rows, .. } => rows,
            OpKind::Nonlinear { width } => width,
            OpKind::Correlate {
                pattern_len,
                window,
            } => window + 1 - pattern_len.min(window),
            OpKind::Match { .. } | OpKind::Compare { .. } => 1,
            OpKind::Digital { output_len, .. } => output_len,
        }
    }

    /// Multiply-accumulate (or equivalent op) count per invocation.
    pub fn macs(&self) -> u64 {
        match *self {
            OpKind::Mvm { rows, cols } => (rows * cols) as u64,
            OpKind::Nonlinear { width } => width as u64,
            OpKind::Correlate {
                pattern_len,
                window,
            } => (pattern_len * (window + 1 - pattern_len.min(window))) as u64,
            OpKind::Match { pattern_len } => pattern_len as u64,
            OpKind::Compare { width } => width as u64,
            OpKind::Digital { macs, .. } => macs,
        }
    }

    /// The photonic primitive that can execute this op, if any.
    pub fn primitive(&self) -> Option<Primitive> {
        match self {
            OpKind::Mvm { .. } => Some(Primitive::VectorDotProduct),
            OpKind::Nonlinear { .. } => Some(Primitive::NonlinearFunction),
            OpKind::Correlate { .. } | OpKind::Match { .. } | OpKind::Compare { .. } => {
                Some(Primitive::PatternMatching)
            }
            OpKind::Digital { .. } => None,
        }
    }

    /// Short label for telemetry spans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Mvm { .. } => "mvm",
            OpKind::Nonlinear { .. } => "nonlinear",
            OpKind::Correlate { .. } => "correlate",
            OpKind::Match { .. } => "match",
            OpKind::Compare { .. } => "compare",
            OpKind::Digital { .. } => "digital",
        }
    }
}

/// One op with its precision requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    pub id: OpId,
    pub kind: OpKind,
    /// Minimum effective bits the op's result must carry. Lowering runs
    /// the op photonically only if the error budget predicts at least
    /// this resolution at the op's operand length.
    pub min_bits: f64,
}

/// A dataflow edge carrying `bytes` of data per invocation (8-bit wire
/// encoding of the producer's output elements unless overridden).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataEdge {
    pub from: OpId,
    pub to: OpId,
    pub bytes: u64,
}

/// A dataflow graph for one application request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkGraph {
    pub name: String,
    pub nodes: Vec<OpNode>,
    pub edges: Vec<DataEdge>,
}

/// Why a graph failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has a dependency cycle.
    Cyclic,
    /// An edge references an op the graph does not contain.
    DanglingEdge { from: OpId, to: OpId },
    /// Consecutive ops disagree on tensor width: `from` produces
    /// `produced` elements but `to` consumes `consumed`.
    ShapeMismatch {
        from: OpId,
        to: OpId,
        produced: usize,
        consumed: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cyclic => write!(f, "graph has a dependency cycle"),
            GraphError::DanglingEdge { from, to } => {
                write!(f, "edge {}→{} references an unknown op", from.0, to.0)
            }
            GraphError::ShapeMismatch {
                from,
                to,
                produced,
                consumed,
            } => write!(
                f,
                "shape mismatch on {}→{}: {produced} produced, {consumed} consumed",
                from.0, to.0
            ),
        }
    }
}

impl WorkGraph {
    pub fn new(name: &str) -> Self {
        WorkGraph {
            name: name.to_string(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Append an op; returns its id.
    pub fn add_op(&mut self, kind: OpKind, min_bits: f64) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(OpNode { id, kind, min_bits });
        id
    }

    /// Connect `from → to`, carrying the producer's output at 8 bits per
    /// element.
    pub fn connect(&mut self, from: OpId, to: OpId) {
        let bytes = self
            .node(from)
            .map(|n| n.kind.output_elems() as u64)
            .unwrap_or(0);
        self.edges.push(DataEdge { from, to, bytes });
    }

    pub fn node(&self, id: OpId) -> Option<&OpNode> {
        self.nodes.get(id.0 as usize)
    }

    /// Build a linear chain `ops[0] → ops[1] → …` in one call.
    pub fn chain(name: &str, ops: &[(OpKind, f64)]) -> Self {
        let mut g = WorkGraph::new(name);
        let mut prev: Option<OpId> = None;
        for &(kind, min_bits) in ops {
            let id = g.add_op(kind, min_bits);
            if let Some(p) = prev {
                g.connect(p, id);
            }
            prev = Some(id);
        }
        g
    }

    /// Total bytes moved across all edges per invocation.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Total MACs per invocation.
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.macs()).sum()
    }

    /// Topological order of op indices (Kahn, smallest-index-first for
    /// determinism), or `None` on a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            if (e.to.0 as usize) < n {
                indegree[e.to.0 as usize] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            order.push(i);
            let mut unlocked = Vec::new();
            for e in &self.edges {
                if e.from.0 as usize == i {
                    let t = e.to.0 as usize;
                    indegree[t] -= 1;
                    if indegree[t] == 0 {
                        unlocked.push(t);
                    }
                }
            }
            unlocked.sort_unstable();
            for u in unlocked {
                let pos = ready.partition_point(|&r| r < u);
                ready.insert(pos, u);
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Validate the graph: acyclic, edges resolve, and every edge's
    /// producer/consumer agree on tensor width.
    pub fn validate(&self) -> Result<(), GraphError> {
        for e in &self.edges {
            let (Some(from), Some(to)) = (self.node(e.from), self.node(e.to)) else {
                return Err(GraphError::DanglingEdge {
                    from: e.from,
                    to: e.to,
                });
            };
            let produced = from.kind.output_elems();
            let consumed = to.kind.input_elems();
            if produced != consumed {
                return Err(GraphError::ShapeMismatch {
                    from: e.from,
                    to: e.to,
                    produced,
                    consumed,
                });
            }
        }
        if self.topo_order().is_none() {
            return Err(GraphError::Cyclic);
        }
        Ok(())
    }
}

/// The DNN-inference graph of an [`Mlp`]: per layer an MVM plus (for
/// hidden layers) a P3 activation of matching width. Hidden stages
/// tolerate `hidden_bits` effective bits; the output layer demands
/// `output_bits` (classification margins live there).
pub fn dnn_graph(mlp: &Mlp, hidden_bits: f64, output_bits: f64) -> WorkGraph {
    let mut ops = Vec::new();
    let n_layers = mlp.layers.len();
    for (li, layer) in mlp.layers.iter().enumerate() {
        let last = li + 1 == n_layers;
        ops.push((
            OpKind::Mvm {
                rows: layer.out_dim(),
                cols: layer.in_dim(),
            },
            if last { output_bits } else { hidden_bits },
        ));
        if !last {
            ops.push((
                OpKind::Nonlinear {
                    width: layer.out_dim(),
                },
                hidden_bits,
            ));
        }
    }
    WorkGraph::chain("dnn-inference", &ops)
}

/// The Table-1 intrusion-detection shape: digital framing, a sliding
/// correlation against the signature, and a threshold compare.
pub fn correlation_graph(window: usize, pattern_len: usize, bits: f64) -> WorkGraph {
    assert!(
        pattern_len >= 1 && window >= pattern_len,
        "window must cover the pattern"
    );
    let scores = window + 1 - pattern_len;
    WorkGraph::chain(
        "correlation-detect",
        &[
            (
                OpKind::Digital {
                    input_len: window,
                    output_len: window,
                    macs: window as u64,
                },
                bits,
            ),
            (
                OpKind::Correlate {
                    pattern_len,
                    window,
                },
                bits,
            ),
            (OpKind::Compare { width: scores }, bits),
        ],
    )
}

/// The Table-1 IP-routing shape: a photonic block match followed by a
/// one-value digital decision.
pub fn pattern_match_graph(pattern_len: usize, bits: f64) -> WorkGraph {
    WorkGraph::chain(
        "pattern-match",
        &[
            (OpKind::Match { pattern_len }, bits),
            (
                OpKind::Digital {
                    input_len: 1,
                    output_len: 1,
                    macs: 8,
                },
                bits,
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_photonics::SimRng;

    #[test]
    fn chain_shapes_and_volumes() {
        let g = WorkGraph::chain(
            "t",
            &[
                (OpKind::Mvm { rows: 6, cols: 4 }, 4.0),
                (OpKind::Nonlinear { width: 6 }, 4.0),
            ],
        );
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].bytes, 6); // 6 outputs × 8-bit encoding
        g.validate().expect("valid chain");
        assert_eq!(g.total_macs(), 24 + 6);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let g = WorkGraph::chain(
            "bad",
            &[
                (OpKind::Mvm { rows: 6, cols: 4 }, 4.0),
                (OpKind::Nonlinear { width: 5 }, 4.0),
            ],
        );
        match g.validate() {
            Err(GraphError::ShapeMismatch {
                produced, consumed, ..
            }) => {
                assert_eq!((produced, consumed), (6, 5));
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = WorkGraph::new("cyc");
        let a = g.add_op(OpKind::Nonlinear { width: 4 }, 4.0);
        let b = g.add_op(OpKind::Nonlinear { width: 4 }, 4.0);
        g.connect(a, b);
        g.connect(b, a);
        assert_eq!(g.validate(), Err(GraphError::Cyclic));
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn topo_order_is_deterministic_and_respects_edges() {
        let mut g = WorkGraph::new("diamond");
        let a = g.add_op(
            OpKind::Digital {
                input_len: 1,
                output_len: 1,
                macs: 1,
            },
            4.0,
        );
        let b = g.add_op(
            OpKind::Digital {
                input_len: 1,
                output_len: 1,
                macs: 1,
            },
            4.0,
        );
        let c = g.add_op(
            OpKind::Digital {
                input_len: 1,
                output_len: 1,
                macs: 1,
            },
            4.0,
        );
        let d = g.add_op(
            OpKind::Digital {
                input_len: 1,
                output_len: 1,
                macs: 1,
            },
            4.0,
        );
        g.connect(a, b);
        g.connect(a, c);
        g.connect(b, d);
        g.connect(c, d);
        let order = g.topo_order().expect("acyclic");
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dnn_graph_mirrors_mlp_structure() {
        let mut rng = SimRng::seed_from_u64(1);
        let mlp = Mlp::new_random(&[4, 6, 3], &mut rng);
        let g = dnn_graph(&mlp, 4.0, 6.0);
        // Two layers: mvm, nonlinear, mvm.
        assert_eq!(g.nodes.len(), 3);
        g.validate().expect("dnn chain is well shaped");
        assert_eq!(g.nodes[0].kind, OpKind::Mvm { rows: 6, cols: 4 });
        assert_eq!(g.nodes[1].kind, OpKind::Nonlinear { width: 6 });
        assert_eq!(g.nodes[2].kind, OpKind::Mvm { rows: 3, cols: 6 });
        assert_eq!(g.nodes[2].min_bits, 6.0);
        // IR MAC count matches the model's own accounting (activations
        // are counted as one op per element on top of the MLP MACs).
        assert_eq!(g.total_macs(), mlp.macs_per_inference() + 6);
    }

    #[test]
    fn table1_builders_validate() {
        correlation_graph(64, 16, 4.0).validate().expect("corr");
        pattern_match_graph(32, 3.0).validate().expect("match");
    }

    #[test]
    fn primitive_mapping_covers_photonic_ops() {
        use ofpc_engine::Primitive as P;
        assert_eq!(
            OpKind::Mvm { rows: 1, cols: 1 }.primitive(),
            Some(P::VectorDotProduct)
        );
        assert_eq!(
            OpKind::Correlate {
                pattern_len: 4,
                window: 8
            }
            .primitive(),
            Some(P::PatternMatching)
        );
        assert_eq!(
            OpKind::Nonlinear { width: 1 }.primitive(),
            Some(P::NonlinearFunction)
        );
        assert_eq!(
            OpKind::Digital {
                input_len: 1,
                output_len: 1,
                macs: 1
            }
            .primitive(),
            None
        );
    }
}
