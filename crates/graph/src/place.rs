//! Placement: bind compiled stages to engine sites along a fiber path
//! and assign WDM wavelengths for pipelining.
//!
//! The photonic stages of a [`CompiledPlan`] become a controller demand
//! chain: [`enumerate_options`] prices every feasible site tuple along
//! `src → … → dst` (detour latency + slot cost, exactly the serving
//! controller's objective) and the greedy solver picks the winner.
//! Digital stages ride along — they run in the DSP of wherever the
//! request currently is, so they bind to the previous photonic site (or
//! the source before any photonic stage).
//!
//! Wavelength assignment is what makes the pipeline work: photonic
//! stage *k* gets WDM channel `k mod channels`, so consecutive stages
//! occupy different wavelengths and stage *k+1* of request *i* can
//! overlap stage *k* of request *i+1* on the same fiber — the executor
//! ([`crate::exec`]) enforces exactly that resource model.

use crate::lower::{CompiledPlan, Target};
use ofpc_controller::{enumerate_options, greedy::solve_greedy, Demand, TaskDag};
use ofpc_net::routing::{distance_matrix, k_disjoint_paths};
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::wdm::WdmGrid;
use serde::{Deserialize, Serialize};

/// Where one stage executes and on which wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageBinding {
    /// Index into `plan.stages`.
    pub stage: usize,
    /// Engine site (photonic stages) or host node (digital stages).
    pub node: NodeId,
    /// WDM channel index; digital stages keep the inbound channel.
    pub wavelength: usize,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Fiber propagation from the previous location into this stage, ps.
    pub hop_in_ps: u64,
}

/// A fully placed plan: the compiled stages plus their site/wavelength
/// bindings along the `src → dst` path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedPlan {
    pub plan: CompiledPlan,
    pub src: NodeId,
    pub dst: NodeId,
    pub bindings: Vec<StageBinding>,
    /// Fiber time from the last stage's site to `dst`, ps.
    pub hop_out_ps: u64,
    /// Direct `src → dst` propagation (the no-compute baseline), ps.
    pub direct_ps: u64,
    /// Detour cost of the chosen placement over the direct path, ps.
    pub added_latency_ps: u64,
}

impl PlacedPlan {
    /// Total fiber propagation along the placed path, ps.
    pub fn path_ps(&self) -> u64 {
        self.bindings.iter().map(|b| b.hop_in_ps).sum::<u64>() + self.hop_out_ps
    }

    /// The distinct engine sites the plan's photonic stages occupy.
    pub fn photonic_sites(&self) -> Vec<NodeId> {
        let mut sites: Vec<NodeId> = self
            .bindings
            .iter()
            .filter(|b| self.plan.stages[b.stage].target == Target::Photonic)
            .map(|b| b.node)
            .collect();
        sites.sort_by_key(|n| n.0);
        sites.dedup();
        sites
    }
}

/// Why placement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No feasible site tuple exists (disconnected endpoints, or no
    /// compute sites with free slots).
    NoFeasiblePlacement,
    /// The topology offers no second link-disjoint corridor between the
    /// endpoints (or no compute slots on it), so a protected placement
    /// cannot pin a backup copy off the primary fibers.
    NoDisjointBackup,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NoFeasiblePlacement => {
                write!(f, "no feasible site placement for the photonic stages")
            }
            PlaceError::NoDisjointBackup => {
                write!(f, "no link-disjoint backup corridor with compute slots")
            }
        }
    }
}

/// Bind `plan` to sites and wavelengths on `topo`, where
/// `node_slots[n]` counts the compute transponder slots at node `n`.
pub fn place(
    plan: &CompiledPlan,
    topo: &Topology,
    node_slots: &[usize],
    src: NodeId,
    dst: NodeId,
    wdm_channels: usize,
) -> Result<PlacedPlan, PlaceError> {
    assert!(wdm_channels >= 1, "need at least one WDM channel");
    let photonic_idx: Vec<usize> = plan
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.target == Target::Photonic)
        .map(|(i, _)| i)
        .collect();

    let dist = distance_matrix(topo, &|_| true);
    let direct_ps = dist[src.0 as usize][dst.0 as usize].ok_or(PlaceError::NoFeasiblePlacement)?;

    // Controller pass: the photonic stages as a task chain.
    let (placement, added_latency_ps) = if photonic_idx.is_empty() {
        (Vec::new(), 0)
    } else {
        let dag = TaskDag::chain(
            photonic_idx
                .iter()
                .map(|&i| {
                    plan.stages[i]
                        .class
                        .expect("photonic stage has a class")
                        .primitive
                })
                .collect(),
        );
        let demands = vec![Demand::new(0, src, dst, dag)];
        let instance = enumerate_options(topo, node_slots, &demands, 64);
        let solution = solve_greedy(&instance);
        let choice = solution.allocation.choices[0].ok_or(PlaceError::NoFeasiblePlacement)?;
        let option = &instance.options[0][choice];
        (option.placement.clone(), option.added_latency_ps)
    };

    // Walk the stage chain, threading the current location through
    // digital stages and hopping fiber between distinct sites.
    let grid = WdmGrid::c_band(wdm_channels);
    let mut bindings = Vec::with_capacity(plan.stages.len());
    let mut here = src;
    let mut photonic_seen = 0usize;
    let mut wavelength = 0usize;
    for (i, stage) in plan.stages.iter().enumerate() {
        let node = match stage.target {
            Target::Photonic => {
                let n = placement[photonic_seen];
                wavelength = photonic_seen % wdm_channels;
                photonic_seen += 1;
                n
            }
            Target::Digital => here,
        };
        let hop_in_ps =
            dist[here.0 as usize][node.0 as usize].ok_or(PlaceError::NoFeasiblePlacement)?;
        bindings.push(StageBinding {
            stage: i,
            node,
            wavelength,
            wavelength_m: grid.wavelength_m(wavelength),
            hop_in_ps,
        });
        here = node;
    }
    let hop_out_ps =
        dist[here.0 as usize][dst.0 as usize].ok_or(PlaceError::NoFeasiblePlacement)?;

    Ok(PlacedPlan {
        plan: plan.clone(),
        src,
        dst,
        bindings,
        hop_out_ps,
        direct_ps,
        added_latency_ps,
    })
}

/// Disjoint-path stage pinning: place the plan twice, with each copy's
/// photonic stages confined to the compute sites of one of two
/// link-disjoint `src → dst` corridors (`ofpc_net::routing`'s
/// k-disjoint enumeration). The redundancy layer (`ofpc-resil`) can
/// then run the copies as a replica set that no single fiber cut can
/// take out together.
///
/// Returns `(primary, backup)` in corridor order (shortest first).
/// Fails with [`PlaceError::NoDisjointBackup`] when the topology is a
/// tree between the endpoints, or when the second corridor carries no
/// compute slots — callers degrade to serialized same-path replication
/// rather than silently running unprotected.
pub fn place_disjoint(
    plan: &CompiledPlan,
    topo: &Topology,
    node_slots: &[usize],
    src: NodeId,
    dst: NodeId,
    wdm_channels: usize,
) -> Result<(PlacedPlan, PlacedPlan), PlaceError> {
    let corridors = k_disjoint_paths(topo, src, dst, 2);
    if corridors.len() < 2 {
        return Err(PlaceError::NoDisjointBackup);
    }
    let mut placed = Vec::with_capacity(2);
    for corridor in corridors.iter().take(2) {
        // Pin this copy's stages to the corridor: mask away every slot
        // that is not on it (endpoints keep their slots — they are
        // shared by construction).
        let masked: Vec<usize> = node_slots
            .iter()
            .enumerate()
            .map(|(n, &s)| {
                if corridor.nodes.contains(&NodeId(n as u32)) {
                    s
                } else {
                    0
                }
            })
            .collect();
        match place(plan, topo, &masked, src, dst, wdm_channels) {
            Ok(p) => placed.push(p),
            // The primary corridor failing is a genuine infeasibility;
            // a slotless backup corridor is the no-backup case.
            Err(e) if placed.is_empty() => return Err(e),
            Err(_) => return Err(PlaceError::NoDisjointBackup),
        }
    }
    let backup = placed.pop().expect("two placements");
    let primary = placed.pop().expect("two placements");
    // The pinning must be real: no engine site may serve both copies
    // (shared endpoints carry no photonic stages of either copy).
    for site in primary.photonic_sites() {
        if backup.photonic_sites().contains(&site) {
            return Err(PlaceError::NoDisjointBackup);
        }
    }
    Ok((primary, backup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::dnn_graph;
    use crate::lower::{lower, ErrorBudget, LowerConfig};
    use ofpc_apps::digital::ComputeModel;
    use ofpc_engine::dnn::Mlp;
    use ofpc_photonics::SimRng;
    use ofpc_serve::ServiceModel;
    use ofpc_transponder::compute::ComputeTransponderConfig;

    fn plan() -> CompiledPlan {
        let mut rng = SimRng::seed_from_u64(16);
        let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
        let g = dnn_graph(&mlp, 4.0, 6.0);
        let cfg = LowerConfig {
            budget: ErrorBudget::realistic(),
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
            variants: Vec::new(),
        };
        lower(&g, &cfg).expect("lowers")
    }

    #[test]
    fn places_dnn_on_fig1_sites() {
        let topo = Topology::fig1();
        let placed =
            place(&plan(), &topo, &[0, 2, 2, 0], NodeId(0), NodeId(3), 4).expect("placeable");
        assert_eq!(placed.bindings.len(), 3);
        // Every photonic stage landed on a compute-capable site.
        for site in placed.photonic_sites() {
            assert!(site == NodeId(1) || site == NodeId(2), "site {site:?}");
        }
        // Consecutive photonic stages ride distinct wavelengths.
        let wl: Vec<usize> = placed.bindings.iter().map(|b| b.wavelength).collect();
        assert!(wl.windows(2).all(|w| w[0] != w[1]), "wavelengths {wl:?}");
        // The path hops add up and include the egress leg.
        assert!(placed.path_ps() >= placed.direct_ps);
    }

    #[test]
    fn wavelengths_wrap_round_robin() {
        let topo = Topology::fig1();
        let placed =
            place(&plan(), &topo, &[0, 2, 2, 0], NodeId(0), NodeId(3), 2).expect("placeable");
        let wl: Vec<usize> = placed.bindings.iter().map(|b| b.wavelength).collect();
        assert_eq!(wl, vec![0, 1, 0]);
        let grid = WdmGrid::c_band(2);
        assert_eq!(placed.bindings[0].wavelength_m, grid.wavelength_m(0));
    }

    #[test]
    fn no_slots_means_no_placement() {
        let topo = Topology::fig1();
        let err = place(&plan(), &topo, &[0, 0, 0, 0], NodeId(0), NodeId(3), 4);
        assert_eq!(err, Err(PlaceError::NoFeasiblePlacement));
    }

    // Two photonic stages: small enough to fit one corridor's slots.
    fn small_plan() -> CompiledPlan {
        let mut rng = SimRng::seed_from_u64(17);
        let mlp = Mlp::new_random(&[16, 16, 8], &mut rng);
        let g = dnn_graph(&mlp, 4.0, 6.0);
        let cfg = LowerConfig {
            budget: ErrorBudget::realistic(),
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
            variants: Vec::new(),
        };
        lower(&g, &cfg).expect("lowers")
    }

    #[test]
    fn disjoint_pinning_separates_the_copies_on_fig1() {
        // fig1 is 2-connected between A and D: the primary rides one
        // corridor (via B or C), the backup the other — no engine site
        // and no fiber span shared.
        let topo = Topology::fig1();
        let (primary, backup) =
            place_disjoint(&small_plan(), &topo, &[0, 2, 2, 0], NodeId(0), NodeId(3), 4)
                .expect("fig1 offers two corridors");
        let a = primary.photonic_sites();
        let b = backup.photonic_sites();
        assert!(!a.is_empty() && !b.is_empty());
        assert!(
            a.iter().all(|s| !b.contains(s)),
            "copies must not share engine sites: {a:?} vs {b:?}"
        );
        // Both copies still deliver src → dst.
        assert_eq!((primary.src, primary.dst), (NodeId(0), NodeId(3)));
        assert_eq!((backup.src, backup.dst), (NodeId(0), NodeId(3)));
    }

    #[test]
    fn tree_topology_has_no_disjoint_backup() {
        // A line is a tree: one corridor only. The caller must hear
        // that and degrade explicitly instead of double-placing on the
        // same fiber.
        let topo = Topology::line(4, 10.0);
        let err = place_disjoint(&small_plan(), &topo, &[0, 2, 2, 0], NodeId(0), NodeId(3), 4);
        assert_eq!(err, Err(PlaceError::NoDisjointBackup));
    }

    #[test]
    fn slotless_backup_corridor_is_reported_not_papered_over() {
        // Slots only on the primary corridor's site: the disjoint
        // corridor exists but cannot compute.
        let topo = Topology::fig1();
        let err = place_disjoint(&small_plan(), &topo, &[0, 2, 0, 0], NodeId(0), NodeId(3), 4);
        assert_eq!(err, Err(PlaceError::NoDisjointBackup));
    }

    #[test]
    fn digital_stages_stay_at_previous_site() {
        let g = crate::ir::correlation_graph(64, 16, 4.0);
        let cfg = LowerConfig {
            budget: ErrorBudget::realistic(),
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
            variants: Vec::new(),
        };
        let p = lower(&g, &cfg).expect("lowers");
        let topo = Topology::fig1();
        let placed = place(&p, &topo, &[0, 2, 2, 0], NodeId(0), NodeId(3), 4).expect("placeable");
        // Stage 0 is digital framing: it runs at the source, zero hop.
        assert_eq!(placed.bindings[0].node, NodeId(0));
        assert_eq!(placed.bindings[0].hop_in_ps, 0);
    }
}
