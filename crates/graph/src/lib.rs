//! ofpc-graph — the workload graph compiler.
//!
//! The paper's Table-1 workloads (DNN inference, correlation, pattern
//! matching) are multi-stage dataflow programs, but a serving stack that
//! dispatches single opaque ops cannot decide *which* stages run
//! photonically, *where* along the fiber path, or *how* stages pipeline
//! across wavelengths. This crate is that missing layer, end to end:
//!
//! 1. [`ir`] — a small dataflow IR: typed ops (MVM, nonlinear,
//!    correlate, match, compare, digital) with tensor shapes and
//!    precision requirements; edges carry data volumes. Builders for
//!    the Table-1 apps, starting with [`ir::dnn_graph`] over
//!    [`ofpc_engine::dnn::Mlp`].
//! 2. [`mod@lower`] — photonic/digital partitioning driven by
//!    `engine::precision` error budgets, stage fusion, and per-stage
//!    latency/energy estimates from the transponder-derived
//!    [`ofpc_serve::ServiceModel`].
//! 3. [`mod@place`] — site binding via the controller's option
//!    enumeration + greedy solver, and WDM wavelength assignment so
//!    consecutive stages ride distinct channels.
//! 4. [`exec`] — a deterministic pipelined executor with per-stage
//!    telemetry spans and fault-aware re-lowering: a failed site sends
//!    *its* stages to digital fallback, nothing else.
//!
//! The compile→place→execute path in one call chain:
//!
//! ```
//! use ofpc_graph::{compile, exec::{ExecConfig, ExecMode}, lower::LowerConfig, ir};
//! use ofpc_photonics::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(7);
//! let mlp = ofpc_engine::dnn::Mlp::new_random(&[16, 16, 8], &mut rng);
//! let graph = ir::dnn_graph(&mlp, 4.0, 6.0);
//! let topo = ofpc_net::Topology::fig1();
//! let executor = compile(
//!     &graph,
//!     &LowerConfig::metro(),
//!     &topo,
//!     &[0, 2, 2, 0],
//!     ofpc_net::NodeId(0),
//!     ofpc_net::NodeId(3),
//!     4,
//! )
//! .expect("compiles");
//! let report = executor.run(&ExecConfig {
//!     requests: 8,
//!     inter_arrival_ps: 0,
//!     mode: ExecMode::Pipelined,
//! });
//! assert_eq!(report.requests, 8);
//! ```

pub mod exec;
pub mod ir;
pub mod lower;
pub mod place;

pub use exec::{ExecConfig, ExecMode, ExecReport, GraphExecutor};
pub use ir::{dnn_graph, OpId, OpKind, OpNode, WorkGraph};
pub use lower::{
    lower, lower_traced, CompiledPlan, ErrorBudget, HardwareVariant, LowerConfig, Stage, Target,
};
pub use place::{place, place_disjoint, PlaceError, PlacedPlan, StageBinding};

use ofpc_net::{NodeId, Topology};

/// Errors from the full compile pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Lower(ir::GraphError),
    Place(PlaceError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lower(e) => write!(f, "lowering failed: {e}"),
            CompileError::Place(e) => write!(f, "placement failed: {e}"),
        }
    }
}

impl LowerConfig {
    /// The default metro deployment: realistic transponder hardware at
    /// 4 WDM serving channels, a realistic error budget, and an edge-SoC
    /// class DSP as the co-located digital platform.
    pub fn metro() -> Self {
        LowerConfig {
            budget: ErrorBudget::realistic(),
            model: ofpc_serve::ServiceModel::from_transponder(
                &ofpc_transponder::compute::ComputeTransponderConfig::realistic(),
                4,
            ),
            digital: ofpc_apps::digital::ComputeModel::edge_soc(),
            variants: Vec::new(),
        }
    }
}

/// Lower, place, and wrap `graph` into an executor in one call. The
/// digital platform of `cfg` doubles as the fault-fallback model.
pub fn compile(
    graph: &WorkGraph,
    cfg: &LowerConfig,
    topo: &Topology,
    node_slots: &[usize],
    src: NodeId,
    dst: NodeId,
    wdm_channels: usize,
) -> Result<GraphExecutor, CompileError> {
    let plan = lower(graph, cfg).map_err(CompileError::Lower)?;
    let placed =
        place(&plan, topo, node_slots, src, dst, wdm_channels).map_err(CompileError::Place)?;
    Ok(GraphExecutor::new(placed, cfg.digital.clone()))
}
