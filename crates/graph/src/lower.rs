//! Lowering: partition ops onto photonic or digital execution, fuse
//! adjacent stages, and attach per-stage latency/energy estimates.
//!
//! Partitioning is precision-driven: an op runs photonically only when
//! the [`ErrorBudget`] — the receiver SNR fed through
//! [`ofpc_engine::precision::predicted_effective_bits`] minus a safety
//! margin — predicts at least the op's `min_bits` at its operand
//! length. Everything else (and everything with no photonic form) runs
//! on the site's digital compute model.
//!
//! Fusion rules:
//! * a photonic MVM followed by a photonic activation of matching width
//!   fuses into one all-optical stage (the Bandyopadhyay DNN layer: the
//!   P3 unit gates the MVM's light in-line, no O/E conversion between
//!   them, so the activation adds no transport time);
//! * adjacent digital ops merge (one DSP invocation).
//!
//! Cost estimates come from the serving-layer [`ServiceModel`] (itself
//! derived from the transponder hardware config): photonic stages pay
//! the steady-state per-request streaming/readout price, with their
//! weight-reconfiguration charge accounted separately as a one-time
//! plan-install cost; digital stages pay the platform's
//! [`ComputeModel`] MAC time and energy.

use crate::ir::{GraphError, OpId, OpKind, WorkGraph};
use ofpc_apps::digital::ComputeModel;
use ofpc_engine::precision::predicted_effective_bits;
use ofpc_serve::{BatchClass, ServiceModel};
use ofpc_telemetry::{track, Telemetry};
use serde::{Deserialize, Serialize};

/// A concrete hardware design point the lowerer may bind a stage to:
/// a named converter pairing with the [`ServiceModel`] priced from it
/// (see the `ofpc-dse` catalog). The converters bound what the link
/// SNR alone cannot: the operand DAC caps encoding resolution outright,
/// the result ADC caps readout resolution (recovering `½·log2(n)` bits
/// of integration gain over an `n`-element accumulation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareVariant {
    /// Catalog name, e.g. `"cv-12b-fast"`.
    pub name: String,
    /// Operand DAC resolution, bits.
    pub dac_bits: f64,
    /// Result ADC resolution, bits.
    pub adc_bits: f64,
    /// Per-stage pricing derived from this variant's transponder.
    pub model: ServiceModel,
}

/// The analog error budget driving photonic/digital partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBudget {
    /// Photodetector SNR at the operating optical power, dB.
    pub pd_snr_db: f64,
    /// Safety margin subtracted from the prediction, bits (DAC
    /// quantization, calibration residue, aging headroom).
    pub margin_bits: f64,
}

impl ErrorBudget {
    /// A realistic metro deployment: 40 dB receiver SNR, one bit of
    /// margin.
    pub fn realistic() -> Self {
        ErrorBudget {
            pd_snr_db: 40.0,
            margin_bits: 1.0,
        }
    }

    /// A degraded link (low received power): photonics only clears
    /// low-precision ops, pushing precision-critical stages digital.
    pub fn degraded() -> Self {
        ErrorBudget {
            pd_snr_db: 22.0,
            margin_bits: 1.0,
        }
    }

    /// Effective bits the budget affords an op of `n` operands.
    pub fn effective_bits(&self, n: usize) -> f64 {
        predicted_effective_bits(self.pd_snr_db, n) - self.margin_bits
    }

    /// Whether an op fits the budget photonically.
    pub fn admits(&self, kind: &OpKind, min_bits: f64) -> bool {
        kind.primitive().is_some() && self.effective_bits(kind.input_elems()) >= min_bits
    }

    /// Effective bits through a concrete hardware variant: the link
    /// prediction capped by the operand DAC resolution and by the
    /// result ADC resolution plus the `½·log2(n)` integration gain of
    /// accumulating `n` operands, minus the safety margin.
    pub fn effective_bits_with(&self, n: usize, v: &HardwareVariant) -> f64 {
        let link = predicted_effective_bits(self.pd_snr_db, n);
        let adc = v.adc_bits + 0.5 * (n.max(1) as f64).log2();
        link.min(v.dac_bits).min(adc) - self.margin_bits
    }

    /// Whether an op fits the budget on a specific hardware variant.
    pub fn admits_with(&self, kind: &OpKind, min_bits: f64, v: &HardwareVariant) -> bool {
        kind.primitive().is_some() && self.effective_bits_with(kind.input_elems(), v) >= min_bits
    }

    /// Select the hardware variant for one op: among the variants that
    /// clear `min_bits` at the op's operand length, the cheapest by
    /// per-request energy, then service time, then name (a total,
    /// deterministic order). `None` when no variant admits the op —
    /// the stage goes digital.
    pub fn select_variant(
        &self,
        kind: &OpKind,
        min_bits: f64,
        variants: &[HardwareVariant],
    ) -> Option<usize> {
        let primitive = kind.primitive()?;
        let class = BatchClass {
            primitive,
            operand_len: kind.input_elems() as u32,
        };
        let mut best: Option<(f64, u64, usize)> = None;
        for (vi, v) in variants.iter().enumerate() {
            if !self.admits_with(kind, min_bits, v) {
                continue;
            }
            let (service_ps, ledger) = v.model.request_service(class);
            let energy_j = ledger.total_j();
            let better = match best {
                None => true,
                Some((be, bs, bi)) => {
                    (energy_j, service_ps, v.name.as_str()) < (be, bs, variants[bi].name.as_str())
                }
            };
            if better {
                best = Some((energy_j, service_ps, vi));
            }
        }
        best.map(|(_, _, vi)| vi)
    }
}

/// Where a fused stage executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    Photonic,
    Digital,
}

/// One fused, costed stage of a compiled plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// IR ops fused into this stage, in execution order.
    pub ops: Vec<OpId>,
    /// Human-readable label, e.g. `"mvm+nonlinear"`.
    pub label: String,
    pub target: Target,
    /// The batch class a photonic stage occupies on a transponder slot.
    pub class: Option<BatchClass>,
    /// Operand stream length entering the stage, elements.
    pub operand_len: u32,
    /// MACs executed per request.
    pub macs: u64,
    /// Steady-state per-request service time, ps (weights pinned).
    pub service_ps: u64,
    /// Per-request energy, J.
    pub energy_j: f64,
    /// One-time weight/pattern install charge, ps (photonic stages).
    pub reconfig_ps: u64,
    /// One-time install energy, J.
    pub reconfig_j: f64,
    /// Effective bits the budget predicts for this stage (`∞` for
    /// digital stages — they are exact at the modeled precision).
    pub predicted_bits: f64,
    /// The hardware variant the lowerer bound this stage to (`None` for
    /// digital stages and for legacy single-model lowering).
    pub variant: Option<String>,
}

/// A lowered plan: the fused stage chain with cost estimates, ready for
/// placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPlan {
    pub graph_name: String,
    pub stages: Vec<Stage>,
}

impl CompiledPlan {
    pub fn photonic_stage_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.target == Target::Photonic)
            .count()
    }

    /// Sum of steady-state stage services, ps (the sequential service
    /// floor, excluding propagation).
    pub fn total_service_ps(&self) -> u64 {
        self.stages.iter().map(|s| s.service_ps).sum()
    }

    /// Per-request energy across all stages, J.
    pub fn energy_per_request_j(&self) -> f64 {
        self.stages.iter().map(|s| s.energy_j).sum()
    }

    /// One-time plan-install charge across all stages, ps.
    pub fn total_reconfig_ps(&self) -> u64 {
        self.stages.iter().map(|s| s.reconfig_ps).sum()
    }

    /// The weakest photonic stage's predicted bits — the plan's
    /// end-to-end effective resolution. `None` for all-digital plans.
    pub fn min_photonic_bits(&self) -> Option<f64> {
        self.stages
            .iter()
            .filter(|s| s.target == Target::Photonic)
            .map(|s| s.predicted_bits)
            .fold(None, |acc: Option<f64>, b| {
                Some(acc.map_or(b, |a| a.min(b)))
            })
    }

    /// Distinct hardware variants bound across photonic stages, in
    /// first-use order.
    pub fn variants_used(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for s in &self.stages {
            if let Some(v) = &s.variant {
                if !seen.contains(v) {
                    seen.push(v.clone());
                }
            }
        }
        seen
    }
}

/// Everything lowering needs to know about the deployment.
#[derive(Debug, Clone)]
pub struct LowerConfig {
    pub budget: ErrorBudget,
    /// Photonic per-stage pricing (from the transponder hardware) —
    /// the single-design-point model used when `variants` is empty.
    pub model: ServiceModel,
    /// The digital platform co-located at engine sites (fallback DSP).
    pub digital: ComputeModel,
    /// Candidate hardware variants from the component library. Empty =
    /// legacy behavior: every photonic stage priced by `model`. Non-empty
    /// = per-stage selection via [`ErrorBudget::select_variant`]; ops no
    /// variant admits go digital.
    pub variants: Vec<HardwareVariant>,
}

/// Lower a validated graph to a costed stage chain.
pub fn lower(graph: &WorkGraph, cfg: &LowerConfig) -> Result<CompiledPlan, GraphError> {
    graph.validate()?;
    let order = graph.topo_order().ok_or(GraphError::Cyclic)?;

    // Partition, then fuse in topological order.
    #[derive(Clone)]
    struct Pending {
        ops: Vec<OpId>,
        labels: Vec<&'static str>,
        target: Target,
        head_kind: OpKind,
        macs: u64,
        /// Index into `cfg.variants` (variant-mode photonic stages only).
        variant: Option<usize>,
    }
    let mut fused: Vec<Pending> = Vec::new();
    for &i in &order {
        let node = &graph.nodes[i];
        let (photonic, variant) = if cfg.variants.is_empty() {
            (cfg.budget.admits(&node.kind, node.min_bits), None)
        } else {
            let v = cfg
                .budget
                .select_variant(&node.kind, node.min_bits, &cfg.variants);
            (v.is_some(), v)
        };
        let target = if photonic {
            Target::Photonic
        } else {
            Target::Digital
        };
        let can_fuse = match fused.last() {
            Some(prev) if prev.target != target => false,
            Some(prev) => match (target, &prev.head_kind, &node.kind) {
                // Digital neighbors always merge.
                (Target::Digital, _, _) => true,
                // MVM + matching-width activation: one all-optical pass
                // — but only on the same hardware variant; distinct
                // parts mean an O/E boundary between them.
                (Target::Photonic, OpKind::Mvm { rows, .. }, OpKind::Nonlinear { width }) => {
                    prev.ops.len() == 1 && rows == width && prev.variant == variant
                }
                (Target::Photonic, _, _) => false,
            },
            None => false,
        };
        if can_fuse {
            let prev = fused.last_mut().expect("checked above");
            prev.ops.push(node.id);
            prev.labels.push(node.kind.label());
            prev.macs += node.kind.macs();
        } else {
            fused.push(Pending {
                ops: vec![node.id],
                labels: vec![node.kind.label()],
                target,
                head_kind: node.kind,
                macs: node.kind.macs(),
                variant,
            });
        }
    }

    // Cost each fused stage.
    let mut stages = Vec::with_capacity(fused.len());
    for p in fused {
        let operand_len = p.head_kind.input_elems() as u32;
        let stage = match p.target {
            Target::Photonic => {
                let class = BatchClass {
                    primitive: p.head_kind.primitive().expect("photonic op has primitive"),
                    operand_len,
                };
                // Variant-mode stages are priced by their selected
                // hardware's model; legacy stages by the deployment's.
                let (model, predicted_bits, variant) = match p.variant {
                    Some(vi) => {
                        let v = &cfg.variants[vi];
                        (
                            &v.model,
                            cfg.budget.effective_bits_with(operand_len as usize, v),
                            Some(v.name.clone()),
                        )
                    }
                    None => (
                        &cfg.model,
                        cfg.budget.effective_bits(operand_len as usize),
                        None,
                    ),
                };
                let (service_ps, ledger) = model.request_service(class);
                // The streaming pass pays one MAC per operand element;
                // wider engines (an MVM's rows) burn proportionally more
                // photonic MACs in the same pass.
                let extra_macs = p.macs.saturating_sub(u64::from(operand_len));
                let energy_j = ledger.total_j() + extra_macs as f64 * model.mac_j;
                let (reconfig_ps, reconfig_ledger) = model.reconfig_charge(class);
                Stage {
                    ops: p.ops,
                    label: p.labels.join("+"),
                    target: Target::Photonic,
                    class: Some(class),
                    operand_len,
                    macs: p.macs,
                    service_ps,
                    energy_j,
                    reconfig_ps,
                    reconfig_j: reconfig_ledger.total_j(),
                    predicted_bits,
                    variant,
                }
            }
            Target::Digital => Stage {
                ops: p.ops,
                label: p.labels.join("+"),
                target: Target::Digital,
                class: None,
                operand_len,
                macs: p.macs,
                service_ps: (cfg.digital.time_for_macs(p.macs) * 1e12) as u64,
                energy_j: cfg.digital.energy_for_macs(p.macs),
                reconfig_ps: 0,
                reconfig_j: 0.0,
                predicted_bits: f64::INFINITY,
                variant: None,
            },
        };
        stages.push(stage);
    }
    Ok(CompiledPlan {
        graph_name: graph.name.clone(),
        stages,
    })
}

/// Re-cost one photonic stage for digital execution on `digital` — the
/// fault-recovery path: only the failed site's stages change target,
/// everything else keeps its photonic costing.
pub fn relower_stage_digital(stage: &Stage, digital: &ComputeModel) -> Stage {
    Stage {
        ops: stage.ops.clone(),
        label: format!("{}@digital", stage.label),
        target: Target::Digital,
        class: None,
        operand_len: stage.operand_len,
        macs: stage.macs,
        service_ps: (digital.time_for_macs(stage.macs) * 1e12) as u64,
        energy_j: digital.energy_for_macs(stage.macs),
        reconfig_ps: 0,
        reconfig_j: 0.0,
        predicted_bits: f64::INFINITY,
        variant: None,
    }
}

/// [`lower`] with the selection decisions traced: one instant per stage
/// on the DSE telemetry track (`tid` = stage index) recording the
/// target, the bound hardware variant, and the predicted bits — the
/// audit trail a design-space sweep leaves behind.
pub fn lower_traced(
    graph: &WorkGraph,
    cfg: &LowerConfig,
    tel: &Telemetry,
) -> Result<CompiledPlan, GraphError> {
    let plan = lower(graph, cfg)?;
    for (k, s) in plan.stages.iter().enumerate() {
        tel.instant(
            track::DSE,
            k as u64,
            "dse",
            "dse.select",
            0,
            vec![
                ("stage".to_string(), s.label.clone()),
                (
                    "target".to_string(),
                    match s.target {
                        Target::Photonic => "photonic".to_string(),
                        Target::Digital => "digital".to_string(),
                    },
                ),
                (
                    "variant".to_string(),
                    s.variant.clone().unwrap_or_else(|| "-".to_string()),
                ),
                ("bits".to_string(), format!("{:.2}", s.predicted_bits)),
            ],
        );
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{correlation_graph, dnn_graph};
    use ofpc_engine::dnn::Mlp;
    use ofpc_photonics::SimRng;
    use ofpc_transponder::compute::ComputeTransponderConfig;

    fn test_cfg(budget: ErrorBudget) -> LowerConfig {
        LowerConfig {
            budget,
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
            variants: Vec::new(),
        }
    }

    /// A test variant: the realistic transponder model with the operand
    /// DAC energy overridden so variants have distinct prices.
    fn variant(name: &str, dac_bits: f64, adc_bits: f64, dac_sample_j: f64) -> HardwareVariant {
        let mut model = ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4);
        model.dac_sample_j = dac_sample_j;
        HardwareVariant {
            name: name.to_string(),
            dac_bits,
            adc_bits,
            model,
        }
    }

    fn two_variants() -> Vec<HardwareVariant> {
        vec![
            variant("cv-8b", 8.0, 8.0, 1e-12),
            variant("cv-12b", 12.0, 8.0, 12e-12),
        ]
    }

    fn mlp() -> Mlp {
        let mut rng = SimRng::seed_from_u64(16);
        Mlp::new_random(&[16, 16, 16, 8], &mut rng)
    }

    #[test]
    fn dnn_lowers_all_photonic_and_fuses_layers() {
        let g = dnn_graph(&mlp(), 4.0, 6.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        // Three layers: mvm+nonlinear, mvm+nonlinear, mvm.
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.photonic_stage_count(), 3);
        assert_eq!(plan.stages[0].label, "mvm+nonlinear");
        assert_eq!(plan.stages[2].label, "mvm");
        for s in &plan.stages {
            assert!(s.service_ps > 0 && s.energy_j > 0.0, "{s:?}");
            assert!(s.reconfig_ps > s.service_ps, "reconfig dominates: {s:?}");
        }
    }

    #[test]
    fn degraded_budget_pushes_precise_stages_digital() {
        let g = dnn_graph(&mlp(), 2.5, 8.0);
        let budget = ErrorBudget::degraded();
        // Sanity: the budget clears 2.5 bits at n=16 but not 8 bits.
        assert!(budget.effective_bits(16) > 2.5);
        assert!(budget.effective_bits(16) < 8.0);
        let plan = lower(&g, &test_cfg(budget)).expect("lowers");
        let last = plan.stages.last().expect("has stages");
        assert_eq!(last.target, Target::Digital, "output layer goes digital");
        assert!(
            plan.photonic_stage_count() >= 1,
            "hidden layers stay photonic"
        );
    }

    #[test]
    fn width_mismatch_blocks_fusion() {
        // mvm(6x4) → nonlinear(6) fuses; a lone nonlinear(6) after an
        // mvm(3x6) does not (width 3 ≠ 6 would be a shape error anyway;
        // use two nonlinears to exercise the photonic no-fuse arm).
        let g = crate::ir::WorkGraph::chain(
            "nn",
            &[
                (OpKind::Nonlinear { width: 8 }, 2.0),
                (OpKind::Nonlinear { width: 8 }, 2.0),
            ],
        );
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 2, "photonic non-MVM ops do not fuse");
    }

    #[test]
    fn digital_neighbors_merge() {
        let g = correlation_graph(64, 16, 30.0); // 30 bits: nothing photonic
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 1, "all-digital chain collapses");
        assert_eq!(plan.stages[0].target, Target::Digital);
        assert_eq!(plan.stages[0].macs, g.total_macs());
    }

    #[test]
    fn correlation_mixes_targets() {
        let g = correlation_graph(64, 16, 4.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.stages[0].target, Target::Digital);
        assert_eq!(plan.stages[1].target, Target::Photonic);
        assert_eq!(plan.stages[2].target, Target::Photonic);
    }

    #[test]
    fn relowered_stage_keeps_work_changes_cost() {
        let g = dnn_graph(&mlp(), 4.0, 6.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        let s = &plan.stages[0];
        let d = relower_stage_digital(s, &ComputeModel::edge_soc());
        assert_eq!(d.target, Target::Digital);
        assert_eq!(d.macs, s.macs);
        assert_eq!(d.ops, s.ops);
        assert!(d.label.ends_with("@digital"));
        assert!(d.service_ps > 0);
    }

    #[test]
    fn variant_lowering_binds_distinct_parts_per_stage() {
        // Hidden layers need 3.5 bits; the output layer needs 7.2. At
        // n=16 on a 40 dB link, the 8-bit DAC caps effective bits at
        // 8 − 1 = 7.0 — enough for hidden layers, short of the output —
        // so the lowerer must bind cheap 8-bit parts to the hidden
        // stages and escalate the output stage to the 12-bit variant.
        let g = dnn_graph(&mlp(), 3.5, 7.2);
        let mut cfg = test_cfg(ErrorBudget::realistic());
        cfg.variants = two_variants();
        let plan = lower(&g, &cfg).expect("lowers");
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.stages[0].variant.as_deref(), Some("cv-8b"));
        assert_eq!(plan.stages[1].variant.as_deref(), Some("cv-8b"));
        assert_eq!(plan.stages[2].variant.as_deref(), Some("cv-12b"));
        assert_eq!(plan.variants_used(), vec!["cv-8b", "cv-12b"]);
        // The binding changes the priced energy: the same graph lowered
        // with only the 12-bit variant is strictly more expensive.
        let mut expensive = cfg.clone();
        expensive.variants = vec![variant("cv-12b", 12.0, 8.0, 12e-12)];
        let plan12 = lower(&g, &expensive).expect("lowers");
        assert!(
            plan.energy_per_request_j() < plan12.energy_per_request_j(),
            "mixed {} !< all-12b {}",
            plan.energy_per_request_j(),
            plan12.energy_per_request_j()
        );
    }

    #[test]
    fn variant_caps_tighten_effective_bits() {
        let b = ErrorBudget::realistic();
        let v8 = variant("cv-8b", 8.0, 8.0, 1e-12);
        // DAC cap binds: 8 − 1 margin = 7.0, below the 7.35 link bits.
        assert!((b.effective_bits_with(16, &v8) - 7.0).abs() < 1e-9);
        assert!(b.effective_bits(16) > b.effective_bits_with(16, &v8));
        // A generous variant leaves the link prediction untouched.
        let v16 = variant("cv-16b", 16.0, 16.0, 1e-12);
        assert!((b.effective_bits_with(16, &v16) - b.effective_bits(16)).abs() < 1e-9);
    }

    #[test]
    fn no_admissible_variant_goes_digital() {
        let g = dnn_graph(&mlp(), 3.5, 7.2);
        let mut cfg = test_cfg(ErrorBudget::realistic());
        // 4-bit parts clear nothing here: every stage falls back digital.
        cfg.variants = vec![variant("cv-4b", 4.0, 4.0, 1e-12)];
        let plan = lower(&g, &cfg).expect("lowers");
        assert!(plan
            .stages
            .iter()
            .all(|s| s.target == Target::Digital && s.variant.is_none()));
        assert!(plan.variants_used().is_empty());
        assert!(plan.min_photonic_bits().is_none());
    }

    #[test]
    fn variant_mismatch_blocks_fusion() {
        // MVM at 3.5 bits binds cv-8b; the matching-width activation at
        // 7.2 bits needs cv-12b — different parts, so no all-optical
        // fusion across the O/E boundary between them.
        let g = crate::ir::WorkGraph::chain(
            "nn",
            &[
                (OpKind::Mvm { rows: 16, cols: 16 }, 3.5),
                (OpKind::Nonlinear { width: 16 }, 7.2),
            ],
        );
        let mut cfg = test_cfg(ErrorBudget::realistic());
        cfg.variants = two_variants();
        let plan = lower(&g, &cfg).expect("lowers");
        assert_eq!(plan.stages.len(), 2, "split stages: {plan:?}");
        assert_eq!(plan.stages[0].variant.as_deref(), Some("cv-8b"));
        assert_eq!(plan.stages[1].variant.as_deref(), Some("cv-12b"));
    }

    #[test]
    fn empty_variants_is_legacy_lowering() {
        let g = dnn_graph(&mlp(), 4.0, 6.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert!(plan.stages.iter().all(|s| s.variant.is_none()));
        assert!(plan.variants_used().is_empty());
    }

    #[test]
    fn lower_traced_emits_one_dse_instant_per_stage() {
        let g = dnn_graph(&mlp(), 3.5, 7.2);
        let mut cfg = test_cfg(ErrorBudget::realistic());
        cfg.variants = two_variants();
        let tel = ofpc_telemetry::Telemetry::enabled();
        let plan = lower_traced(&g, &cfg, &tel).expect("lowers");
        let events = tel.trace_events();
        let dse: Vec<_> = events.iter().filter(|e| e.pid == track::DSE).collect();
        assert_eq!(dse.len(), plan.stages.len());
        assert!(dse.iter().all(|e| e.name == "dse.select"));
        let variants: Vec<_> = dse
            .iter()
            .flat_map(|e| e.args.iter())
            .filter(|(k, _)| k == "variant")
            .map(|(_, v)| v.as_str())
            .collect();
        assert!(variants.contains(&"cv-8b") && variants.contains(&"cv-12b"));
    }

    #[test]
    fn cyclic_graph_fails_lowering() {
        let mut g = crate::ir::WorkGraph::new("cyc");
        let a = g.add_op(OpKind::Nonlinear { width: 4 }, 2.0);
        let b = g.add_op(OpKind::Nonlinear { width: 4 }, 2.0);
        g.connect(a, b);
        g.connect(b, a);
        assert!(lower(&g, &test_cfg(ErrorBudget::realistic())).is_err());
    }
}
