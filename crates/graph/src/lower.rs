//! Lowering: partition ops onto photonic or digital execution, fuse
//! adjacent stages, and attach per-stage latency/energy estimates.
//!
//! Partitioning is precision-driven: an op runs photonically only when
//! the [`ErrorBudget`] — the receiver SNR fed through
//! [`ofpc_engine::precision::predicted_effective_bits`] minus a safety
//! margin — predicts at least the op's `min_bits` at its operand
//! length. Everything else (and everything with no photonic form) runs
//! on the site's digital compute model.
//!
//! Fusion rules:
//! * a photonic MVM followed by a photonic activation of matching width
//!   fuses into one all-optical stage (the Bandyopadhyay DNN layer: the
//!   P3 unit gates the MVM's light in-line, no O/E conversion between
//!   them, so the activation adds no transport time);
//! * adjacent digital ops merge (one DSP invocation).
//!
//! Cost estimates come from the serving-layer [`ServiceModel`] (itself
//! derived from the transponder hardware config): photonic stages pay
//! the steady-state per-request streaming/readout price, with their
//! weight-reconfiguration charge accounted separately as a one-time
//! plan-install cost; digital stages pay the platform's
//! [`ComputeModel`] MAC time and energy.

use crate::ir::{GraphError, OpId, OpKind, WorkGraph};
use ofpc_apps::digital::ComputeModel;
use ofpc_engine::precision::predicted_effective_bits;
use ofpc_serve::{BatchClass, ServiceModel};
use serde::{Deserialize, Serialize};

/// The analog error budget driving photonic/digital partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBudget {
    /// Photodetector SNR at the operating optical power, dB.
    pub pd_snr_db: f64,
    /// Safety margin subtracted from the prediction, bits (DAC
    /// quantization, calibration residue, aging headroom).
    pub margin_bits: f64,
}

impl ErrorBudget {
    /// A realistic metro deployment: 40 dB receiver SNR, one bit of
    /// margin.
    pub fn realistic() -> Self {
        ErrorBudget {
            pd_snr_db: 40.0,
            margin_bits: 1.0,
        }
    }

    /// A degraded link (low received power): photonics only clears
    /// low-precision ops, pushing precision-critical stages digital.
    pub fn degraded() -> Self {
        ErrorBudget {
            pd_snr_db: 22.0,
            margin_bits: 1.0,
        }
    }

    /// Effective bits the budget affords an op of `n` operands.
    pub fn effective_bits(&self, n: usize) -> f64 {
        predicted_effective_bits(self.pd_snr_db, n) - self.margin_bits
    }

    /// Whether an op fits the budget photonically.
    pub fn admits(&self, kind: &OpKind, min_bits: f64) -> bool {
        kind.primitive().is_some() && self.effective_bits(kind.input_elems()) >= min_bits
    }
}

/// Where a fused stage executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    Photonic,
    Digital,
}

/// One fused, costed stage of a compiled plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// IR ops fused into this stage, in execution order.
    pub ops: Vec<OpId>,
    /// Human-readable label, e.g. `"mvm+nonlinear"`.
    pub label: String,
    pub target: Target,
    /// The batch class a photonic stage occupies on a transponder slot.
    pub class: Option<BatchClass>,
    /// Operand stream length entering the stage, elements.
    pub operand_len: u32,
    /// MACs executed per request.
    pub macs: u64,
    /// Steady-state per-request service time, ps (weights pinned).
    pub service_ps: u64,
    /// Per-request energy, J.
    pub energy_j: f64,
    /// One-time weight/pattern install charge, ps (photonic stages).
    pub reconfig_ps: u64,
    /// One-time install energy, J.
    pub reconfig_j: f64,
    /// Effective bits the budget predicts for this stage (`∞` for
    /// digital stages — they are exact at the modeled precision).
    pub predicted_bits: f64,
}

/// A lowered plan: the fused stage chain with cost estimates, ready for
/// placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPlan {
    pub graph_name: String,
    pub stages: Vec<Stage>,
}

impl CompiledPlan {
    pub fn photonic_stage_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.target == Target::Photonic)
            .count()
    }

    /// Sum of steady-state stage services, ps (the sequential service
    /// floor, excluding propagation).
    pub fn total_service_ps(&self) -> u64 {
        self.stages.iter().map(|s| s.service_ps).sum()
    }

    /// Per-request energy across all stages, J.
    pub fn energy_per_request_j(&self) -> f64 {
        self.stages.iter().map(|s| s.energy_j).sum()
    }
}

/// Everything lowering needs to know about the deployment.
#[derive(Debug, Clone)]
pub struct LowerConfig {
    pub budget: ErrorBudget,
    /// Photonic per-stage pricing (from the transponder hardware).
    pub model: ServiceModel,
    /// The digital platform co-located at engine sites (fallback DSP).
    pub digital: ComputeModel,
}

/// Lower a validated graph to a costed stage chain.
pub fn lower(graph: &WorkGraph, cfg: &LowerConfig) -> Result<CompiledPlan, GraphError> {
    graph.validate()?;
    let order = graph.topo_order().ok_or(GraphError::Cyclic)?;

    // Partition, then fuse in topological order.
    #[derive(Clone)]
    struct Pending {
        ops: Vec<OpId>,
        labels: Vec<&'static str>,
        target: Target,
        head_kind: OpKind,
        macs: u64,
    }
    let mut fused: Vec<Pending> = Vec::new();
    for &i in &order {
        let node = &graph.nodes[i];
        let photonic = cfg.budget.admits(&node.kind, node.min_bits);
        let target = if photonic {
            Target::Photonic
        } else {
            Target::Digital
        };
        let can_fuse = match fused.last() {
            Some(prev) if prev.target != target => false,
            Some(prev) => match (target, &prev.head_kind, &node.kind) {
                // Digital neighbors always merge.
                (Target::Digital, _, _) => true,
                // MVM + matching-width activation: one all-optical pass.
                (Target::Photonic, OpKind::Mvm { rows, .. }, OpKind::Nonlinear { width }) => {
                    prev.ops.len() == 1 && rows == width
                }
                (Target::Photonic, _, _) => false,
            },
            None => false,
        };
        if can_fuse {
            let prev = fused.last_mut().expect("checked above");
            prev.ops.push(node.id);
            prev.labels.push(node.kind.label());
            prev.macs += node.kind.macs();
        } else {
            fused.push(Pending {
                ops: vec![node.id],
                labels: vec![node.kind.label()],
                target,
                head_kind: node.kind,
                macs: node.kind.macs(),
            });
        }
    }

    // Cost each fused stage.
    let mut stages = Vec::with_capacity(fused.len());
    for p in fused {
        let operand_len = p.head_kind.input_elems() as u32;
        let stage = match p.target {
            Target::Photonic => {
                let class = BatchClass {
                    primitive: p.head_kind.primitive().expect("photonic op has primitive"),
                    operand_len,
                };
                let (service_ps, ledger) = cfg.model.request_service(class);
                // The streaming pass pays one MAC per operand element;
                // wider engines (an MVM's rows) burn proportionally more
                // photonic MACs in the same pass.
                let extra_macs = p.macs.saturating_sub(u64::from(operand_len));
                let energy_j = ledger.total_j() + extra_macs as f64 * cfg.model.mac_j;
                let (reconfig_ps, reconfig_ledger) = cfg.model.reconfig_charge(class);
                Stage {
                    ops: p.ops,
                    label: p.labels.join("+"),
                    target: Target::Photonic,
                    class: Some(class),
                    operand_len,
                    macs: p.macs,
                    service_ps,
                    energy_j,
                    reconfig_ps,
                    reconfig_j: reconfig_ledger.total_j(),
                    predicted_bits: cfg.budget.effective_bits(operand_len as usize),
                }
            }
            Target::Digital => Stage {
                ops: p.ops,
                label: p.labels.join("+"),
                target: Target::Digital,
                class: None,
                operand_len,
                macs: p.macs,
                service_ps: (cfg.digital.time_for_macs(p.macs) * 1e12) as u64,
                energy_j: cfg.digital.energy_for_macs(p.macs),
                reconfig_ps: 0,
                reconfig_j: 0.0,
                predicted_bits: f64::INFINITY,
            },
        };
        stages.push(stage);
    }
    Ok(CompiledPlan {
        graph_name: graph.name.clone(),
        stages,
    })
}

/// Re-cost one photonic stage for digital execution on `digital` — the
/// fault-recovery path: only the failed site's stages change target,
/// everything else keeps its photonic costing.
pub fn relower_stage_digital(stage: &Stage, digital: &ComputeModel) -> Stage {
    Stage {
        ops: stage.ops.clone(),
        label: format!("{}@digital", stage.label),
        target: Target::Digital,
        class: None,
        operand_len: stage.operand_len,
        macs: stage.macs,
        service_ps: (digital.time_for_macs(stage.macs) * 1e12) as u64,
        energy_j: digital.energy_for_macs(stage.macs),
        reconfig_ps: 0,
        reconfig_j: 0.0,
        predicted_bits: f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{correlation_graph, dnn_graph};
    use ofpc_engine::dnn::Mlp;
    use ofpc_photonics::SimRng;
    use ofpc_transponder::compute::ComputeTransponderConfig;

    fn test_cfg(budget: ErrorBudget) -> LowerConfig {
        LowerConfig {
            budget,
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
        }
    }

    fn mlp() -> Mlp {
        let mut rng = SimRng::seed_from_u64(16);
        Mlp::new_random(&[16, 16, 16, 8], &mut rng)
    }

    #[test]
    fn dnn_lowers_all_photonic_and_fuses_layers() {
        let g = dnn_graph(&mlp(), 4.0, 6.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        // Three layers: mvm+nonlinear, mvm+nonlinear, mvm.
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.photonic_stage_count(), 3);
        assert_eq!(plan.stages[0].label, "mvm+nonlinear");
        assert_eq!(plan.stages[2].label, "mvm");
        for s in &plan.stages {
            assert!(s.service_ps > 0 && s.energy_j > 0.0, "{s:?}");
            assert!(s.reconfig_ps > s.service_ps, "reconfig dominates: {s:?}");
        }
    }

    #[test]
    fn degraded_budget_pushes_precise_stages_digital() {
        let g = dnn_graph(&mlp(), 2.5, 8.0);
        let budget = ErrorBudget::degraded();
        // Sanity: the budget clears 2.5 bits at n=16 but not 8 bits.
        assert!(budget.effective_bits(16) > 2.5);
        assert!(budget.effective_bits(16) < 8.0);
        let plan = lower(&g, &test_cfg(budget)).expect("lowers");
        let last = plan.stages.last().expect("has stages");
        assert_eq!(last.target, Target::Digital, "output layer goes digital");
        assert!(
            plan.photonic_stage_count() >= 1,
            "hidden layers stay photonic"
        );
    }

    #[test]
    fn width_mismatch_blocks_fusion() {
        // mvm(6x4) → nonlinear(6) fuses; a lone nonlinear(6) after an
        // mvm(3x6) does not (width 3 ≠ 6 would be a shape error anyway;
        // use two nonlinears to exercise the photonic no-fuse arm).
        let g = crate::ir::WorkGraph::chain(
            "nn",
            &[
                (OpKind::Nonlinear { width: 8 }, 2.0),
                (OpKind::Nonlinear { width: 8 }, 2.0),
            ],
        );
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 2, "photonic non-MVM ops do not fuse");
    }

    #[test]
    fn digital_neighbors_merge() {
        let g = correlation_graph(64, 16, 30.0); // 30 bits: nothing photonic
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 1, "all-digital chain collapses");
        assert_eq!(plan.stages[0].target, Target::Digital);
        assert_eq!(plan.stages[0].macs, g.total_macs());
    }

    #[test]
    fn correlation_mixes_targets() {
        let g = correlation_graph(64, 16, 4.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.stages[0].target, Target::Digital);
        assert_eq!(plan.stages[1].target, Target::Photonic);
        assert_eq!(plan.stages[2].target, Target::Photonic);
    }

    #[test]
    fn relowered_stage_keeps_work_changes_cost() {
        let g = dnn_graph(&mlp(), 4.0, 6.0);
        let plan = lower(&g, &test_cfg(ErrorBudget::realistic())).expect("lowers");
        let s = &plan.stages[0];
        let d = relower_stage_digital(s, &ComputeModel::edge_soc());
        assert_eq!(d.target, Target::Digital);
        assert_eq!(d.macs, s.macs);
        assert_eq!(d.ops, s.ops);
        assert!(d.label.ends_with("@digital"));
        assert!(d.service_ps > 0);
    }

    #[test]
    fn cyclic_graph_fails_lowering() {
        let mut g = crate::ir::WorkGraph::new("cyc");
        let a = g.add_op(OpKind::Nonlinear { width: 4 }, 2.0);
        let b = g.add_op(OpKind::Nonlinear { width: 4 }, 2.0);
        g.connect(a, b);
        g.connect(b, a);
        assert!(lower(&g, &test_cfg(ErrorBudget::realistic())).is_err());
    }
}
