//! The plan executor: drive a placed plan as a stream of multi-hop
//! requests, pipelined across wavelengths, with per-stage telemetry
//! spans and fault-aware re-lowering.
//!
//! Execution is a deterministic closed-form recurrence over integer
//! picoseconds, priced by the same serving-layer [`ServiceModel`]
//! numbers the lowering pass baked into each stage:
//!
//! * **Pipelined** (the compiled plan): each stage is a resource keyed
//!   by `(site, wavelength)` — distinct stages on distinct wavelengths
//!   never contend, so stage *k+1* of request *i* overlaps stage *k* of
//!   request *i+1* and steady-state throughput approaches
//!   `1 / max(stage service)`.
//! * **Sequential** (the naive baseline): one request owns the whole
//!   chain end to end; the next request starts only after the previous
//!   one delivers. Throughput is `1 / (Σ services + path)`.
//!
//! A failed engine site re-lowers *only its own stages* to the local
//! digital fallback ([`crate::lower::relower_stage_digital`]); healthy
//! sites keep their photonic costing. Fault schedules arrive as
//! [`ofpc_faults::FaultPlan`] events, the same currency the recovery
//! orchestrator uses.
//!
//! [`ServiceModel`]: ofpc_serve::ServiceModel

use crate::lower::{relower_stage_digital, Stage, Target};
use crate::place::PlacedPlan;
use ofpc_apps::digital::ComputeModel;
use ofpc_faults::{FaultKind, FaultPlan};
use ofpc_net::NodeId;
use ofpc_telemetry::{track, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the request stream is driven through the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Wavelength-pipelined: stages are independent resources.
    Pipelined,
    /// Naive sequential: a request owns the whole chain exclusively.
    Sequential,
}

impl ExecMode {
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Pipelined => "pipelined",
            ExecMode::Sequential => "sequential",
        }
    }
}

/// One execution run's shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    pub requests: usize,
    /// Open-loop arrival spacing, ps (0 = a closed back-to-back batch).
    pub inter_arrival_ps: u64,
    pub mode: ExecMode,
}

/// Deterministic results of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    pub mode: String,
    pub requests: usize,
    pub stages: usize,
    /// Stages executing digitally (never-photonic plus re-lowered).
    pub digital_stages: usize,
    /// Stage indices re-lowered to digital by site faults.
    pub relowered_stages: Vec<usize>,
    /// One-time plan-install charge (weight/pattern loads), ps.
    pub install_ps: u64,
    /// First arrival to last delivery, ps.
    pub makespan_ps: u64,
    /// Delivered requests per second of makespan.
    pub throughput_rps: f64,
    pub mean_latency_ps: u64,
    pub p99_latency_ps: u64,
    pub energy_per_request_j: f64,
    /// Service time accumulated per stage across the run, ps.
    pub stage_busy_ps: Vec<u64>,
}

/// Executes a placed plan; owns the fault state and telemetry handle.
#[derive(Debug, Clone)]
pub struct GraphExecutor {
    placed: PlacedPlan,
    fallback: ComputeModel,
    failed: BTreeSet<u32>,
    tel: Telemetry,
}

impl GraphExecutor {
    /// `fallback` is the digital platform co-located at engine sites
    /// that absorbs re-lowered stages.
    pub fn new(placed: PlacedPlan, fallback: ComputeModel) -> Self {
        GraphExecutor {
            placed,
            fallback,
            failed: BTreeSet::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle: per-stage spans land on
    /// [`track::GRAPH`] (`tid` = request index), re-lowering instants on
    /// [`track::RECOVERY`].
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self
    }

    pub fn placed(&self) -> &PlacedPlan {
        &self.placed
    }

    /// Mark `node` failed and re-lower its photonic stages to the
    /// digital fallback. Returns how many stages changed; idempotent.
    pub fn fail_site(&mut self, node: NodeId) -> usize {
        if !self.failed.insert(node.0) {
            return 0;
        }
        let changed = self.stages_bound_to(node);
        for &k in &changed {
            self.tel.instant(
                track::RECOVERY,
                u64::from(node.0),
                "graph",
                "graph.relower",
                0,
                vec![
                    ("stage".to_string(), k.to_string()),
                    ("node".to_string(), node.0.to_string()),
                    ("to".to_string(), "digital".to_string()),
                ],
            );
        }
        changed.len()
    }

    /// Repair `node`: its stages return to photonic execution.
    pub fn repair_site(&mut self, node: NodeId) -> usize {
        if !self.failed.remove(&node.0) {
            return 0;
        }
        self.stages_bound_to(node).len()
    }

    /// Apply every engine fail/repair event of a fault plan (fiber and
    /// noise events are the serving stack's concern, not the plan's).
    /// Returns the number of stage re-lowerings applied.
    pub fn apply_faults(&mut self, plan: &FaultPlan) -> usize {
        let mut relowered = 0;
        for ev in &plan.events {
            match ev.kind {
                FaultKind::EngineFail { node } => relowered += self.fail_site(node),
                FaultKind::EngineRepair { node } => {
                    self.repair_site(node);
                }
                _ => {}
            }
        }
        relowered
    }

    /// Photonic stage indices bound to `node`.
    fn stages_bound_to(&self, node: NodeId) -> Vec<usize> {
        self.placed
            .bindings
            .iter()
            .filter(|b| {
                b.node == node && self.placed.plan.stages[b.stage].target == Target::Photonic
            })
            .map(|b| b.stage)
            .collect()
    }

    /// The stage chain with fault re-lowering applied.
    fn effective_stages(&self) -> (Vec<Stage>, Vec<usize>) {
        let mut relowered = Vec::new();
        let stages = self
            .placed
            .plan
            .stages
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let node = self.placed.bindings[k].node;
                if s.target == Target::Photonic && self.failed.contains(&node.0) {
                    relowered.push(k);
                    relower_stage_digital(s, &self.fallback)
                } else {
                    s.clone()
                }
            })
            .collect();
        (stages, relowered)
    }

    /// Run `cfg.requests` requests through the plan. Pure integer
    /// arithmetic over the compiled costs — byte-deterministic.
    pub fn run(&self, cfg: &ExecConfig) -> ExecReport {
        assert!(cfg.requests >= 1, "need at least one request");
        let (stages, relowered) = self.effective_stages();
        let bindings = &self.placed.bindings;
        let n_stages = stages.len();

        // Pipelined contention model: photonic stages contend iff they
        // share a (site, wavelength) pair; digital stages are their own
        // resource (the site DSP is not wavelength-limited here).
        let mut resource_of = Vec::with_capacity(n_stages);
        {
            let mut keys: Vec<(u32, usize, bool)> = Vec::new();
            for (k, s) in stages.iter().enumerate() {
                let key = match s.target {
                    Target::Photonic => (bindings[k].node.0, bindings[k].wavelength, true),
                    Target::Digital => (k as u32, 0, false),
                };
                let idx = keys.iter().position(|&x| x == key).unwrap_or_else(|| {
                    keys.push(key);
                    keys.len() - 1
                });
                resource_of.push(idx);
            }
        }
        let n_resources = resource_of.iter().map(|&r| r + 1).max().unwrap_or(0);

        let span_labels: Vec<String> = stages
            .iter()
            .enumerate()
            .map(|(k, s)| format!("stage{k}.{}", s.label))
            .collect();
        let install_ps: u64 = stages.iter().map(|s| s.reconfig_ps).sum();
        let energy_per_request_j: f64 = stages.iter().map(|s| s.energy_j).sum();

        let mut free = vec![0u64; n_resources];
        let mut busy = vec![0u64; n_stages];
        let mut seq_free = 0u64;
        let mut latencies = Vec::with_capacity(cfg.requests);
        let mut last_delivery = 0u64;
        for i in 0..cfg.requests {
            let arrive = i as u64 * cfg.inter_arrival_ps;
            let mut t = match cfg.mode {
                ExecMode::Pipelined => arrive,
                ExecMode::Sequential => arrive.max(seq_free),
            };
            for k in 0..n_stages {
                t += bindings[k].hop_in_ps;
                let start = t.max(free[resource_of[k]]);
                let done = start + stages[k].service_ps;
                free[resource_of[k]] = done;
                busy[k] += stages[k].service_ps;
                self.tel.span(
                    track::GRAPH,
                    i as u64,
                    "graph",
                    &span_labels[k],
                    start,
                    done,
                );
                t = done;
            }
            t += self.placed.hop_out_ps;
            seq_free = t;
            last_delivery = t;
            latencies.push(t - arrive);
        }

        let makespan_ps = last_delivery.max(1);
        let mut sorted = latencies.clone();
        sorted.sort_unstable();
        let p99_idx = ((cfg.requests as f64 * 0.99).ceil() as usize).clamp(1, cfg.requests) - 1;
        ExecReport {
            mode: cfg.mode.label().to_string(),
            requests: cfg.requests,
            stages: n_stages,
            digital_stages: stages
                .iter()
                .filter(|s| s.target == Target::Digital)
                .count(),
            relowered_stages: relowered,
            install_ps,
            makespan_ps,
            throughput_rps: cfg.requests as f64 / (makespan_ps as f64 * 1e-12),
            mean_latency_ps: latencies.iter().sum::<u64>() / cfg.requests as u64,
            p99_latency_ps: sorted[p99_idx],
            energy_per_request_j,
            stage_busy_ps: busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::dnn_graph;
    use crate::lower::{lower, ErrorBudget, LowerConfig};
    use crate::place::place;
    use ofpc_engine::dnn::Mlp;
    use ofpc_net::Topology;
    use ofpc_photonics::SimRng;
    use ofpc_serve::ServiceModel;
    use ofpc_transponder::compute::ComputeTransponderConfig;

    fn executor() -> GraphExecutor {
        let mut rng = SimRng::seed_from_u64(16);
        let mlp = Mlp::new_random(&[16, 16, 16, 8], &mut rng);
        let g = dnn_graph(&mlp, 4.0, 6.0);
        let cfg = LowerConfig {
            budget: ErrorBudget::realistic(),
            model: ServiceModel::from_transponder(&ComputeTransponderConfig::realistic(), 4),
            digital: ComputeModel::edge_soc(),
            variants: Vec::new(),
        };
        let plan = lower(&g, &cfg).expect("lowers");
        let placed = place(
            &plan,
            &Topology::fig1(),
            &[0, 2, 2, 0],
            NodeId(0),
            NodeId(3),
            4,
        )
        .expect("places");
        GraphExecutor::new(placed, ComputeModel::edge_soc())
    }

    fn closed_batch(mode: ExecMode) -> ExecConfig {
        ExecConfig {
            requests: 64,
            inter_arrival_ps: 0,
            mode,
        }
    }

    #[test]
    fn pipelined_beats_sequential_throughput() {
        let ex = executor();
        let pipe = ex.run(&closed_batch(ExecMode::Pipelined));
        let seq = ex.run(&closed_batch(ExecMode::Sequential));
        assert!(
            pipe.throughput_rps > 1.5 * seq.throughput_rps,
            "pipelined {} vs sequential {}",
            pipe.throughput_rps,
            seq.throughput_rps
        );
        // Same work, same energy per request.
        assert_eq!(pipe.energy_per_request_j, seq.energy_per_request_j);
        // Per-request latency is never better sequentially.
        assert!(pipe.mean_latency_ps <= seq.mean_latency_ps);
    }

    #[test]
    fn runs_are_deterministic() {
        let ex = executor();
        let a = ex.run(&closed_batch(ExecMode::Pipelined));
        let b = ex.run(&closed_batch(ExecMode::Pipelined));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn failed_site_relowers_only_its_stages() {
        let mut ex = executor();
        let sites = ex.placed().photonic_sites();
        assert!(sites.len() >= 2, "fig1 spreads stages over two sites");
        let victim = sites[0];
        let changed = ex.fail_site(victim);
        assert!(changed >= 1);
        let report = ex.run(&closed_batch(ExecMode::Pipelined));
        assert_eq!(report.relowered_stages.len(), changed);
        // Stages on the surviving site stayed photonic.
        assert!(report.digital_stages < report.stages);
        // Repair restores the all-photonic plan.
        assert_eq!(ex.repair_site(victim), changed);
        let healed = ex.run(&closed_batch(ExecMode::Pipelined));
        assert!(healed.relowered_stages.is_empty());
        assert!(healed.energy_per_request_j < report.energy_per_request_j);
    }

    #[test]
    fn fault_plan_events_drive_relowering() {
        let mut ex = executor();
        let victim = ex.placed().photonic_sites()[0];
        let plan = FaultPlan {
            events: vec![ofpc_faults::FaultEvent {
                at_ps: 1_000,
                kind: FaultKind::EngineFail { node: victim },
            }],
        };
        assert!(ex.apply_faults(&plan) >= 1);
        // Idempotent: re-applying the same plan changes nothing.
        assert_eq!(ex.apply_faults(&plan), 0);
    }

    #[test]
    fn telemetry_spans_cover_every_stage_and_request() {
        let tel = Telemetry::enabled();
        let ex = executor().with_telemetry(&tel);
        let cfg = ExecConfig {
            requests: 4,
            inter_arrival_ps: 0,
            mode: ExecMode::Pipelined,
        };
        let report = ex.run(&cfg);
        let events = tel.trace_events();
        let spans = ofpc_telemetry::validate_balanced(&events).expect("balanced");
        assert_eq!(spans, report.stages * cfg.requests);
        assert!(events.iter().all(|e| e.pid == track::GRAPH));
    }

    #[test]
    fn telemetry_does_not_perturb_results() {
        let tel = Telemetry::enabled();
        let bare = executor().run(&closed_batch(ExecMode::Pipelined));
        let traced = executor()
            .with_telemetry(&tel)
            .run(&closed_batch(ExecMode::Pipelined));
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
    }

    #[test]
    fn open_loop_arrivals_bound_latency() {
        let ex = executor();
        // Arrivals slower than the bottleneck stage: queues never build,
        // so pipelined latency equals the unloaded chain latency.
        let slow = ExecConfig {
            requests: 16,
            inter_arrival_ps: 10_000_000,
            mode: ExecMode::Pipelined,
        };
        let r = ex.run(&slow);
        assert_eq!(r.mean_latency_ps, r.p99_latency_ps);
    }
}
