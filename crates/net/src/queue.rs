//! Router egress queues.
//!
//! Per-link FIFO queues with a byte-capacity drop-tail policy, tracking
//! occupancy and drop counters. Queue depth is also what the photonic
//! comparator reads in the load-balancing use case, so depth is exposed
//! as a normalized value.

use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Drop-tail FIFO with a byte capacity.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    queue: VecDeque<Packet>,
    bytes_queued: usize,
    pub capacity_bytes: usize,
    pub enqueued: u64,
    pub dropped: u64,
    pub peak_bytes: usize,
}

/// Snapshot of queue state (what a controller or load balancer reads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    pub depth_packets: usize,
    pub depth_bytes: usize,
    pub enqueued: u64,
    pub dropped: u64,
    pub peak_bytes: usize,
}

impl DropTailQueue {
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            queue: VecDeque::new(),
            bytes_queued: 0,
            capacity_bytes,
            enqueued: 0,
            dropped: 0,
            peak_bytes: 0,
        }
    }

    /// Enqueue a packet; returns `false` (and counts a drop) when the
    /// packet does not fit.
    pub fn push(&mut self, packet: Packet) -> bool {
        let size = packet.wire_bytes();
        if self.bytes_queued + size > self.capacity_bytes {
            self.dropped += 1;
            return false;
        }
        self.bytes_queued += size;
        self.peak_bytes = self.peak_bytes.max(self.bytes_queued);
        self.queue.push_back(packet);
        self.enqueued += 1;
        true
    }

    /// Dequeue the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes_queued -= p.wire_bytes();
        Some(p)
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes_queued
    }

    /// Occupancy as a fraction of capacity in `[0, 1]` — the analog
    /// value a photonic comparator reads for load balancing.
    pub fn occupancy(&self) -> f64 {
        self.bytes_queued as f64 / self.capacity_bytes as f64
    }

    pub fn stats(&self) -> QueueStats {
        QueueStats {
            depth_packets: self.queue.len(),
            depth_bytes: self.bytes_queued,
            enqueued: self.enqueued,
            dropped: self.dropped,
            peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn pkt(id: u32, payload_len: usize) -> Packet {
        Packet::data(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 0, 2),
            id,
            vec![0u8; payload_len],
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10_000);
        q.push(pkt(1, 10));
        q.push(pkt(2, 10));
        q.push(pkt(3, 10));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn byte_accounting() {
        let mut q = DropTailQueue::new(10_000);
        let p = pkt(1, 100);
        let size = p.wire_bytes();
        q.push(p);
        assert_eq!(q.bytes(), size);
        q.pop();
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn drop_tail_when_full() {
        // Capacity fits exactly two 16+84=100-byte packets.
        let p = pkt(0, 84);
        let cap = p.wire_bytes() * 2;
        let mut q = DropTailQueue::new(cap);
        assert!(q.push(pkt(1, 84)));
        assert!(q.push(pkt(2, 84)));
        assert!(!q.push(pkt(3, 84)));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.len(), 2);
        // Draining frees space again.
        q.pop();
        assert!(q.push(pkt(4, 84)));
    }

    #[test]
    fn occupancy_and_peak() {
        let p = pkt(0, 84);
        let cap = p.wire_bytes() * 4;
        let mut q = DropTailQueue::new(cap);
        q.push(pkt(1, 84));
        q.push(pkt(2, 84));
        assert!((q.occupancy() - 0.5).abs() < 1e-12);
        q.pop();
        assert!((q.occupancy() - 0.25).abs() < 1e-12);
        // Peak remembers the high-water mark.
        assert_eq!(q.peak_bytes, p.wire_bytes() * 2);
        let s = q.stats();
        assert_eq!(s.depth_packets, 1);
        assert_eq!(s.enqueued, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        DropTailQueue::new(0);
    }
}
