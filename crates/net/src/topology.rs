//! WAN topologies.
//!
//! Nodes are router sites; links are fiber pairs with real lengths, so
//! propagation delay falls out of the speed of light in glass. Builders
//! cover the paper's Fig. 1 four-site example, classic research WANs
//! (an Abilene-like continental backbone), and parametric families
//! (line, ring, star, random geometric) for the controller-scaling
//! experiment E6.

use ofpc_photonics::units;
use ofpc_photonics::SimRng;
use serde::{Deserialize, Serialize};

/// Node identifier (index into the topology's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Link identifier (index into the topology's link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A router site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
}

/// A bidirectional fiber link between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub length_km: f64,
    /// Line capacity per direction, bits/s.
    pub capacity_bps: f64,
}

impl Link {
    /// One-way propagation delay, integer picoseconds.
    pub fn delay_ps(&self) -> u64 {
        units::fiber_delay_ps(self.length_km)
    }

    /// The far end relative to `from`, if `from` is an endpoint.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Default per-wavelength line rate: the §5 headline 800 Gbps.
pub const DEFAULT_CAPACITY_BPS: f64 = 800e9;

/// A WAN topology.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    pub nodes: Vec<Node>,
    pub links: Vec<Link>,
}

impl Topology {
    pub fn new() -> Self {
        Topology::default()
    }

    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into() });
        id
    }

    pub fn add_link(&mut self, a: NodeId, b: NodeId, length_km: f64) -> LinkId {
        self.add_link_with_capacity(a, b, length_km, DEFAULT_CAPACITY_BPS)
    }

    pub fn add_link_with_capacity(
        &mut self,
        a: NodeId,
        b: NodeId,
        length_km: f64,
        capacity_bps: f64,
    ) -> LinkId {
        assert!(a != b, "self-loops are not allowed");
        assert!((a.0 as usize) < self.nodes.len(), "node {a:?} out of range");
        assert!((b.0 as usize) < self.nodes.len(), "node {b:?} out of range");
        assert!(
            length_km >= 0.0 && capacity_bps > 0.0,
            "bad link parameters"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            length_km,
            capacity_bps,
        });
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Find a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Links incident to `node` with the neighbor at the far end.
    pub fn neighbors(&self, node: NodeId) -> Vec<(LinkId, NodeId)> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.other(node).map(|n| (LinkId(i as u32), n)))
            .collect()
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for (_, next) in self.neighbors(n) {
                if !seen[next.0 as usize] {
                    seen[next.0 as usize] = true;
                    stack.push(next);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// The paper's Fig. 1 scenario: four sites A, B, C, D. A connects to
    /// B and C; B and C each connect to D — two disjoint A→D paths, one
    /// through each compute site.
    pub fn fig1() -> Self {
        let mut t = Topology::new();
        let a = t.add_node("A");
        let b = t.add_node("B");
        let c = t.add_node("C");
        let d = t.add_node("D");
        t.add_link(a, b, 800.0);
        t.add_link(a, c, 900.0);
        t.add_link(b, d, 700.0);
        t.add_link(c, d, 600.0);
        t
    }

    /// An Abilene-like 11-node continental backbone (names and rough
    /// great-circle fiber lengths of the classic research WAN).
    pub fn abilene() -> Self {
        let mut t = Topology::new();
        let names = [
            "Seattle",
            "Sunnyvale",
            "LosAngeles",
            "Denver",
            "KansasCity",
            "Houston",
            "Chicago",
            "Indianapolis",
            "Atlanta",
            "WashingtonDC",
            "NewYork",
        ];
        let ids: Vec<NodeId> = names.iter().map(|n| t.add_node(*n)).collect();
        let links = [
            (0, 1, 1342.0),
            (0, 3, 2113.0),
            (1, 2, 573.0),
            (1, 3, 1512.0),
            (2, 5, 2472.0),
            (3, 4, 966.0),
            (4, 5, 1178.0),
            (4, 7, 724.0),
            (5, 8, 1288.0),
            (6, 7, 294.0),
            (6, 10, 1143.0),
            (7, 8, 687.0),
            (8, 9, 870.0),
            (9, 10, 366.0),
        ];
        for (a, b, km) in links {
            t.add_link(ids[a], ids[b], km);
        }
        t
    }

    /// A line of `n` nodes with uniform `km` spans.
    pub fn line(n: usize, km: f64) -> Self {
        assert!(n >= 1, "a line needs at least one node");
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            t.add_link(w[0], w[1], km);
        }
        t
    }

    /// A ring of `n` nodes with uniform `km` spans.
    pub fn ring(n: usize, km: f64) -> Self {
        assert!(n >= 3, "a ring needs at least three nodes");
        let mut t = Topology::line(n, km);
        t.add_link(NodeId(n as u32 - 1), NodeId(0), km);
        t
    }

    /// A two-tier leaf–spine datacenter fabric (§5 "On-fiber photonic
    /// computing in datacenters"): `leaves` top-of-rack switches each
    /// connected to every one of `spines` spine switches with short
    /// (`km`, typically « 1) intra-DC fiber. Nodes 0..leaves are leaves;
    /// leaves..leaves+spines are spines.
    pub fn leaf_spine(leaves: usize, spines: usize, km: f64) -> Self {
        assert!(leaves >= 2 && spines >= 1, "need ≥2 leaves and ≥1 spine");
        let mut t = Topology::new();
        let leaf_ids: Vec<NodeId> = (0..leaves)
            .map(|i| t.add_node(format!("leaf{i}")))
            .collect();
        let spine_ids: Vec<NodeId> = (0..spines)
            .map(|i| t.add_node(format!("spine{i}")))
            .collect();
        for &l in &leaf_ids {
            for &s in &spine_ids {
                t.add_link(l, s, km);
            }
        }
        t
    }

    /// A random geometric graph: `n` nodes scattered on a
    /// `side_km × side_km` square, connected to every neighbor within
    /// `radius_km`, then augmented with a spanning chain for
    /// connectivity. Deterministic per seed — used by E6 scaling sweeps.
    pub fn random_geometric(n: usize, side_km: f64, radius_km: f64, rng: &mut SimRng) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let mut t = Topology::new();
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                t.add_node(format!("n{i}"));
                (rng.uniform() * side_km, rng.uniform() * side_km)
            })
            .collect();
        for i in 0..n {
            for j in i + 1..n {
                let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
                if d <= radius_km {
                    t.add_link(NodeId(i as u32), NodeId(j as u32), d.max(1.0));
                }
            }
        }
        // Spanning chain guarantees connectivity regardless of radius.
        for i in 0..n - 1 {
            let already = t
                .neighbors(NodeId(i as u32))
                .iter()
                .any(|(_, nb)| *nb == NodeId(i as u32 + 1));
            if !already {
                let d = ((pts[i].0 - pts[i + 1].0).powi(2) + (pts[i].1 - pts[i + 1].1).powi(2))
                    .sqrt()
                    .max(1.0);
                t.add_link(NodeId(i as u32), NodeId(i as u32 + 1), d);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let t = Topology::fig1();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.link_count(), 4);
        assert!(t.is_connected());
        let a = t.find_node("A").unwrap();
        let nbrs: Vec<NodeId> = t.neighbors(a).iter().map(|(_, n)| *n).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&t.find_node("B").unwrap()));
        assert!(nbrs.contains(&t.find_node("C").unwrap()));
        // D is not adjacent to A: the compute sites are on the way.
        assert!(!nbrs.contains(&t.find_node("D").unwrap()));
    }

    #[test]
    fn abilene_shape() {
        let t = Topology::abilene();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 14);
        assert!(t.is_connected());
        assert!(t.find_node("Denver").is_some());
        assert!(t.find_node("Atlantis").is_none());
    }

    #[test]
    fn link_delay_is_physical() {
        let t = Topology::fig1();
        // 800 km ≈ 3.9 ms.
        let l = t.link(LinkId(0));
        let ms = l.delay_ps() as f64 / 1e9;
        assert!((ms - 3.9).abs() < 0.1, "delay {ms} ms");
    }

    #[test]
    fn line_and_ring() {
        let line = Topology::line(5, 100.0);
        assert_eq!(line.link_count(), 4);
        assert!(line.is_connected());
        let ring = Topology::ring(5, 100.0);
        assert_eq!(ring.link_count(), 5);
        assert_eq!(ring.neighbors(NodeId(0)).len(), 2);
    }

    #[test]
    fn leaf_spine_shape() {
        let t = Topology::leaf_spine(4, 2, 0.1);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 8);
        assert!(t.is_connected());
        // Every leaf reaches every spine directly.
        for l in 0..4 {
            assert_eq!(t.neighbors(NodeId(l)).len(), 2);
        }
        for s in 4..6 {
            assert_eq!(t.neighbors(NodeId(s)).len(), 4);
        }
        // Intra-DC distances: sub-µs propagation.
        assert!(t.link(LinkId(0)).delay_ps() < 1_000_000);
    }

    #[test]
    #[should_panic(expected = "leaves")]
    fn leaf_spine_rejects_degenerate() {
        Topology::leaf_spine(1, 1, 0.1);
    }

    #[test]
    fn random_geometric_is_connected_and_deterministic() {
        let mut rng1 = SimRng::seed_from_u64(42);
        let mut rng2 = SimRng::seed_from_u64(42);
        let t1 = Topology::random_geometric(20, 1000.0, 300.0, &mut rng1);
        let t2 = Topology::random_geometric(20, 1000.0, 300.0, &mut rng2);
        assert_eq!(t1, t2);
        assert!(t1.is_connected());
        assert_eq!(t1.node_count(), 20);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut t = Topology::new();
        t.add_node("x");
        t.add_node("y");
        assert!(!t.is_connected());
        let empty = Topology::new();
        assert!(empty.is_connected());
    }

    #[test]
    fn link_other_endpoint() {
        let t = Topology::fig1();
        let l = t.link(LinkId(0));
        assert_eq!(l.other(l.a), Some(l.b));
        assert_eq!(l.other(l.b), Some(l.a));
        assert_eq!(l.other(NodeId(99)), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_node() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(a, NodeId(5), 1.0);
    }
}
