//! The discrete-event core.
//!
//! A deterministic event queue over integer-picosecond timestamps. Ties
//! break on insertion order (a monotone sequence number), so two runs of
//! the same scenario pop events in exactly the same order — the property
//! the replay tests pin down.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `at_ps`, carrying a payload `E`.
#[derive(Debug)]
struct Scheduled<E> {
    at_ps: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ps == other.at_ps && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ps, self.seq).cmp(&(other.at_ps, other.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now_ps: u64,
    next_seq: u64,
    pub events_processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now_ps: 0,
            next_seq: 0,
            events_processed: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Schedule `payload` at absolute time `at_ps`. Scheduling in the
    /// past is a logic error.
    pub fn schedule_at(&mut self, at_ps: u64, payload: E) {
        assert!(
            at_ps >= self.now_ps,
            "cannot schedule into the past ({at_ps} < {})",
            self.now_ps
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            at_ps,
            seq,
            payload,
        }));
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay_ps: u64, payload: E) {
        self.schedule_at(self.now_ps.saturating_add(delay_ps), payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse(ev) = self.heap.pop()?;
        self.now_ps = ev.at_ps;
        self.events_processed += 1;
        Some((ev.at_ps, ev.payload))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time_ps(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(ev)| ev.at_ps)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now_ps(), 30);
        assert_eq!(q.events_processed, 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "first");
        q.schedule_at(5, "second");
        q.schedule_at(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_in(50, "y");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 150);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.schedule_at(10, 2);
        q.schedule_at(11, 3);
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        q.pop();
        q.schedule_at(50, "y");
    }

    #[test]
    fn empty_queue_behavior() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time_ps(), None);
        assert_eq!(q.len(), 0);
    }
}
