//! Zero-copy views over compute frames on the wire.
//!
//! [`Packet::from_wire`](crate::packet::Packet::from_wire) materializes
//! an owned packet — it decodes every
//! header field eagerly and `copy_to_bytes` the payload. That is the
//! right shape for the router simulator, which mutates TTLs and result
//! fields in place, but the million-tenant ingest front-end only needs
//! to *read* a handful of header fields per frame and hand the operand
//! segment onward. [`PchFrame`] is the read path for that scale: it
//! validates a [`Bytes`] buffer once and then serves every field as a
//! direct big-endian read from the original buffer. The payload accessor
//! is a refcounted [`Bytes::slice`] — no byte of the frame is ever
//! copied, and the view round-trips bit-identically with the owned
//! parser (pinned by the workspace property tests).
//!
//! Malformed input is a *value*, never a panic: every way a frame can be
//! short, mislabeled, or self-inconsistent maps to a typed
//! [`FrameError`], so a front-end can count and drop hostile frames
//! without tearing down its shard loop.

use crate::addr::Addr;
use crate::packet::{IP_HEADER_BYTES, PROTO_COMPUTE, PROTO_DATA};
use crate::pch::{PchHeader, PCH_WIRE_BYTES};
use bytes::Bytes;
use ofpc_engine::Primitive;

/// Why a byte buffer failed to validate as a compute frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the headers plus declared payload require.
    Truncated { need: usize, have: usize },
    /// The IP protocol field names neither data nor compute.
    BadProto(u8),
    /// A well-formed data frame, but the caller wanted compute.
    NotCompute,
    /// The PCH primitive id is not a known primitive.
    BadPrimitive(u8),
    /// The PCH declares more operand elements than the payload carries.
    OperandOverrun {
        operand_len: usize,
        payload_len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::BadProto(p) => write!(f, "unknown protocol {p:#04x}"),
            FrameError::NotCompute => write!(f, "not a compute frame"),
            FrameError::BadPrimitive(id) => write!(f, "unknown primitive id {id}"),
            FrameError::OperandOverrun {
                operand_len,
                payload_len,
            } => write!(
                f,
                "operand_len {operand_len} overruns the {payload_len}-byte payload"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Byte offsets inside the frame (see the `packet` module wire layout).
const OFF_SRC: usize = 0;
const OFF_DST: usize = 4;
const OFF_ID: usize = 8;
const OFF_LEN: usize = 12;
const OFF_TTL: usize = 14;
const OFF_PROTO: usize = 15;
const OFF_PCH: usize = IP_HEADER_BYTES;

#[inline]
fn be_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

#[inline]
fn be_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// A validated zero-copy view over one compute frame.
///
/// Construction ([`PchFrame::parse`]) proves once that every accessor's
/// bytes exist and that the primitive id decodes; after that, accessors
/// are plain offset reads with no failure path. The view owns a
/// refcounted handle to the underlying buffer, so it is `'static` and
/// can cross the shard-loop boundary without copying the frame.
#[derive(Debug, Clone)]
pub struct PchFrame {
    buf: Bytes,
    payload_len: usize,
    primitive: Primitive,
}

impl PchFrame {
    /// Validate `buf` as a compute frame. The only bytes inspected are
    /// the two headers; the payload is bounds-checked but untouched.
    pub fn parse(buf: Bytes) -> Result<Self, FrameError> {
        let have = buf.len();
        if have < IP_HEADER_BYTES {
            return Err(FrameError::Truncated {
                need: IP_HEADER_BYTES,
                have,
            });
        }
        match buf[OFF_PROTO] {
            PROTO_COMPUTE => {}
            PROTO_DATA => return Err(FrameError::NotCompute),
            other => return Err(FrameError::BadProto(other)),
        }
        let payload_len = be_u16(&buf, OFF_LEN) as usize;
        let need = IP_HEADER_BYTES + PCH_WIRE_BYTES + payload_len;
        if have < need {
            return Err(FrameError::Truncated { need, have });
        }
        let prim_id = buf[OFF_PCH];
        let primitive =
            Primitive::from_wire_id(prim_id).ok_or(FrameError::BadPrimitive(prim_id))?;
        let frame = PchFrame {
            buf,
            payload_len,
            primitive,
        };
        let operand_len = frame.operand_len() as usize;
        if operand_len > payload_len {
            return Err(FrameError::OperandOverrun {
                operand_len,
                payload_len,
            });
        }
        Ok(frame)
    }

    pub fn src(&self) -> Addr {
        Addr(be_u32(&self.buf, OFF_SRC))
    }

    pub fn dst(&self) -> Addr {
        Addr(be_u32(&self.buf, OFF_DST))
    }

    pub fn id(&self) -> u32 {
        be_u32(&self.buf, OFF_ID)
    }

    pub fn ttl(&self) -> u8 {
        self.buf[OFF_TTL]
    }

    pub fn primitive(&self) -> Primitive {
        self.primitive
    }

    pub fn flags(&self) -> u8 {
        self.buf[OFF_PCH + 1]
    }

    pub fn op_id(&self) -> u16 {
        be_u16(&self.buf, OFF_PCH + 2)
    }

    pub fn result_q88(&self) -> i16 {
        be_u16(&self.buf, OFF_PCH + 4) as i16
    }

    pub fn operand_len(&self) -> u16 {
        be_u16(&self.buf, OFF_PCH + 6)
    }

    /// Total frame size on the wire, bytes (headers + payload; trailing
    /// bytes beyond the declared payload are not part of the frame).
    pub fn wire_bytes(&self) -> usize {
        IP_HEADER_BYTES + PCH_WIRE_BYTES + self.payload_len
    }

    /// The payload segment as a refcounted slice of the original buffer
    /// — zero bytes copied.
    pub fn payload(&self) -> Bytes {
        let start = IP_HEADER_BYTES + PCH_WIRE_BYTES;
        self.buf.slice(start..start + self.payload_len)
    }

    /// Materialize the owned [`PchHeader`] (differential testing against
    /// the eager parser; the hot path never needs this).
    pub fn header(&self) -> PchHeader {
        PchHeader {
            primitive: self.primitive,
            flags: self.flags(),
            op_id: self.op_id(),
            result_q88: self.result_q88(),
            operand_len: self.operand_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn compute_frame() -> Bytes {
        let pch = PchHeader::request(Primitive::VectorDotProduct, 42, 4);
        Packet::compute(Addr(7), Addr(9), 1234, pch, vec![1u8, 2, 3, 4]).to_wire()
    }

    #[test]
    fn view_matches_owned_parser() {
        let wire = compute_frame();
        let owned = Packet::from_wire(wire.clone()).expect("owned parse");
        let view = PchFrame::parse(wire).expect("view parse");
        assert_eq!(view.src(), owned.src);
        assert_eq!(view.dst(), owned.dst);
        assert_eq!(view.id(), owned.id);
        assert_eq!(view.ttl(), owned.ttl);
        assert_eq!(view.header(), owned.pch.expect("compute"));
        assert_eq!(view.payload(), owned.payload);
        assert_eq!(view.wire_bytes(), owned.wire_bytes());
    }

    #[test]
    fn payload_slice_shares_the_frame_allocation() {
        let wire = compute_frame();
        let base = wire.as_ptr() as usize;
        let view = PchFrame::parse(wire).expect("parse");
        let payload = view.payload();
        let off = payload.as_ptr() as usize - base;
        assert_eq!(off, IP_HEADER_BYTES + PCH_WIRE_BYTES, "no copy happened");
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let wire = compute_frame();
        for cut in 0..wire.len() {
            let err = PchFrame::parse(wire.slice(..cut)).expect_err("short frame");
            match err {
                FrameError::Truncated { need, have } => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn data_frames_and_junk_protocols_are_typed_errors() {
        let data = Packet::data(Addr(1), Addr(2), 3, vec![0u8; 4]).to_wire();
        assert_eq!(PchFrame::parse(data).unwrap_err(), FrameError::NotCompute);
        let mut junk = compute_frame().to_vec();
        junk[OFF_PROTO] = 0x55;
        assert_eq!(
            PchFrame::parse(junk.into()).unwrap_err(),
            FrameError::BadProto(0x55)
        );
    }

    #[test]
    fn operand_overrun_is_rejected() {
        let pch = PchHeader::request(Primitive::VectorDotProduct, 0, 9);
        let wire = Packet::compute(Addr(1), Addr(2), 3, pch, vec![0u8; 4]).to_wire();
        assert_eq!(
            PchFrame::parse(wire).unwrap_err(),
            FrameError::OperandOverrun {
                operand_len: 9,
                payload_len: 4
            }
        );
    }
}
