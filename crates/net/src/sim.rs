//! The WAN discrete-event simulator.
//!
//! Packet-level simulation of Fig. 1's network: routers with per-link
//! egress queues and store-and-forward transmission, fiber propagation at
//! the speed of light in glass, dual-field forwarding
//! ([`crate::routing::RoutingTable`]), and **photonic engine slots** at
//! compute-capable sites that execute a packet's operation in-flight.
//!
//! Engine execution here uses the digitally-equivalent operation
//! semantics with a configurable analog noise term and the paper's
//! photonic energy constants; the *physical* fidelity of those semantics
//! is established separately by `ofpc-transponder`'s optical-field tests
//! (same math, device-level). This split keeps network-scale experiments
//! fast while staying calibrated to the physics.

use crate::addr::{Addr, Prefix};
use crate::events::EventQueue;
use crate::packet::Packet;
use crate::pch::ResultStatus;
use crate::queue::{DropTailQueue, QueueStats};
use crate::routing::{shortest_paths_filtered, RouteEntry, RoutingTable};
use crate::stats::{DeliveryRecord, DropReason, StatsCollector};
use crate::topology::{LinkId, NodeId, Topology};
use ofpc_engine::Primitive;
use ofpc_photonics::energy::constants;
use ofpc_photonics::SimRng;
use ofpc_telemetry::{labels, track, Counter, Telemetry};
use std::collections::HashMap;

/// Default router egress queue capacity, bytes (1 MB class).
pub const DEFAULT_QUEUE_BYTES: usize = 1 << 20;

/// Photonic engine symbol rate used for in-flight op latency, Hz.
pub const ENGINE_SYMBOL_RATE_HZ: f64 = 32e9;

/// Fixed analog pipeline latency per in-flight operation, ps.
pub const ENGINE_FIXED_LATENCY_PS: u64 = 5_000; // 5 ns

/// The operation semantics installed in an engine slot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum OpSpec {
    /// P1: dot product against stored weights.
    Dot { weights: Vec<f64> },
    /// P2: Hamming match against a stored bit pattern (operands ≥ 0.5
    /// read as 1).
    Match { pattern: Vec<bool> },
    /// P3: element-wise nonlinear activation (result = element count).
    Nonlinear,
    /// Distributed P1 (§5 extension): one *part* of a dot product that
    /// is split across several transponders along the path. The part
    /// multiplies `weights` against `operands[offset..offset+len]`,
    /// accumulates into the PCH result field, and — unless this is the
    /// final part — retargets the header at `next_op` so op-granular
    /// routing hands the packet to the next part's site.
    DotPartial {
        weights: Vec<f64>,
        offset: usize,
        next_op: Option<u16>,
    },
}

impl OpSpec {
    pub fn primitive(&self) -> Primitive {
        match self {
            OpSpec::Dot { .. } | OpSpec::DotPartial { .. } => Primitive::VectorDotProduct,
            OpSpec::Match { .. } => Primitive::PatternMatching,
            OpSpec::Nonlinear => Primitive::NonlinearFunction,
        }
    }
}

/// One photonic engine slot at a node.
#[derive(Debug, Clone)]
pub struct EngineSlot {
    pub op_id: u16,
    pub spec: OpSpec,
    /// Additive Gaussian noise on analog results (0 = ideal).
    pub noise_sigma: f64,
    /// Whether the watchdog considers this engine trustworthy. Unhealthy
    /// slots skip execution (packets pass through tagged
    /// [`ResultStatus::EngineUnhealthy`]) instead of emitting garbage.
    pub healthy: bool,
    pub executions: u64,
    pub macs: u64,
    pub energy_j: f64,
}

/// Simulator events.
#[derive(Debug)]
enum Ev {
    /// A packet enters the network at `node`.
    Inject { node: NodeId, packet: Packet },
    /// A packet arrives at `node` from link `via`. If the link was cut
    /// while the packet was in flight, the light is lost and the packet
    /// dropped.
    Arrive {
        node: NodeId,
        packet: Packet,
        via: LinkId,
    },
    /// The engine at `node` finished computing on `packet`.
    EngineDone { node: NodeId, packet: Packet },
    /// A link direction finished serializing its current packet.
    TxDone { dir: usize },
    /// Fault injection: a fiber is cut (`up = false`) or spliced back.
    LinkState { link: LinkId, up: bool },
    /// Fault injection: all engine slots at `node` change health.
    EngineHealth { node: NodeId, healthy: bool },
    /// Fault injection: analog drift moved the effective noise at `node`
    /// (EDFA gain drift, laser droop, PD responsivity degradation all
    /// land here as an effective sigma).
    EngineNoise { node: NodeId, sigma: f64 },
}

/// Per-direction link state.
#[derive(Debug)]
struct LinkDir {
    queue: DropTailQueue,
    busy: bool,
}

/// The network simulator.
#[derive(Debug)]
pub struct Network {
    pub topo: Topology,
    tables: Vec<RoutingTable>,
    dirs: Vec<LinkDir>,
    engines: HashMap<NodeId, Vec<EngineSlot>>,
    events: EventQueue<Ev>,
    pub stats: StatsCollector,
    rng: SimRng,
    /// Per-packet bookkeeping: creation time and hop count.
    meta: HashMap<u32, (u64, u32)>,
    /// Per-link up/down state (fiber cuts). Indexed by `LinkId`.
    link_up: Vec<bool>,
    /// Observability handle (disabled by default; see
    /// [`Network::set_telemetry`]).
    tel: Telemetry,
    series: NetSeries,
}

/// Pre-registered registry series mirroring [`StatsCollector`]'s
/// counters plus event-loop and engine profiling hooks. All handles are
/// no-ops until [`Network::set_telemetry`] installs live ones, so the
/// hot path pays one branch per sample when telemetry is off.
#[derive(Debug, Clone, Default)]
struct NetSeries {
    /// Events handled by the loop, labeled by kind (profiling hook).
    events: [Counter; 7],
    injected: Counter,
    delivered: Counter,
    drops: [Counter; 4],
    engine_execs: Counter,
    engine_macs: Counter,
}

const EV_KINDS: [&str; 7] = [
    "inject",
    "arrive",
    "engine-done",
    "tx-done",
    "link-state",
    "engine-health",
    "engine-noise",
];

fn ev_kind(ev: &Ev) -> usize {
    match ev {
        Ev::Inject { .. } => 0,
        Ev::Arrive { .. } => 1,
        Ev::EngineDone { .. } => 2,
        Ev::TxDone { .. } => 3,
        Ev::LinkState { .. } => 4,
        Ev::EngineHealth { .. } => 5,
        Ev::EngineNoise { .. } => 6,
    }
}

fn drop_idx(reason: DropReason) -> usize {
    match reason {
        DropReason::QueueFull => 0,
        DropReason::TtlExpired => 1,
        DropReason::NoRoute => 2,
        DropReason::LinkDown => 3,
    }
}

const DROP_KINDS: [&str; 4] = ["queue-full", "ttl-expired", "no-route", "link-down"];

impl Network {
    /// Build a simulator over `topo` with default queue sizes.
    pub fn new(topo: Topology, rng: SimRng) -> Self {
        Self::with_queue_capacity(topo, rng, DEFAULT_QUEUE_BYTES)
    }

    pub fn with_queue_capacity(topo: Topology, rng: SimRng, queue_bytes: usize) -> Self {
        let tables = vec![RoutingTable::new(); topo.node_count()];
        let dirs = (0..topo.link_count() * 2)
            .map(|_| LinkDir {
                queue: DropTailQueue::new(queue_bytes),
                busy: false,
            })
            .collect();
        let link_up = vec![true; topo.link_count()];
        Network {
            topo,
            tables,
            dirs,
            engines: HashMap::new(),
            events: EventQueue::new(),
            stats: StatsCollector::new(),
            rng,
            meta: HashMap::new(),
            link_up,
            tel: Telemetry::disabled(),
            series: NetSeries::default(),
        }
    }

    /// Attach an observability handle: mirrors the [`StatsCollector`]
    /// counters onto the shared registry as `net_*` series, counts
    /// event-loop iterations by kind, tracks engine executions/MACs,
    /// emits per-op engine spans, and records fault transitions
    /// (link/engine state flips) as structured instant trace events.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.series = NetSeries {
            events: std::array::from_fn(|i| {
                tel.counter("net_events_total", &labels(&[("kind", EV_KINDS[i])]))
            }),
            injected: tel.counter("net_injected_total", &Vec::new()),
            delivered: tel.counter("net_delivered_total", &Vec::new()),
            drops: std::array::from_fn(|i| {
                tel.counter("net_drops_total", &labels(&[("reason", DROP_KINDS[i])]))
            }),
            engine_execs: tel.counter("net_engine_executions_total", &Vec::new()),
            engine_macs: tel.counter("net_engine_macs_total", &Vec::new()),
        };
    }

    /// Record a drop in both the exact collector and the registry.
    fn note_drop(&mut self, reason: DropReason) {
        self.stats.record_drop(reason);
        self.series.drops[drop_idx(reason)].inc();
    }

    /// The /24 prefix owned by a node (site addressing `10.<site>.0/24`).
    pub fn node_prefix(node: NodeId) -> Prefix {
        Prefix::new(Addr::site_host(node.0 as u16, 0), 24)
    }

    /// Host address `host` at `node`.
    pub fn node_addr(node: NodeId, host: u8) -> Addr {
        Addr::site_host(node.0 as u16, host)
    }

    /// The node that owns `addr`, if any.
    pub fn addr_node(&self, addr: Addr) -> Option<NodeId> {
        let o = addr.octets();
        if o[0] != 10 {
            return None;
        }
        let site = ((o[1] as u32) << 8) | o[2] as u32;
        if (site as usize) < self.topo.node_count() {
            Some(NodeId(site))
        } else {
            None
        }
    }

    /// Install delay-shortest-path routes for every (node, destination)
    /// pair — the plain-IP baseline the controller's compute overrides
    /// layer on top of. Downed links are excluded, so calling this again
    /// after a fiber cut reconverges the plain routing plane (see
    /// [`Network::reconverge_routes`]). Destinations unreachable over the
    /// surviving links get a null next hop (packets for them drop with
    /// `NoRoute` rather than chasing a stale path).
    pub fn install_shortest_path_routes(&mut self) {
        let up = self.link_up.clone();
        let ok = move |l: LinkId| up[l.0 as usize];
        for n in 0..self.topo.node_count() {
            let src = NodeId(n as u32);
            let paths = shortest_paths_filtered(&self.topo, src, &ok);
            for d in 0..self.topo.node_count() {
                let dst = NodeId(d as u32);
                let next_hop = if dst == src {
                    None
                } else {
                    paths.get(&dst).and_then(|&(_, link)| link)
                };
                self.tables[n].install(
                    Self::node_prefix(dst),
                    RouteEntry {
                        next_hop,
                        ..Default::default()
                    },
                );
            }
        }
    }

    /// Re-run plain-route installation over the surviving links. This
    /// *replaces* each prefix entry, wiping stale compute overrides that
    /// may point at failed sites — the controller re-applies its plan
    /// after reconvergence (protection switching).
    pub fn reconverge_routes(&mut self) {
        self.install_shortest_path_routes();
    }

    /// Install compute-detour overrides: packets still awaiting
    /// `primitive` are steered toward `via` (where a matching engine
    /// lives) at every node, for every destination prefix. At `via`
    /// itself no override is installed — after computing, packets follow
    /// plain routes. This is the §3 controller's job; the controller
    /// crate calls this.
    pub fn install_compute_detour(&mut self, primitive: Primitive, via: NodeId) {
        let up = self.link_up.clone();
        let ok = move |l: LinkId| up[l.0 as usize];
        for n in 0..self.topo.node_count() {
            let here = NodeId(n as u32);
            if here == via {
                continue;
            }
            let paths = shortest_paths_filtered(&self.topo, here, &ok);
            let Some(&(_, Some(first_link))) = paths.get(&via) else {
                continue; // via unreachable from here
            };
            for d in 0..self.topo.node_count() {
                let dst = NodeId(d as u32);
                if dst == here {
                    continue;
                }
                self.tables[n].install_compute_override(
                    Self::node_prefix(dst),
                    primitive,
                    first_link,
                );
            }
        }
    }

    /// Direct access to a node's routing table (controller interface).
    pub fn routing_table_mut(&mut self, node: NodeId) -> &mut RoutingTable {
        &mut self.tables[node.0 as usize]
    }

    pub fn routing_table(&self, node: NodeId) -> &RoutingTable {
        &self.tables[node.0 as usize]
    }

    /// Install a photonic engine slot at `node`.
    pub fn add_engine(&mut self, node: NodeId, op_id: u16, spec: OpSpec, noise_sigma: f64) {
        assert!((node.0 as usize) < self.topo.node_count(), "unknown node");
        self.engines.entry(node).or_default().push(EngineSlot {
            op_id,
            spec,
            noise_sigma: noise_sigma.max(0.0),
            healthy: true,
            executions: 0,
            macs: 0,
            energy_j: 0.0,
        });
    }

    /// Engine slots at a node (read-only view).
    pub fn engines_at(&self, node: NodeId) -> &[EngineSlot] {
        self.engines.get(&node).map_or(&[], |v| v.as_slice())
    }

    /// Remove all engine slots at a node, returning them (controller
    /// reconfiguration).
    pub fn clear_engines(&mut self, node: NodeId) -> Vec<EngineSlot> {
        self.engines.remove(&node).unwrap_or_default()
    }

    /// Inject a packet into the network at `node` at absolute `at_ps`.
    pub fn inject(&mut self, at_ps: u64, node: NodeId, packet: Packet) {
        self.events.schedule_at(at_ps, Ev::Inject { node, packet });
    }

    // ------------------------------------------------------------------
    // Fault injection (the `ofpc-faults` crate drives these).
    // ------------------------------------------------------------------

    /// Whether a link currently carries light.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0 as usize]
    }

    /// Links currently down (cut fibers).
    pub fn down_links(&self) -> Vec<LinkId> {
        (0..self.topo.link_count() as u32)
            .map(LinkId)
            .filter(|l| !self.link_up[l.0 as usize])
            .collect()
    }

    /// Immediately cut (`up = false`) or restore a fiber. Cutting drains
    /// both egress queues — those photons are lost, counted as
    /// [`DropReason::LinkDown`]. Routes are *not* reconverged here;
    /// detection and protection switching are the controller's job.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let idx = link.0 as usize;
        assert!(idx < self.topo.link_count(), "unknown link");
        let was_up = self.link_up[idx];
        self.link_up[idx] = up;
        if up {
            if !was_up {
                for a_to_b in [true, false] {
                    self.try_transmit(Self::dir_index(link, a_to_b));
                }
            }
            return;
        }
        for a_to_b in [true, false] {
            let dir = Self::dir_index(link, a_to_b);
            while let Some(p) = self.dirs[dir].queue.pop() {
                self.meta.remove(&p.id);
                self.note_drop(DropReason::LinkDown);
            }
        }
    }

    /// Schedule a fiber cut at absolute `at_ps`.
    pub fn schedule_link_down(&mut self, at_ps: u64, link: LinkId) {
        self.events
            .schedule_at(at_ps, Ev::LinkState { link, up: false });
    }

    /// Schedule a fiber repair at absolute `at_ps`.
    pub fn schedule_link_up(&mut self, at_ps: u64, link: LinkId) {
        self.events
            .schedule_at(at_ps, Ev::LinkState { link, up: true });
    }

    /// Immediately set the health of every engine slot at `node`.
    pub fn set_engine_health(&mut self, node: NodeId, healthy: bool) {
        if let Some(slots) = self.engines.get_mut(&node) {
            for s in slots {
                s.healthy = healthy;
            }
        }
    }

    /// Schedule an engine hard-fail (`healthy = false`) or repair.
    pub fn schedule_engine_health(&mut self, at_ps: u64, node: NodeId, healthy: bool) {
        self.events
            .schedule_at(at_ps, Ev::EngineHealth { node, healthy });
    }

    /// Immediately set the effective analog noise sigma of every engine
    /// slot at `node` (drift models feed their current value here).
    pub fn set_engine_noise(&mut self, node: NodeId, sigma: f64) {
        if let Some(slots) = self.engines.get_mut(&node) {
            for s in slots {
                s.noise_sigma = sigma.max(0.0);
            }
        }
    }

    /// Schedule a drift step: at `at_ps` the engines at `node` run with
    /// `sigma` effective noise.
    pub fn schedule_engine_noise(&mut self, at_ps: u64, node: NodeId, sigma: f64) {
        self.events
            .schedule_at(at_ps, Ev::EngineNoise { node, sigma });
    }

    /// Packets currently inside the simulator (injected, neither
    /// delivered nor dropped) — the in-flight term of conservation.
    pub fn in_flight_count(&self) -> usize {
        self.meta.len()
    }

    /// Current simulation time.
    pub fn now_ps(&self) -> u64 {
        self.events.now_ps()
    }

    /// Queue statistics for a link direction (`a_to_b` selects the
    /// direction from `link.a` to `link.b`).
    pub fn queue_stats(&self, link: LinkId, a_to_b: bool) -> QueueStats {
        self.dirs[Self::dir_index(link, a_to_b)].queue.stats()
    }

    /// Queue occupancy in `[0,1]` — the analog the load balancer reads.
    pub fn queue_occupancy(&self, link: LinkId, a_to_b: bool) -> f64 {
        self.dirs[Self::dir_index(link, a_to_b)].queue.occupancy()
    }

    fn dir_index(link: LinkId, a_to_b: bool) -> usize {
        link.0 as usize * 2 + if a_to_b { 0 } else { 1 }
    }

    /// Run until no events remain or `max_events` have fired. Returns
    /// events processed in this call.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let start = self.events.events_processed;
        while self.events.events_processed - start < max_events {
            let Some((_, ev)) = self.events.pop() else {
                break;
            };
            self.dispatch(ev);
        }
        self.events.events_processed - start
    }

    /// Process every event with a timestamp ≤ `t_ps`, leaving later
    /// events queued. Lets callers interleave control decisions (e.g.
    /// load-balancer occupancy reads) with simulated time.
    pub fn run_until(&mut self, t_ps: u64) {
        while let Some(next) = self.events.peek_time_ps() {
            if next > t_ps {
                break;
            }
            let Some((_, ev)) = self.events.pop() else {
                break;
            };
            self.dispatch(ev);
        }
    }

    /// Run to completion (panics if the event count explodes past the
    /// safety cap — a routing loop would do that).
    pub fn run_to_idle(&mut self) {
        let cap = 100_000_000;
        let ran = self.run(cap);
        assert!(
            ran < cap,
            "simulation did not converge: possible routing loop"
        );
    }

    fn dispatch(&mut self, ev: Ev) {
        self.series.events[ev_kind(&ev)].inc();
        match ev {
            Ev::Inject { node, packet } => {
                self.stats.injected += 1;
                self.series.injected.inc();
                self.meta.insert(packet.id, (self.events.now_ps(), 0));
                self.handle_at_node(node, packet);
            }
            Ev::Arrive { node, packet, via } => {
                // A cut mid-propagation loses the light: the packet never
                // makes it to the far end.
                if !self.link_up[via.0 as usize] {
                    self.meta.remove(&packet.id);
                    self.note_drop(DropReason::LinkDown);
                    return;
                }
                if let Some(m) = self.meta.get_mut(&packet.id) {
                    m.1 += 1;
                }
                self.handle_at_node(node, packet);
            }
            Ev::EngineDone { node, packet } => {
                self.forward(node, packet);
            }
            Ev::TxDone { dir } => {
                self.dirs[dir].busy = false;
                self.try_transmit(dir);
            }
            Ev::LinkState { link, up } => {
                self.tel.instant(
                    track::NET,
                    u64::from(link.0),
                    "fault",
                    if up { "link.up" } else { "link.down" },
                    self.events.now_ps(),
                    vec![("link".to_string(), link.0.to_string())],
                );
                self.set_link_up(link, up);
            }
            Ev::EngineHealth { node, healthy } => {
                self.tel.instant(
                    track::NET,
                    u64::from(node.0),
                    "fault",
                    if healthy {
                        "engine.repair"
                    } else {
                        "engine.fail"
                    },
                    self.events.now_ps(),
                    vec![("node".to_string(), node.0.to_string())],
                );
                self.set_engine_health(node, healthy);
            }
            Ev::EngineNoise { node, sigma } => {
                self.tel.instant(
                    track::NET,
                    u64::from(node.0),
                    "fault",
                    "engine.drift",
                    self.events.now_ps(),
                    vec![
                        ("node".to_string(), node.0.to_string()),
                        ("sigma".to_string(), format!("{sigma:e}")),
                    ],
                );
                self.set_engine_noise(node, sigma);
            }
        }
    }

    /// Whether `packet` still awaits computation; returns the primitive
    /// and the op id for op-granular routing.
    fn pending_primitive(packet: &Packet) -> Option<(Primitive, u16)> {
        packet
            .pch
            .as_ref()
            .filter(|pch| !pch.is_computed())
            .map(|pch| (pch.primitive, pch.op_id))
    }

    fn handle_at_node(&mut self, node: NodeId, mut packet: Packet) {
        // In-flight photonic computation happens before any local
        // delivery or forwarding decision (the engine sits on the
        // incoming light, Fig. 4).
        if let Some((pending, _)) = Self::pending_primitive(&packet) {
            if let Some(latency_ps) = self.try_execute(node, pending, &mut packet) {
                self.series.engine_execs.inc();
                self.series.engine_macs.add(packet.operands().len() as u64);
                // One span per in-flight op on the packet's own track:
                // packets can overlap at a node, requests never overlap
                // on their own id.
                self.tel.span_args(
                    track::SITES,
                    u64::from(packet.id),
                    "net",
                    "engine.op",
                    self.events.now_ps(),
                    self.events.now_ps() + latency_ps,
                    vec![("node".to_string(), node.0.to_string())],
                );
                self.events
                    .schedule_in(latency_ps, Ev::EngineDone { node, packet });
                return;
            }
        }
        self.forward(node, packet);
    }

    /// Attempt to execute the packet's pending op at `node`; on success
    /// marks the PCH computed and returns the engine latency.
    fn try_execute(
        &mut self,
        node: NodeId,
        pending: Primitive,
        packet: &mut Packet,
    ) -> Option<u64> {
        let pch = packet.pch.as_ref()?;
        let op_id = pch.op_id;
        let slots = self.engines.get_mut(&node)?;
        let idx = slots
            .iter()
            .position(|s| s.op_id == op_id && s.spec.primitive() == pending)?;
        if !slots[idx].healthy {
            // A matching engine exists but its watchdog tripped: skip the
            // op and tag the header so the receiver can tell this from a
            // valid analog result.
            packet
                .pch
                .as_mut()
                .expect("checked above")
                .set_status(ResultStatus::EngineUnhealthy);
            return None;
        }
        let slot = &mut slots[idx];
        let operands = packet.operands();
        let n = operands.len();
        let noise = if slot.noise_sigma > 0.0 {
            self.rng.normal(0.0, slot.noise_sigma)
        } else {
            0.0
        };
        // Distributed parts accumulate instead of finishing; handle them
        // before the scalar-result ops.
        if let OpSpec::DotPartial {
            weights,
            offset,
            next_op,
        } = &slot.spec
        {
            let (offset, next_op) = (*offset, *next_op);
            if offset + weights.len() > n {
                return None; // part out of range: skip
            }
            let partial = operands[offset..offset + weights.len()]
                .iter()
                .zip(weights)
                .map(|(a, w)| a * w)
                .sum::<f64>()
                + noise;
            let part_len = weights.len();
            slot.executions += 1;
            slot.macs += part_len as u64;
            slot.energy_j += part_len as f64 * constants::PHOTONIC_MAC_J + constants::ADC_SAMPLE_J;
            let pch = packet.pch.as_mut().expect("checked above");
            match next_op {
                Some(next) => {
                    pch.add_partial(partial);
                    pch.retarget(next);
                }
                None => pch.finish_partial(partial),
            }
            let symbol_ps = (part_len as f64 / ENGINE_SYMBOL_RATE_HZ * 1e12).round() as u64;
            return Some(ENGINE_FIXED_LATENCY_PS + symbol_ps);
        }
        let result = match &slot.spec {
            OpSpec::Dot { weights } => {
                if weights.len() != n {
                    return None; // operand shape mismatch: skip
                }
                operands
                    .iter()
                    .zip(weights)
                    .map(|(a, w)| a * w)
                    .sum::<f64>()
                    + noise
            }
            OpSpec::Match { pattern } => {
                if pattern.len() != n {
                    return None;
                }
                let dist = operands
                    .iter()
                    .zip(pattern)
                    .filter(|(v, &p)| (**v >= 0.5) != p)
                    .count() as f64;
                (dist + noise).max(0.0)
            }
            OpSpec::Nonlinear => n as f64,
            OpSpec::DotPartial { .. } => unreachable!("handled above"),
        };
        slot.executions += 1;
        slot.macs += n as u64;
        slot.energy_j += n as f64 * constants::PHOTONIC_MAC_J + constants::ADC_SAMPLE_J;
        packet
            .pch
            .as_mut()
            .expect("checked above")
            .mark_computed(result);
        let symbol_ps = (n as f64 / ENGINE_SYMBOL_RATE_HZ * 1e12).round() as u64;
        Some(ENGINE_FIXED_LATENCY_PS + symbol_ps)
    }

    fn forward(&mut self, node: NodeId, mut packet: Packet) {
        // Local delivery?
        if self.addr_node(packet.dst) == Some(node) {
            let (created, hops) = self.meta.remove(&packet.id).unwrap_or((0, 0));
            self.series.delivered.inc();
            self.stats.record_delivery(DeliveryRecord {
                packet_id: packet.id,
                created_ps: created,
                delivered_ps: self.events.now_ps(),
                hops,
                computed: packet.pch.map(|p| p.is_computed()).unwrap_or(false),
                status: packet
                    .pch
                    .map(|p| p.status())
                    .unwrap_or(crate::pch::ResultStatus::Ok),
                wire_bytes: packet.wire_bytes(),
            });
            return;
        }
        if !packet.decrement_ttl() {
            self.note_drop(DropReason::TtlExpired);
            self.meta.remove(&packet.id);
            return;
        }
        let pending = Self::pending_primitive(&packet);
        let Some(link) = self.tables[node.0 as usize]
            .lookup_op(packet.dst, pending.map(|(p, op)| (p, Some(op))))
        else {
            self.note_drop(DropReason::NoRoute);
            self.meta.remove(&packet.id);
            return;
        };
        if !self.link_up[link.0 as usize] {
            // Loss of light: the route still points at a cut fiber
            // (detection + protection switching have not reconverged it
            // yet).
            self.note_drop(DropReason::LinkDown);
            self.meta.remove(&packet.id);
            return;
        }
        let a_to_b = self.topo.link(link).a == node;
        debug_assert!(
            a_to_b || self.topo.link(link).b == node,
            "routing table points at a non-incident link"
        );
        let dir = Self::dir_index(link, a_to_b);
        let packet_id = packet.id;
        if !self.dirs[dir].queue.push(packet) {
            self.note_drop(DropReason::QueueFull);
            self.meta.remove(&packet_id);
            return;
        }
        self.try_transmit(dir);
    }

    fn try_transmit(&mut self, dir: usize) {
        if self.dirs[dir].busy {
            return;
        }
        let link = LinkId((dir / 2) as u32);
        if !self.link_up[link.0 as usize] {
            return;
        }
        let Some(packet) = self.dirs[dir].queue.pop() else {
            return;
        };
        self.dirs[dir].busy = true;
        let a_to_b = dir.is_multiple_of(2);
        let l = self.topo.link(link);
        let target = if a_to_b { l.b } else { l.a };
        let ser_ps = (packet.wire_bytes() as f64 * 8.0 / l.capacity_bps * 1e12).round() as u64;
        let prop_ps = l.delay_ps();
        self.events.schedule_in(ser_ps, Ev::TxDone { dir });
        self.events.schedule_in(
            ser_ps + prop_ps,
            Ev::Arrive {
                node: target,
                packet,
                via: link,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pch::PchHeader;

    fn fig1_net() -> Network {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        net.install_shortest_path_routes();
        net
    }

    fn a_d(net: &Network) -> (NodeId, NodeId) {
        (
            net.topo.find_node("A").unwrap(),
            net.topo.find_node("D").unwrap(),
        )
    }

    #[test]
    fn plain_packet_crosses_fig1() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            vec![0u8; 100],
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        let rec = &net.stats.delivered[0];
        assert_eq!(rec.hops, 2); // A → B|C → D
                                 // 1500 km of fiber ≈ 7.3 ms.
        let ms = rec.latency_ms();
        assert!(ms > 7.0 && ms < 7.7, "latency {ms} ms");
        assert!(!rec.computed);
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut net = fig1_net();
        let (a, _) = a_d(&net);
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(a, 2),
            1,
            vec![],
        );
        net.inject(100, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert_eq!(net.stats.delivered[0].latency_ps(), 0);
        assert_eq!(net.stats.delivered[0].hops, 0);
    }

    #[test]
    fn compute_packet_detours_and_computes() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        let weights = vec![0.5, 0.5, 1.0, 0.25];
        net.add_engine(
            b,
            7,
            OpSpec::Dot {
                weights: weights.clone(),
            },
            0.0,
        );
        net.install_compute_detour(Primitive::VectorDotProduct, b);
        let operands = vec![1.0, 0.5, 0.25, 1.0];
        let pch = PchHeader::request(Primitive::VectorDotProduct, 7, 4);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            pch,
            Packet::encode_operands(&operands),
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        let rec = &net.stats.delivered[0];
        assert!(rec.computed);
        assert_eq!(net.engines_at(b)[0].executions, 1);
        assert_eq!(net.engines_at(b)[0].macs, 4);
        assert!(net.engines_at(b)[0].energy_j > 0.0);
    }

    #[test]
    fn compute_result_is_correct_en_route() {
        // Deliver to the compute node itself so we can inspect the PCH.
        let mut net = fig1_net();
        let (a, _) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        net.add_engine(
            b,
            1,
            OpSpec::Dot {
                weights: vec![1.0, 1.0],
            },
            0.0,
        );
        let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 2);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(b, 1),
            1,
            pch,
            Packet::encode_operands(&[0.5, 0.25]),
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(net.stats.delivered[0].computed);
        // Engine saw ~0.75 (quantized operands).
        let slot = &net.engines_at(b)[0];
        assert_eq!(slot.executions, 1);
    }

    #[test]
    fn plain_traffic_ignores_compute_detours() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let c = net.topo.find_node("C").unwrap();
        net.add_engine(c, 1, OpSpec::Nonlinear, 0.0);
        net.install_compute_detour(Primitive::NonlinearFunction, c);
        // Plain packet: must take the default shortest path, and no
        // engine executes.
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            vec![0; 10],
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert_eq!(net.engines_at(c)[0].executions, 0);
    }

    #[test]
    fn computed_packets_route_normally_after_engine() {
        // Engine at B; destination D. After computing at B the packet
        // follows plain routes B→D rather than looping.
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        net.add_engine(
            b,
            2,
            OpSpec::Match {
                pattern: vec![true, false],
            },
            0.0,
        );
        net.install_compute_detour(Primitive::PatternMatching, b);
        let pch = PchHeader::request(Primitive::PatternMatching, 2, 2);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            pch,
            Packet::encode_operands(&[1.0, 0.0]),
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(net.stats.delivered[0].computed);
        assert_eq!(net.stats.delivered[0].hops, 2);
    }

    #[test]
    fn mismatched_op_id_passes_through_uncomputed() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        net.add_engine(b, 1, OpSpec::Dot { weights: vec![1.0] }, 0.0);
        net.install_compute_detour(Primitive::VectorDotProduct, b);
        // Request op 99, engine has op 1.
        let pch = PchHeader::request(Primitive::VectorDotProduct, 99, 1);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            pch,
            Packet::encode_operands(&[1.0]),
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        assert!(!net.stats.delivered[0].computed);
        assert_eq!(net.engines_at(b)[0].executions, 0);
    }

    #[test]
    fn no_route_counts_drops() {
        let mut net = Network::new(Topology::fig1(), SimRng::seed_from_u64(0));
        // No routes installed at all.
        let (a, d) = a_d(&net);
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            vec![],
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 0);
        assert_eq!(net.stats.drops_no_route, 1);
    }

    #[test]
    fn queue_contention_serializes_packets() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        // Two packets injected at the same instant share the A→B link:
        // the second is delayed by the first's serialization time.
        for id in 0..2 {
            let p = Packet::data(
                Network::node_addr(a, 1),
                Network::node_addr(d, 1),
                id,
                vec![0u8; 10_000],
            );
            net.inject(0, a, p);
        }
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 2);
        let l0 = net.stats.delivered[0].latency_ps();
        let l1 = net.stats.delivered[1].latency_ps();
        let ser_ps = ((10_000 + 16) as f64 * 8.0 / 800e9 * 1e12).round() as u64;
        assert_eq!(l1 - l0, ser_ps, "second packet delayed by serialization");
    }

    #[test]
    fn tiny_queue_drops_bursts() {
        let mut net = Network::with_queue_capacity(
            Topology::fig1(),
            SimRng::seed_from_u64(0),
            2_000, // fits one 1016-byte packet only
        );
        net.install_shortest_path_routes();
        let (a, d) = a_d(&net);
        for id in 0..5 {
            let p = Packet::data(
                Network::node_addr(a, 1),
                Network::node_addr(d, 1),
                id,
                vec![0u8; 1_000],
            );
            net.inject(0, a, p);
        }
        net.run_to_idle();
        assert!(net.stats.drops_queue > 0);
        assert!(net.stats.delivered_count() < 5);
        assert_eq!(
            net.stats.delivered_count() as u64 + net.stats.drops_queue,
            5
        );
        // Conservation survives queue drops (no meta-map leak).
        assert_eq!(net.in_flight_count(), 0);
        assert!(net.stats.conservation_holds(0));
    }

    #[test]
    fn ttl_expiry_on_unroutable_loop() {
        // Two-node topology with deliberately looping routes.
        let mut t = Topology::new();
        let x = t.add_node("x");
        let y = t.add_node("y");
        t.add_link(x, y, 10.0);
        let mut net = Network::new(t, SimRng::seed_from_u64(0));
        // Both nodes point at the same link for a foreign prefix.
        let foreign: Prefix = "10.0.99.0/24".parse().unwrap();
        for n in [x, y] {
            net.routing_table_mut(n).install(
                foreign,
                RouteEntry {
                    next_hop: Some(LinkId(0)),
                    ..Default::default()
                },
            );
        }
        let p = Packet::data(
            Network::node_addr(x, 1),
            "10.0.99.1".parse().unwrap(),
            1,
            vec![],
        );
        net.inject(0, x, p);
        net.run_to_idle();
        assert_eq!(net.stats.drops_ttl, 1);
        assert_eq!(net.stats.delivered_count(), 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut net = fig1_net();
            let (a, d) = a_d(&net);
            let b = net.topo.find_node("B").unwrap();
            net.add_engine(
                b,
                1,
                OpSpec::Dot {
                    weights: vec![0.5; 8],
                },
                0.01,
            );
            net.install_compute_detour(Primitive::VectorDotProduct, b);
            for id in 0..20 {
                let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 8);
                let p = Packet::compute(
                    Network::node_addr(a, 1),
                    Network::node_addr(d, 1),
                    id,
                    pch,
                    Packet::encode_operands(&[0.5; 8]),
                );
                net.inject(id as u64 * 1000, a, p);
            }
            net.run_to_idle();
            net.stats
                .delivered
                .iter()
                .map(|r| (r.packet_id, r.delivered_ps))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fiber_cut_loses_light_and_conserves_packets() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        let ab = net
            .topo
            .neighbors(a)
            .into_iter()
            .find(|&(_, n)| n == b)
            .map(|(l, _)| l)
            .unwrap();
        // Steady stream A→D; shortest path may use A–B. Cut A–B mid-run.
        for id in 0..40 {
            let p = Packet::data(
                Network::node_addr(a, 1),
                Network::node_addr(d, 1),
                id,
                vec![0u8; 1_000],
            );
            net.inject(id as u64 * 100_000, a, p);
        }
        net.schedule_link_down(1_500_000, ab);
        net.run_to_idle();
        assert!(!net.link_is_up(ab));
        assert_eq!(net.down_links(), vec![ab]);
        // If the default path used A–B, packets after the cut are lost to
        // loss-of-light; either way nothing leaks.
        assert_eq!(net.in_flight_count(), 0);
        assert!(
            net.stats.conservation_holds(0),
            "injected {} delivered {} drops {}",
            net.stats.injected,
            net.stats.delivered_count(),
            net.stats.total_drops()
        );
        if net.stats.drops_link_down > 0 {
            assert!(net.stats.delivered_count() < 40);
        }
    }

    #[test]
    fn reconvergence_restores_delivery_after_cut() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        // Cut every link incident to B, reconverge, and traffic A→D
        // must flow via C.
        let b_links: Vec<LinkId> = net.topo.neighbors(b).into_iter().map(|(l, _)| l).collect();
        for l in &b_links {
            net.set_link_up(*l, false);
        }
        net.reconverge_routes();
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            vec![0u8; 100],
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1, "{:?}", net.stats);
        assert_eq!(net.stats.delivered[0].hops, 2); // A → C → D
        assert!(net.stats.conservation_holds(0));
    }

    #[test]
    fn unhealthy_engine_skips_and_tags_packets() {
        use crate::pch::ResultStatus;
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let b = net.topo.find_node("B").unwrap();
        net.add_engine(b, 1, OpSpec::Dot { weights: vec![1.0] }, 0.0);
        net.install_compute_detour(Primitive::VectorDotProduct, b);
        net.set_engine_health(b, false);
        let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 1);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            1,
            pch,
            Packet::encode_operands(&[1.0]),
        );
        net.inject(0, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 1);
        let rec = &net.stats.delivered[0];
        assert!(!rec.computed, "unhealthy engine must not execute");
        assert_eq!(rec.status, ResultStatus::EngineUnhealthy);
        assert_eq!(net.engines_at(b)[0].executions, 0);
        // Repair and retry: healthy engine computes and clears nothing —
        // a fresh request carries Ok status.
        net.schedule_engine_health(net.now_ps() + 1, b, true);
        let pch = PchHeader::request(Primitive::VectorDotProduct, 1, 1);
        let p = Packet::compute(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            2,
            pch,
            Packet::encode_operands(&[1.0]),
        );
        let at = net.now_ps() + 2;
        net.inject(at, a, p);
        net.run_to_idle();
        assert_eq!(net.stats.delivered_count(), 2);
        let rec = &net.stats.delivered[1];
        assert!(rec.computed);
        assert_eq!(rec.status, ResultStatus::Ok);
    }

    #[test]
    fn scheduled_noise_drift_raises_engine_sigma() {
        let mut net = fig1_net();
        let b = net.topo.find_node("B").unwrap();
        net.add_engine(b, 1, OpSpec::Nonlinear, 0.0);
        // Three drift steps, as a ramp sampler would schedule them.
        net.schedule_engine_noise(10, b, 0.01);
        net.schedule_engine_noise(20, b, 0.05);
        net.schedule_engine_noise(30, b, 0.2);
        net.run_to_idle();
        assert!((net.engines_at(b)[0].noise_sigma - 0.2).abs() < 1e-12);
        // Negative sigma is clamped.
        net.set_engine_noise(b, -1.0);
        assert_eq!(net.engines_at(b)[0].noise_sigma, 0.0);
    }

    #[test]
    fn link_flap_drains_queue_and_recovers() {
        let mut net = fig1_net();
        let (a, d) = a_d(&net);
        let first_hop = {
            let pending = None;
            net.routing_table(a)
                .lookup(Network::node_addr(d, 1), pending)
                .unwrap()
        };
        // Burst so the egress queue holds packets, then cut: queued
        // packets are lost as LinkDown, and after repair traffic flows.
        for id in 0..10 {
            let p = Packet::data(
                Network::node_addr(a, 1),
                Network::node_addr(d, 1),
                id,
                vec![0u8; 10_000],
            );
            net.inject(0, a, p);
        }
        net.schedule_link_down(100, first_hop);
        net.schedule_link_up(60_000_000, first_hop);
        let p = Packet::data(
            Network::node_addr(a, 1),
            Network::node_addr(d, 1),
            99,
            vec![0u8; 100],
        );
        net.inject(70_000_000, a, p);
        net.run_to_idle();
        assert!(net.stats.drops_link_down > 0, "{:?}", net.stats);
        // The post-repair packet made it.
        assert!(net.stats.delivered.iter().any(|r| r.packet_id == 99));
        assert!(net.stats.conservation_holds(net.in_flight_count()));
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn addr_node_mapping() {
        let net = fig1_net();
        assert_eq!(
            net.addr_node(Network::node_addr(NodeId(2), 5)),
            Some(NodeId(2))
        );
        assert_eq!(net.addr_node("11.0.0.1".parse().unwrap()), None);
        assert_eq!(net.addr_node("10.0.99.1".parse().unwrap()), None);
    }
}
