//! Measurement collectors.
//!
//! Per-packet delivery records, latency percentiles, throughput, and a
//! tiny histogram type the experiment harnesses print. All pure data —
//! the simulator feeds records in, experiments read summaries out.

use crate::pch::ResultStatus;
use serde::{Deserialize, Serialize};

/// One delivered packet's record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    pub packet_id: u32,
    pub created_ps: u64,
    pub delivered_ps: u64,
    pub hops: u32,
    /// Whether a photonic engine executed this packet's operation.
    pub computed: bool,
    /// Result status from the PCH flags (`Ok` for plain traffic) — lets
    /// the receiver tell a skipped-by-unhealthy-engine pass-through from
    /// a valid result.
    pub status: ResultStatus,
    pub wire_bytes: usize,
}

impl DeliveryRecord {
    pub fn latency_ps(&self) -> u64 {
        self.delivered_ps.saturating_sub(self.created_ps)
    }

    pub fn latency_ms(&self) -> f64 {
        self.latency_ps() as f64 / 1e9
    }
}

/// Why the simulator dropped a packet. Every drop is attributed to
/// exactly one reason so packet conservation
/// (`injected = delivered + dropped + in-flight`) is checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Egress queue was full (drop-tail).
    QueueFull,
    /// TTL reached zero (routing loop or path too long).
    TtlExpired,
    /// No forwarding entry (or a null next hop) for the destination.
    NoRoute,
    /// The packet hit a downed link — loss of light on a cut fiber.
    LinkDown,
}

impl DropReason {
    pub const ALL: [DropReason; 4] = [
        DropReason::QueueFull,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::LinkDown,
    ];
}

/// Collected simulation statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsCollector {
    pub delivered: Vec<DeliveryRecord>,
    /// Packets handed to the simulator via `inject` (the conservation
    /// baseline).
    pub injected: u64,
    pub drops_queue: u64,
    pub drops_ttl: u64,
    pub drops_no_route: u64,
    /// Packets lost to a cut fiber (queued on, in flight over, or routed
    /// at a downed link).
    pub drops_link_down: u64,
}

impl StatsCollector {
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Attribute one drop to `reason`.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::QueueFull => self.drops_queue += 1,
            DropReason::TtlExpired => self.drops_ttl += 1,
            DropReason::NoRoute => self.drops_no_route += 1,
            DropReason::LinkDown => self.drops_link_down += 1,
        }
    }

    /// Drop count for one reason.
    pub fn drop_count(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::QueueFull => self.drops_queue,
            DropReason::TtlExpired => self.drops_ttl,
            DropReason::NoRoute => self.drops_no_route,
            DropReason::LinkDown => self.drops_link_down,
        }
    }

    /// Packet conservation: every injected packet is delivered, dropped
    /// (with a reason), or still in flight. `in_flight` comes from the
    /// simulator's live bookkeeping.
    pub fn conservation_holds(&self, in_flight: usize) -> bool {
        self.injected == self.delivered.len() as u64 + self.total_drops() + in_flight as u64
    }

    pub fn record_delivery(&mut self, record: DeliveryRecord) {
        self.delivered.push(record);
    }

    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    pub fn computed_count(&self) -> usize {
        self.delivered.iter().filter(|r| r.computed).count()
    }

    /// Latency percentile in milliseconds over delivered packets.
    /// `q` in `[0, 1]`. Returns `None` when nothing was delivered.
    pub fn latency_percentile_ms(&self, q: f64) -> Option<f64> {
        percentile(self.delivered.iter().map(|r| r.latency_ms()).collect(), q)
    }

    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.delivered.is_empty() {
            return None;
        }
        Some(
            self.delivered.iter().map(|r| r.latency_ms()).sum::<f64>()
                / self.delivered.len() as f64,
        )
    }

    /// Delivered goodput over the interval spanned by deliveries, bits/s.
    pub fn goodput_bps(&self) -> f64 {
        if self.delivered.len() < 2 {
            return 0.0;
        }
        let first = self.delivered.iter().map(|r| r.created_ps).min().unwrap();
        let last = self.delivered.iter().map(|r| r.delivered_ps).max().unwrap();
        let seconds = (last - first) as f64 / 1e12;
        if seconds <= 0.0 {
            return 0.0;
        }
        let bits: usize = self.delivered.iter().map(|r| r.wire_bytes * 8).sum();
        bits as f64 / seconds
    }

    pub fn total_drops(&self) -> u64 {
        self.drops_queue + self.drops_ttl + self.drops_no_route + self.drops_link_down
    }
}

/// Percentile of a sample set (linear interpolation between ranks).
pub fn percentile(mut values: Vec<f64>, q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1]");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(values[lo])
    } else {
        let t = pos - lo as f64;
        Some(values[lo] * (1.0 - t) + values[hi] * t)
    }
}

/// Jain's fairness index over per-flow allocations: `(Σx)² / (n·Σx²)`.
/// 1.0 = perfectly fair. Used by the bandwidth-sharing experiment E8.
pub fn jain_fairness(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, created: u64, delivered: u64) -> DeliveryRecord {
        DeliveryRecord {
            packet_id: id,
            created_ps: created,
            delivered_ps: delivered,
            hops: 2,
            computed: id.is_multiple_of(2),
            status: ResultStatus::Ok,
            wire_bytes: 100,
        }
    }

    #[test]
    fn latency_math() {
        let r = rec(1, 1_000_000, 3_000_000);
        assert_eq!(r.latency_ps(), 2_000_000);
        assert!((r.latency_ms() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(values.clone(), 0.0), Some(1.0));
        assert_eq!(percentile(values.clone(), 1.0), Some(5.0));
        assert_eq!(percentile(values.clone(), 0.5), Some(3.0));
        assert_eq!(percentile(values, 0.25), Some(2.0));
        assert_eq!(percentile(vec![], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_percentile_panics() {
        percentile(vec![1.0], 1.5);
    }

    #[test]
    fn collector_summaries() {
        let mut c = StatsCollector::new();
        for i in 0..10u32 {
            c.record_delivery(rec(i, 0, (i as u64 + 1) * 1_000_000_000));
        }
        assert_eq!(c.delivered_count(), 10);
        assert_eq!(c.computed_count(), 5);
        assert!(c.mean_latency_ms().unwrap() > 0.0);
        assert!(c.latency_percentile_ms(0.99).unwrap() >= c.latency_percentile_ms(0.5).unwrap());
        assert!(c.goodput_bps() > 0.0);
        assert_eq!(c.total_drops(), 0);
    }

    #[test]
    fn empty_collector_is_well_behaved() {
        let c = StatsCollector::new();
        assert_eq!(c.mean_latency_ms(), None);
        assert_eq!(c.latency_percentile_ms(0.5), None);
        assert_eq!(c.goodput_bps(), 0.0);
    }

    #[test]
    fn drop_reasons_are_attributed_and_conserved() {
        let mut c = StatsCollector::new();
        c.injected = 7;
        c.record_delivery(rec(0, 0, 10));
        c.record_delivery(rec(1, 0, 20));
        c.record_drop(DropReason::QueueFull);
        c.record_drop(DropReason::TtlExpired);
        c.record_drop(DropReason::NoRoute);
        c.record_drop(DropReason::LinkDown);
        for r in DropReason::ALL {
            assert_eq!(c.drop_count(r), 1, "{r:?}");
        }
        assert_eq!(c.total_drops(), 4);
        // 7 injected = 2 delivered + 4 dropped + 1 in flight.
        assert!(c.conservation_holds(1));
        assert!(!c.conservation_holds(0));
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One user hogging everything among n: index = 1/n.
        let idx = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
