//! IPv4-style addressing and CIDR prefixes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit network address (IPv4-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    pub const UNSPECIFIED: Addr = Addr(0);

    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Deterministic site addressing used by topology builders:
    /// `10.<site>.0.<host>`.
    pub fn site_host(site: u16, host: u8) -> Self {
        Addr::new(10, (site >> 8) as u8, site as u8, host)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Addr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(format!("bad address {s:?}"));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| format!("bad octet {p:?}"))?;
        }
        Ok(Addr(u32::from_be_bytes(octets)))
    }
}

/// A CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Build a prefix; host bits beyond `len` are masked off.
    pub fn new(addr: Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        Prefix {
            addr: addr.0 & Self::mask(len),
            len,
        }
    }

    /// The default route `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Prefix::new(Addr::UNSPECIFIED, 0)
    }

    /// A host route `/32`.
    pub fn host(addr: Addr) -> Self {
        Prefix::new(addr, 32)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length (default) prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn network(&self) -> Addr {
        Addr(self.addr)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.addr
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Addr(self.addr), self.len)
    }
}

impl FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| format!("bad prefix {s:?}"))?;
        let addr: Addr = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| format!("bad length {len:?}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} exceeds 32"));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let a = Addr::new(10, 1, 2, 3);
        assert_eq!(a.to_string(), "10.1.2.3");
        assert_eq!("10.1.2.3".parse::<Addr>().unwrap(), a);
        assert!("10.1.2".parse::<Addr>().is_err());
        assert!("10.1.2.256".parse::<Addr>().is_err());
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(Addr::new(10, 1, 200, 7)));
        assert!(!p.contains(Addr::new(10, 2, 0, 1)));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn default_route_contains_everything() {
        let p = Prefix::default_route();
        assert!(p.contains(Addr::new(0, 0, 0, 0)));
        assert!(p.contains(Addr::new(255, 255, 255, 255)));
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn host_route_contains_only_itself() {
        let a = Addr::new(10, 0, 0, 1);
        let p = Prefix::host(a);
        assert!(p.contains(a));
        assert!(!p.contains(Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn host_bits_are_masked() {
        let p = Prefix::new(Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Addr::new(10, 1, 0, 0));
    }

    #[test]
    fn site_host_layout() {
        let a = Addr::site_host(3, 7);
        assert_eq!(a.to_string(), "10.0.3.7");
        let b = Addr::site_host(300, 1);
        assert_eq!(b.octets(), [10, 1, 44, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn oversized_prefix_panics() {
        Prefix::new(Addr::UNSPECIFIED, 33);
    }

    #[test]
    fn parse_prefix_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0/8".parse::<Prefix>().is_err());
    }
}
