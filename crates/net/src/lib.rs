//! # ofpc-net — the wide-area network substrate
//!
//! Everything the paper's Fig. 1 scenario needs below the photonic
//! engine: IP-like packets ([`packet`]) carrying the proposed **photonic
//! compute header** ([`pch`]), WAN topologies with fiber-length-accurate
//! propagation delays ([`topology`]), the dual-field routing the paper's
//! §3 protocol requires — longest-prefix match on the destination *plus*
//! an exact match on the compute primitive ID ([`routing`]) — and a
//! deterministic, sans-IO discrete-event simulator ([`sim`]) with router
//! queues ([`queue`]), traffic generators ([`flow`]), and measurement
//! collectors ([`stats`]).
//!
//! Timestamps are integer **picoseconds** everywhere; ties break on a
//! monotone sequence number, so simulations are exactly reproducible.

pub mod addr;
pub mod events;
pub mod flow;
pub mod frame;
pub mod packet;
pub mod pch;
pub mod queue;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod topology;

pub use addr::{Addr, Prefix};
pub use frame::{FrameError, PchFrame};
pub use packet::Packet;
pub use pch::PchHeader;
pub use sim::Network;
pub use topology::{LinkId, NodeId, Topology};
