//! Traffic generation.
//!
//! Deterministic workload builders for the experiments: constant-bit-rate
//! and Poisson flows, plain or compute-tagged, plus a Zipf sampler for
//! skewed popularity (which destination/operation a request hits).

use crate::addr::Addr;
use crate::packet::Packet;
use crate::pch::PchHeader;
use ofpc_engine::Primitive;
use ofpc_photonics::SimRng;

/// What kind of packets a flow emits.
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// Plain data packets with `payload_bytes` of zeros.
    Data { payload_bytes: usize },
    /// Compute requests carrying an operand vector.
    Compute {
        primitive: Primitive,
        op_id: u16,
        operands: Vec<f64>,
    },
}

/// A flow specification.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    pub src: Addr,
    pub dst: Addr,
    pub kind: FlowKind,
    /// First packet time, ps.
    pub start_ps: u64,
    /// Number of packets.
    pub count: usize,
    /// Packet arrival process.
    pub arrival: Arrival,
}

/// Packet arrival process.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Fixed inter-packet gap, ps.
    Cbr { gap_ps: u64 },
    /// Poisson arrivals with the given mean rate, packets/s.
    Poisson { rate_pps: f64 },
}

impl FlowSpec {
    /// Materialize the flow: a time-sorted list of `(time_ps, packet)`.
    /// Packet IDs are `id_base..id_base+count`.
    pub fn generate(&self, id_base: u32, rng: &mut SimRng) -> Vec<(u64, Packet)> {
        let mut out = Vec::with_capacity(self.count);
        let mut t = self.start_ps;
        for i in 0..self.count {
            let id = id_base + i as u32;
            let packet = match &self.kind {
                FlowKind::Data { payload_bytes } => {
                    Packet::data(self.src, self.dst, id, vec![0u8; *payload_bytes])
                }
                FlowKind::Compute {
                    primitive,
                    op_id,
                    operands,
                } => {
                    let pch = PchHeader::request(*primitive, *op_id, operands.len() as u16);
                    Packet::compute(
                        self.src,
                        self.dst,
                        id,
                        pch,
                        Packet::encode_operands(operands),
                    )
                }
            };
            out.push((t, packet));
            t += match self.arrival {
                Arrival::Cbr { gap_ps } => gap_ps,
                Arrival::Poisson { rate_pps } => {
                    (rng.exponential(rate_pps) * 1e12).round().max(1.0) as u64
                }
            };
        }
        out
    }

    /// Aggregate offered load of a CBR flow, bits/s (None for Poisson).
    pub fn offered_load_bps(&self) -> Option<f64> {
        match self.arrival {
            Arrival::Cbr { gap_ps } => {
                let bytes = match &self.kind {
                    FlowKind::Data { payload_bytes } => {
                        crate::packet::IP_HEADER_BYTES + payload_bytes
                    }
                    FlowKind::Compute { operands, .. } => {
                        crate::packet::IP_HEADER_BYTES + crate::pch::PCH_WIRE_BYTES + operands.len()
                    }
                };
                Some(bytes as f64 * 8.0 / (gap_ps as f64 / 1e12))
            }
            Arrival::Poisson { .. } => None,
        }
    }
}

/// A Zipf(α) sampler over `n` items — skewed popularity for destinations
/// and operations.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one item");
        assert!(alpha >= 0.0, "Zipf alpha must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: FlowKind, arrival: Arrival) -> FlowSpec {
        FlowSpec {
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::new(10, 0, 1, 1),
            kind,
            start_ps: 1_000,
            count: 10,
            arrival,
        }
    }

    #[test]
    fn cbr_spacing_is_exact() {
        let mut rng = SimRng::seed_from_u64(0);
        let f = spec(
            FlowKind::Data { payload_bytes: 100 },
            Arrival::Cbr { gap_ps: 500 },
        );
        let pkts = f.generate(100, &mut rng);
        assert_eq!(pkts.len(), 10);
        assert_eq!(pkts[0].0, 1_000);
        assert_eq!(pkts[9].0, 1_000 + 9 * 500);
        assert_eq!(pkts[0].1.id, 100);
        assert_eq!(pkts[9].1.id, 109);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let f = FlowSpec {
            count: 5_000,
            ..spec(
                FlowKind::Data { payload_bytes: 10 },
                Arrival::Poisson { rate_pps: 1e6 },
            )
        };
        let pkts = f.generate(0, &mut rng);
        let gaps: Vec<f64> = pkts.windows(2).map(|w| (w[1].0 - w[0].0) as f64).collect();
        let mean_ps = gaps.iter().sum::<f64>() / gaps.len() as f64;
        // 1e6 pps → mean gap 1e6 ps.
        assert!((mean_ps - 1e6).abs() / 1e6 < 0.05, "mean gap {mean_ps}");
    }

    #[test]
    fn compute_flow_carries_pch_and_operands() {
        let mut rng = SimRng::seed_from_u64(2);
        let f = spec(
            FlowKind::Compute {
                primitive: Primitive::VectorDotProduct,
                op_id: 5,
                operands: vec![0.25, 0.75],
            },
            Arrival::Cbr { gap_ps: 100 },
        );
        let pkts = f.generate(0, &mut rng);
        let p = &pkts[0].1;
        assert!(p.is_compute());
        let pch = p.pch.unwrap();
        assert_eq!(pch.op_id, 5);
        assert_eq!(pch.operand_len, 2);
        let ops = p.operands();
        assert!((ops[0] - 0.25).abs() < 0.01 && (ops[1] - 0.75).abs() < 0.01);
    }

    #[test]
    fn offered_load_accounts_headers() {
        let f = spec(
            FlowKind::Data { payload_bytes: 84 },
            Arrival::Cbr { gap_ps: 1_000_000 }, // 1 µs gap
        );
        // 100 bytes per µs = 800 Mb/s.
        let load = f.offered_load_bps().unwrap();
        assert!((load - 800e6).abs() / 800e6 < 1e-9, "load {load}");
        let poisson = spec(
            FlowKind::Data { payload_bytes: 84 },
            Arrival::Poisson { rate_pps: 1.0 },
        );
        assert!(poisson.offered_load_bps().is_none());
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(10, 1.2);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > 2_000, "{counts:?}");
        // All indices in range (implicitly true by no panic) and the top
        // item dominates but not exclusively.
        assert!(counts[1] > 0);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 2_000.0).abs() < 200.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
