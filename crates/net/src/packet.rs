//! Packets: an IPv4-like header, the optional photonic compute header,
//! and a payload, with a real wire serialization (`bytes`-backed) so the
//! protocol-overhead experiment (E7) can count actual bytes.
//!
//! Wire layout:
//!
//! ```text
//! [ ip header 16B ][ pch 8B, iff proto == PROTO_COMPUTE ][ payload ]
//!
//! ip header: src(4) dst(4) id(4) len(2) ttl(1) proto(1)
//! ```

use crate::addr::Addr;
use crate::pch::{PchError, PchHeader, PCH_WIRE_BYTES};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Fixed IP-like header size, bytes.
pub const IP_HEADER_BYTES: usize = 16;

/// Protocol number for plain data.
pub const PROTO_DATA: u8 = 0x11;
/// Protocol number indicating a photonic compute header follows.
pub const PROTO_COMPUTE: u8 = 0xCC;

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 64;

/// A network packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    pub src: Addr,
    pub dst: Addr,
    /// Unique packet ID (assigned by the traffic source).
    pub id: u32,
    pub ttl: u8,
    /// The compute header, present iff this is a compute packet.
    pub pch: Option<PchHeader>,
    /// Payload bytes (operand segment first for compute packets).
    /// Serializes as a byte array (the vendored `bytes` implements the
    /// serde traits directly).
    pub payload: Bytes,
}

impl Packet {
    /// A plain data packet.
    pub fn data(src: Addr, dst: Addr, id: u32, payload: impl Into<Bytes>) -> Self {
        Packet {
            src,
            dst,
            id,
            ttl: DEFAULT_TTL,
            pch: None,
            payload: payload.into(),
        }
    }

    /// A compute packet with the given PCH.
    pub fn compute(
        src: Addr,
        dst: Addr,
        id: u32,
        pch: PchHeader,
        payload: impl Into<Bytes>,
    ) -> Self {
        Packet {
            src,
            dst,
            id,
            ttl: DEFAULT_TTL,
            pch: Some(pch),
            payload: payload.into(),
        }
    }

    pub fn is_compute(&self) -> bool {
        self.pch.is_some()
    }

    /// Total size on the wire, bytes.
    pub fn wire_bytes(&self) -> usize {
        IP_HEADER_BYTES
            + if self.pch.is_some() {
                PCH_WIRE_BYTES
            } else {
                0
            }
            + self.payload.len()
    }

    /// Header overhead added by the compute-communication protocol for
    /// this packet, bytes (0 for plain packets).
    pub fn pch_overhead_bytes(&self) -> usize {
        if self.pch.is_some() {
            PCH_WIRE_BYTES
        } else {
            0
        }
    }

    /// Serialize to the wire.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        buf.put_u32(self.id);
        buf.put_u16(self.payload.len() as u16);
        buf.put_u8(self.ttl);
        buf.put_u8(if self.pch.is_some() {
            PROTO_COMPUTE
        } else {
            PROTO_DATA
        });
        if let Some(pch) = &self.pch {
            pch.write_to(&mut buf);
        }
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse from the wire.
    pub fn from_wire(mut buf: Bytes) -> Result<Self, PacketError> {
        if buf.remaining() < IP_HEADER_BYTES {
            return Err(PacketError::Truncated);
        }
        let src = Addr(buf.get_u32());
        let dst = Addr(buf.get_u32());
        let id = buf.get_u32();
        let len = buf.get_u16() as usize;
        let ttl = buf.get_u8();
        let proto = buf.get_u8();
        let pch = match proto {
            PROTO_DATA => None,
            PROTO_COMPUTE => Some(PchHeader::read_from(&mut buf).map_err(PacketError::Pch)?),
            other => return Err(PacketError::BadProto(other)),
        };
        if buf.remaining() < len {
            return Err(PacketError::Truncated);
        }
        let payload = buf.copy_to_bytes(len);
        Ok(Packet {
            src,
            dst,
            id,
            ttl,
            pch,
            payload,
        })
    }

    /// Decrement TTL; returns `false` when the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        self.ttl > 0
    }

    /// Operand vector carried by a compute packet: `operand_len` bytes at
    /// the front of the payload, each an element in `[0, 1]` (fixed-point
    /// u8). Empty for plain packets.
    pub fn operands(&self) -> Vec<f64> {
        match &self.pch {
            Some(pch) => self
                .payload
                .iter()
                .take(pch.operand_len as usize)
                .map(|&b| b as f64 / 255.0)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Encode an operand vector (values clamped to `[0,1]`) as payload
    /// bytes.
    pub fn encode_operands(values: &[f64]) -> Bytes {
        values
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect::<Vec<u8>>()
            .into()
    }
}

/// Packet parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    Truncated,
    BadProto(u8),
    Pch(PchError),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "truncated packet"),
            PacketError::BadProto(p) => write!(f, "unknown protocol {p:#04x}"),
            PacketError::Pch(e) => write!(f, "bad compute header: {e}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ofpc_engine::Primitive;

    fn addrs() -> (Addr, Addr) {
        (Addr::new(10, 0, 0, 1), Addr::new(10, 0, 3, 1))
    }

    #[test]
    fn data_packet_wire_round_trip() {
        let (src, dst) = addrs();
        let p = Packet::data(src, dst, 7, &b"hello"[..]);
        let wire = p.to_wire();
        assert_eq!(wire.len(), IP_HEADER_BYTES + 5);
        let parsed = Packet::from_wire(wire).unwrap();
        assert_eq!(parsed, p);
        assert!(!parsed.is_compute());
        assert_eq!(parsed.pch_overhead_bytes(), 0);
    }

    #[test]
    fn compute_packet_wire_round_trip() {
        let (src, dst) = addrs();
        let pch = PchHeader::request(Primitive::VectorDotProduct, 3, 4);
        let payload = Packet::encode_operands(&[0.0, 0.5, 1.0, 0.25]);
        let p = Packet::compute(src, dst, 9, pch, payload);
        let wire = p.to_wire();
        assert_eq!(wire.len(), IP_HEADER_BYTES + PCH_WIRE_BYTES + 4);
        let parsed = Packet::from_wire(wire).unwrap();
        assert_eq!(parsed, p);
        assert!(parsed.is_compute());
        assert_eq!(parsed.pch_overhead_bytes(), PCH_WIRE_BYTES);
    }

    #[test]
    fn operands_decode_within_half_lsb() {
        let (src, dst) = addrs();
        let values = [0.1, 0.9, 0.42];
        let pch = PchHeader::request(Primitive::VectorDotProduct, 0, 3);
        let p = Packet::compute(src, dst, 0, pch, Packet::encode_operands(&values));
        let got = p.operands();
        assert_eq!(got.len(), 3);
        for (g, v) in got.iter().zip(&values) {
            assert!((g - v).abs() <= 0.5 / 255.0 + 1e-12);
        }
    }

    #[test]
    fn plain_packet_has_no_operands() {
        let (src, dst) = addrs();
        let p = Packet::data(src, dst, 0, &b"abc"[..]);
        assert!(p.operands().is_empty());
    }

    #[test]
    fn ttl_decrements_and_expires() {
        let (src, dst) = addrs();
        let mut p = Packet::data(src, dst, 0, &b""[..]);
        p.ttl = 2;
        assert!(p.decrement_ttl());
        assert!(!p.decrement_ttl());
        assert_eq!(p.ttl, 0);
        assert!(!p.decrement_ttl()); // stays expired, no underflow
    }

    #[test]
    fn truncated_and_garbage_wires_are_rejected() {
        assert_eq!(
            Packet::from_wire(Bytes::from_static(&[0u8; 4])),
            Err(PacketError::Truncated)
        );
        // Bad proto byte.
        let (src, dst) = addrs();
        let p = Packet::data(src, dst, 0, &b""[..]);
        let mut wire = p.to_wire().to_vec();
        wire[15] = 0x77;
        assert_eq!(
            Packet::from_wire(Bytes::from(wire)),
            Err(PacketError::BadProto(0x77))
        );
        // Length field longer than remaining bytes.
        let p2 = Packet::data(src, dst, 0, &b"abcd"[..]);
        let mut wire2 = p2.to_wire().to_vec();
        wire2.truncate(wire2.len() - 2);
        assert_eq!(
            Packet::from_wire(Bytes::from(wire2)),
            Err(PacketError::Truncated)
        );
    }

    #[test]
    fn operand_encoding_clamps() {
        let enc = Packet::encode_operands(&[-0.5, 2.0]);
        assert_eq!(&enc[..], &[0, 255]);
    }
}
