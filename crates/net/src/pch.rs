//! The photonic compute header (PCH).
//!
//! The paper's §3 compute-communication protocol: "our additional
//! photonic computing packet header is layered on top of the IP header to
//! identify the photonic computing primitive ID", and routers look up the
//! next hop on *(destination IP, primitive ID)*. This module defines that
//! header's wire format and semantics.
//!
//! Wire layout (8 bytes, big-endian):
//!
//! ```text
//! +--------+--------+----------------+----------------+
//! | prim   | flags  |     op_id      |  result (Q8.8) | ...
//! +--------+--------+----------------+----------------+
//! |  bytes: 1 prim, 1 flags, 2 op_id, 2 result, 2 operand_len
//! ```
//!
//! * `prim` — primitive ID ([`ofpc_engine::Primitive::wire_id`]).
//! * `flags` — bit 0: COMPUTED (a transponder has executed the op);
//!   bit 1: RESULT_IN_PAYLOAD (result too wide for the header field).
//! * `op_id` — which installed operation instance to run (controller
//!   namespace; one primitive can host many ops across the WAN).
//! * `result` — Q8.8 fixed-point result summary.
//! * `operand_len` — number of operand elements in the payload segment.

use bytes::{Buf, BufMut};
use ofpc_engine::Primitive;
use serde::{Deserialize, Serialize};

/// Size of the PCH on the wire, bytes.
pub const PCH_WIRE_BYTES: usize = 8;

/// Flag bit 0: the operation has been executed by some transponder.
pub const FLAG_COMPUTED: u8 = 0b0000_0001;
/// Flag bit 1: the full result rides in the payload.
pub const FLAG_RESULT_IN_PAYLOAD: u8 = 0b0000_0010;
/// Flag bits 2–3: result status ([`ResultStatus`]), so a receiver can
/// tell a valid analog result from one skipped or corrupted by a fault.
pub const STATUS_MASK: u8 = 0b0000_1100;
/// Bit offset of the status field inside `flags`.
pub const STATUS_SHIFT: u8 = 2;

/// Result health carried in the PCH flags byte (bits 2–3). `Ok` is the
/// wire default so pre-fault-aware senders stay compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum ResultStatus {
    /// Result (if computed) came from a healthy engine.
    Ok = 0,
    /// A matching engine was found but its watchdog marked it unhealthy;
    /// the op was skipped rather than emitting a garbage analog value.
    EngineUnhealthy = 1,
    /// The request waited past its deadline before any engine ran it.
    TimedOut = 2,
}

impl ResultStatus {
    /// Decode from the flags byte.
    pub fn from_flags(flags: u8) -> Self {
        match (flags & STATUS_MASK) >> STATUS_SHIFT {
            1 => ResultStatus::EngineUnhealthy,
            2 => ResultStatus::TimedOut,
            _ => ResultStatus::Ok,
        }
    }
}

/// The photonic compute header.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PchHeader {
    pub primitive: Primitive,
    pub flags: u8,
    /// Operation instance ID (controller-assigned).
    pub op_id: u16,
    /// Q8.8 fixed-point result summary.
    pub result_q88: i16,
    /// Operand element count in the payload.
    pub operand_len: u16,
}

impl PchHeader {
    /// A fresh compute request for `primitive`/`op_id` with `operand_len`
    /// payload elements.
    pub fn request(primitive: Primitive, op_id: u16, operand_len: u16) -> Self {
        PchHeader {
            primitive,
            flags: 0,
            op_id,
            result_q88: 0,
            operand_len,
        }
    }

    pub fn is_computed(&self) -> bool {
        self.flags & FLAG_COMPUTED != 0
    }

    /// Mark the operation executed and record the result summary.
    pub fn mark_computed(&mut self, result: f64) {
        self.flags |= FLAG_COMPUTED;
        self.result_q88 = (result * 256.0)
            .round()
            .clamp(i16::MIN as f64, i16::MAX as f64) as i16;
    }

    /// Accumulate a partial result into the summary field *without*
    /// setting the COMPUTED flag — the distributed on-fiber computing
    /// extension (§5): each transponder along the path adds its share;
    /// the final one calls [`PchHeader::mark_computed`]-equivalent via
    /// [`PchHeader::finish_partial`].
    pub fn add_partial(&mut self, partial: f64) {
        let acc = self.result() + partial;
        self.result_q88 = (acc * 256.0)
            .round()
            .clamp(i16::MIN as f64, i16::MAX as f64) as i16;
    }

    /// Add the last partial and set the COMPUTED flag.
    pub fn finish_partial(&mut self, partial: f64) {
        self.add_partial(partial);
        self.flags |= FLAG_COMPUTED;
    }

    /// Retarget the header at the next operation instance (distributed
    /// chains: each part hands the packet to the next part's op id).
    pub fn retarget(&mut self, next_op: u16) {
        self.op_id = next_op;
    }

    /// Decode the Q8.8 result summary.
    pub fn result(&self) -> f64 {
        self.result_q88 as f64 / 256.0
    }

    /// Result status carried in flag bits 2–3.
    pub fn status(&self) -> ResultStatus {
        ResultStatus::from_flags(self.flags)
    }

    /// Stamp the result status into flag bits 2–3.
    pub fn set_status(&mut self, status: ResultStatus) {
        self.flags = (self.flags & !STATUS_MASK) | ((status as u8) << STATUS_SHIFT);
    }

    /// Serialize to the wire.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.primitive.wire_id());
        buf.put_u8(self.flags);
        buf.put_u16(self.op_id);
        buf.put_i16(self.result_q88);
        buf.put_u16(self.operand_len);
    }

    /// Parse from the wire.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self, PchError> {
        if buf.remaining() < PCH_WIRE_BYTES {
            return Err(PchError::Truncated);
        }
        let prim_id = buf.get_u8();
        let primitive = Primitive::from_wire_id(prim_id).ok_or(PchError::BadPrimitive(prim_id))?;
        Ok(PchHeader {
            primitive,
            flags: buf.get_u8(),
            op_id: buf.get_u16(),
            result_q88: buf.get_i16(),
            operand_len: buf.get_u16(),
        })
    }
}

/// PCH parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PchError {
    Truncated,
    BadPrimitive(u8),
}

impl std::fmt::Display for PchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PchError::Truncated => write!(f, "truncated photonic compute header"),
            PchError::BadPrimitive(id) => write!(f, "unknown primitive id {id}"),
        }
    }
}

impl std::error::Error for PchError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn wire_round_trip() {
        let mut h = PchHeader::request(Primitive::VectorDotProduct, 42, 64);
        h.mark_computed(3.5);
        let mut buf = BytesMut::new();
        h.write_to(&mut buf);
        assert_eq!(buf.len(), PCH_WIRE_BYTES);
        let parsed = PchHeader::read_from(&mut buf.freeze()).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.is_computed());
        assert!((parsed.result() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn fresh_request_is_uncomputed() {
        let h = PchHeader::request(Primitive::PatternMatching, 7, 128);
        assert!(!h.is_computed());
        assert_eq!(h.result(), 0.0);
        assert_eq!(h.operand_len, 128);
    }

    #[test]
    fn result_saturates_at_q88_range() {
        let mut h = PchHeader::request(Primitive::VectorDotProduct, 0, 1);
        h.mark_computed(1e9);
        assert_eq!(h.result_q88, i16::MAX);
        h.mark_computed(-1e9);
        assert_eq!(h.result_q88, i16::MIN);
    }

    #[test]
    fn negative_results_round_trip() {
        let mut h = PchHeader::request(Primitive::VectorDotProduct, 0, 1);
        h.mark_computed(-2.25);
        assert!((h.result() + 2.25).abs() < 1e-9);
    }

    #[test]
    fn status_bits_round_trip_on_the_wire() {
        for status in [
            ResultStatus::Ok,
            ResultStatus::EngineUnhealthy,
            ResultStatus::TimedOut,
        ] {
            let mut h = PchHeader::request(Primitive::VectorDotProduct, 3, 16);
            h.mark_computed(1.0);
            h.set_status(status);
            // Status must not clobber the other flag bits.
            assert!(h.is_computed());
            let mut buf = BytesMut::new();
            h.write_to(&mut buf);
            let parsed = PchHeader::read_from(&mut buf.freeze()).unwrap();
            assert_eq!(parsed.status(), status);
            assert!(parsed.is_computed());
        }
    }

    #[test]
    fn status_rewrites_replace_not_accumulate() {
        let mut h = PchHeader::request(Primitive::PatternMatching, 1, 4);
        h.set_status(ResultStatus::EngineUnhealthy);
        h.set_status(ResultStatus::TimedOut);
        assert_eq!(h.status(), ResultStatus::TimedOut);
        h.set_status(ResultStatus::Ok);
        assert_eq!(h.status(), ResultStatus::Ok);
        assert_eq!(h.flags & STATUS_MASK, 0);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u8(0);
        assert_eq!(
            PchHeader::read_from(&mut buf.freeze()),
            Err(PchError::Truncated)
        );
    }

    #[test]
    fn unknown_primitive_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        buf.put_slice(&[0u8; 7]);
        assert_eq!(
            PchHeader::read_from(&mut buf.freeze()),
            Err(PchError::BadPrimitive(99))
        );
    }
}
