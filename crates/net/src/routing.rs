//! Routing: shortest paths and the dual-field forwarding table.
//!
//! The paper's §3 protocol has routers "perform next-hop lookup based on
//! two fields: the destination IP address in the IP header and the
//! photonic computing primitive ID specified in the photonic computing
//! header". The [`RoutingTable`] implements exactly that: a
//! longest-prefix-match stage over destination prefixes, where each
//! matched entry holds a default next hop plus per-primitive overrides
//! installed by the centralized controller to steer compute packets
//! through compute-capable sites.

use crate::addr::{Addr, Prefix};
use crate::topology::{LinkId, NodeId, Topology};
use ofpc_engine::Primitive;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Weighted shortest paths from `src` by propagation delay (Dijkstra).
/// Returns per-node `(distance_ps, first_hop_link)`; unreachable nodes
/// are absent.
pub fn shortest_paths(topo: &Topology, src: NodeId) -> HashMap<NodeId, (u64, Option<LinkId>)> {
    shortest_paths_filtered(topo, src, &|_| true)
}

/// [`shortest_paths`] restricted to links accepted by `link_ok` — the
/// reconvergence primitive: protection switching routes around cut
/// fibers by filtering them out here.
pub fn shortest_paths_filtered(
    topo: &Topology,
    src: NodeId,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> HashMap<NodeId, (u64, Option<LinkId>)> {
    let mut dist: HashMap<NodeId, (u64, Option<LinkId>)> = HashMap::new();
    // Max-heap on Reverse(dist); entries: (Reverse(d), node, first_link).
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32, Option<u32>)> = BinaryHeap::new();
    dist.insert(src, (0, None));
    heap.push((std::cmp::Reverse(0), src.0, None));
    while let Some((std::cmp::Reverse(d), node, first)) = heap.pop() {
        let node = NodeId(node);
        if let Some(&(best, _)) = dist.get(&node) {
            if d > best {
                continue;
            }
        }
        for (link_id, next) in topo.neighbors(node) {
            if !link_ok(link_id) {
                continue;
            }
            let nd = d + topo.link(link_id).delay_ps();
            let first_hop = if node == src { Some(link_id.0) } else { first };
            let better = match dist.get(&next) {
                Some(&(best, _)) => nd < best,
                None => true,
            };
            if better {
                dist.insert(next, (nd, first_hop.map(LinkId)));
                heap.push((std::cmp::Reverse(nd), next.0, first_hop));
            }
        }
    }
    dist
}

/// All-pairs shortest-path delays over links accepted by `link_ok`, ps,
/// indexed `[src][dst]`; `None` = unreachable. One Dijkstra per source —
/// the shared matrix behind option enumeration and graph placement.
pub fn distance_matrix(topo: &Topology, link_ok: &dyn Fn(LinkId) -> bool) -> Vec<Vec<Option<u64>>> {
    (0..topo.node_count())
        .map(|i| {
            let paths = shortest_paths_filtered(topo, NodeId(i as u32), link_ok);
            (0..topo.node_count())
                .map(|j| paths.get(&NodeId(j as u32)).map(|&(d, _)| d))
                .collect()
        })
        .collect()
}

/// Full path (sequence of nodes) from `src` to `dst` by delay, if any.
pub fn shortest_path_nodes(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    shortest_path_nodes_filtered(topo, src, dst, &|_| true)
}

/// [`shortest_path_nodes`] restricted to links accepted by `link_ok`.
/// Returns `None` when `dst` is unreachable over the surviving links.
pub fn shortest_path_nodes_filtered(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> Option<Vec<NodeId>> {
    // Dijkstra with predecessor tracking.
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push((std::cmp::Reverse(0), src.0));
    while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
        let node = NodeId(node);
        if d > *dist.get(&node).unwrap_or(&u64::MAX) {
            continue;
        }
        if node == dst {
            break;
        }
        for (link_id, next) in topo.neighbors(node) {
            if !link_ok(link_id) {
                continue;
            }
            let nd = d + topo.link(link_id).delay_ps();
            if nd < *dist.get(&next).unwrap_or(&u64::MAX) {
                dist.insert(next, nd);
                prev.insert(next, node);
                heap.push((std::cmp::Reverse(nd), next.0));
            }
        }
    }
    if src != dst && !prev.contains_key(&dst) {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[&cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// A concrete routed path: the node sequence, the exact links taken
/// (parallel spans are distinguished), and the end-to-end delay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedPath {
    pub nodes: Vec<NodeId>,
    pub links: Vec<LinkId>,
    pub delay_ps: u64,
}

impl RoutedPath {
    /// Whether this path shares any link with `other`.
    pub fn shares_link_with(&self, other: &RoutedPath) -> bool {
        self.links.iter().any(|l| other.links.contains(l))
    }

    /// Whether any of `down` takes this path out.
    pub fn uses_any(&self, down: &[LinkId]) -> bool {
        self.links.iter().any(|l| down.contains(l))
    }
}

/// Delay-shortest route from `src` to `dst` over links accepted by
/// `link_ok`, tracking the *exact* links taken — unlike
/// [`shortest_path_nodes_filtered`] + [`path_links`], which re-resolves
/// node pairs and may pick an excluded parallel span. This is the
/// primitive behind k-disjoint enumeration, where exclusions must bind
/// to link identities, not node adjacency.
pub fn shortest_route_filtered(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> Option<RoutedPath> {
    if src == dst {
        return Some(RoutedPath {
            nodes: vec![src],
            links: Vec::new(),
            delay_ps: 0,
        });
    }
    // Dijkstra with (predecessor node, arriving link) tracking.
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push((std::cmp::Reverse(0), src.0));
    while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
        let node = NodeId(node);
        if d > *dist.get(&node).unwrap_or(&u64::MAX) {
            continue;
        }
        if node == dst {
            break;
        }
        for (link_id, next) in topo.neighbors(node) {
            if !link_ok(link_id) {
                continue;
            }
            let nd = d + topo.link(link_id).delay_ps();
            if nd < *dist.get(&next).unwrap_or(&u64::MAX) {
                dist.insert(next, nd);
                prev.insert(next, (node, link_id));
                heap.push((std::cmp::Reverse(nd), next.0));
            }
        }
    }
    let delay_ps = *dist.get(&dst)?;
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[&cur];
        links.push(l);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(RoutedPath {
        nodes,
        links,
        delay_ps,
    })
}

/// Up to `k` pairwise link-disjoint `src → dst` paths, shortest first:
/// greedy iterative Dijkstra, removing each found path's links before
/// the next round (the classic link-disjoint generalization of
/// `disjoint_pair`; greedy is not maximal on adversarial graphs, but it
/// is deterministic and exact for the 2-connected topologies here).
/// Returns fewer than `k` paths when the topology runs out of disjoint
/// capacity, and an empty vector when `dst` is unreachable.
pub fn k_disjoint_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<RoutedPath> {
    k_disjoint_paths_filtered(topo, src, dst, k, &|_| true)
}

/// [`k_disjoint_paths`] over the links accepted by `link_ok` (cut
/// fibers are excluded before disjointness is even considered).
pub fn k_disjoint_paths_filtered(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    link_ok: &dyn Fn(LinkId) -> bool,
) -> Vec<RoutedPath> {
    let mut out: Vec<RoutedPath> = Vec::new();
    if src == dst {
        if k > 0 {
            out.push(RoutedPath {
                nodes: vec![src],
                links: Vec::new(),
                delay_ps: 0,
            });
        }
        return out;
    }
    let mut used: Vec<LinkId> = Vec::new();
    while out.len() < k {
        let ok = |l: LinkId| link_ok(l) && !used.contains(&l);
        let Some(path) = shortest_route_filtered(topo, src, dst, &ok) else {
            break;
        };
        used.extend(&path.links);
        out.push(path);
    }
    out
}

/// The links traversed by a node path (adjacent pairs resolved through
/// the topology; picks the lowest-delay parallel link). Returns `None`
/// if two consecutive nodes are not adjacent.
pub fn path_links(topo: &Topology, path: &[NodeId]) -> Option<Vec<LinkId>> {
    path.windows(2)
        .map(|w| {
            topo.neighbors(w[0])
                .into_iter()
                .filter(|&(_, n)| n == w[1])
                .min_by_key(|&(l, _)| topo.link(l).delay_ps())
                .map(|(l, _)| l)
        })
        .collect()
}

/// One forwarding entry: a default next hop and per-primitive overrides.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Next-hop link for plain traffic (None = deliver locally).
    pub next_hop: Option<LinkId>,
    /// Per-primitive next-hop overrides for compute traffic that has not
    /// been computed yet.
    pub compute_next_hop: HashMap<u8, LinkId>,
    /// Op-granular overrides keyed by (primitive wire id, op id) —
    /// checked before the per-primitive map. Used by the distributed
    /// on-fiber computing extension (§5), where consecutive parts of one
    /// operation live at different sites and the packet must visit them
    /// in order.
    pub compute_next_hop_by_op: HashMap<(u8, u16), LinkId>,
}

/// A router's dual-field forwarding table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    entries: Vec<(Prefix, RouteEntry)>,
}

impl RoutingTable {
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Install (or replace) the entry for `prefix`.
    pub fn install(&mut self, prefix: Prefix, entry: RouteEntry) {
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = entry;
        } else {
            self.entries.push((prefix, entry));
            // Keep sorted by descending prefix length for LPM.
            self.entries
                .sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        }
    }

    /// Add a per-primitive override on an existing (or new) prefix entry.
    pub fn install_compute_override(&mut self, prefix: Prefix, primitive: Primitive, link: LinkId) {
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1.compute_next_hop.insert(primitive.wire_id(), link);
        } else {
            let mut entry = RouteEntry::default();
            entry.compute_next_hop.insert(primitive.wire_id(), link);
            self.install(prefix, entry);
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest-prefix-match lookup of the raw entry.
    pub fn lookup_entry(&self, dst: Addr) -> Option<&RouteEntry> {
        self.entries
            .iter()
            .find(|(p, _)| p.contains(dst))
            .map(|(_, e)| e)
    }

    /// The §3 dual-field lookup: destination LPM, then primitive
    /// override. `pending_primitive` is the packet's primitive ID iff the
    /// packet still needs computation (computed packets route like plain
    /// traffic). Returns the next-hop link, or `None` for local delivery
    /// (or no route).
    pub fn lookup(&self, dst: Addr, pending_primitive: Option<Primitive>) -> Option<LinkId> {
        self.lookup_op(dst, pending_primitive.map(|p| (p, None)))
    }

    /// Like [`RoutingTable::lookup`], with optional op-granular routing:
    /// `pending` carries the packet's primitive and (optionally) its op
    /// id. Match precedence: (primitive, op) → primitive → default.
    pub fn lookup_op(
        &self,
        dst: Addr,
        pending: Option<(Primitive, Option<u16>)>,
    ) -> Option<LinkId> {
        let entry = self.lookup_entry(dst)?;
        if let Some((prim, op)) = pending {
            if let Some(op) = op {
                if let Some(&link) = entry.compute_next_hop_by_op.get(&(prim.wire_id(), op)) {
                    return Some(link);
                }
            }
            if let Some(&link) = entry.compute_next_hop.get(&prim.wire_id()) {
                return Some(link);
            }
        }
        entry.next_hop
    }

    /// Install an op-granular override (distributed-compute routing).
    pub fn install_op_override(
        &mut self,
        prefix: Prefix,
        primitive: Primitive,
        op_id: u16,
        link: LinkId,
    ) {
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1
                .compute_next_hop_by_op
                .insert((primitive.wire_id(), op_id), link);
        } else {
            let mut entry = RouteEntry::default();
            entry
                .compute_next_hop_by_op
                .insert((primitive.wire_id(), op_id), link);
            self.install(prefix, entry);
        }
    }

    /// Whether any route (even local delivery) exists for `dst`.
    pub fn has_route(&self, dst: Addr) -> bool {
        self.lookup_entry(dst).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_on_fig1() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let paths = shortest_paths(&t, a);
        // Shortest A→D is via B (800+700=1500 km beats 900+600=1500 km —
        // equal; tie broken deterministically) — either way distance
        // matches 1500 km of fiber.
        let (dist, first) = paths[&d];
        let expect = ofpc_photonics::units::fiber_delay_ps(1500.0);
        assert_eq!(dist, expect);
        assert!(first.is_some());
        // Source itself: zero distance, no first hop.
        assert_eq!(paths[&a], (0, None));
    }

    #[test]
    fn path_nodes_walks_the_topology() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let path = shortest_path_nodes(&t, a, d).unwrap();
        assert_eq!(path.len(), 3); // A → {B|C} → D
        assert_eq!(path[0], a);
        assert_eq!(path[2], d);
        // Self-path.
        assert_eq!(shortest_path_nodes(&t, a, a).unwrap(), vec![a]);
    }

    #[test]
    fn filtered_paths_avoid_cut_links() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let b = t.find_node("B").unwrap();
        let d = t.find_node("D").unwrap();
        // Cut every link incident to B: the A→D path must go via C.
        let b_links: Vec<LinkId> = t.neighbors(b).into_iter().map(|(l, _)| l).collect();
        let ok = |l: LinkId| !b_links.contains(&l);
        let path = shortest_path_nodes_filtered(&t, a, d, &ok).unwrap();
        assert_eq!(path.len(), 3);
        assert!(!path.contains(&b), "detour must avoid B: {path:?}");
        let links = path_links(&t, &path).unwrap();
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|l| ok(*l)));
        // Filtered Dijkstra agrees on reachability and avoids B's links.
        let sp = shortest_paths_filtered(&t, a, &ok);
        assert!(sp.contains_key(&d));
        assert!(!sp.contains_key(&b));
    }

    #[test]
    fn fig1_yields_two_disjoint_paths() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let d = t.find_node("D").unwrap();
        let paths = k_disjoint_paths(&t, a, d, 4);
        // fig1 is 2-connected between A and D: exactly two disjoint
        // paths (via B and via C), shortest first.
        assert_eq!(paths.len(), 2);
        assert!(paths[0].delay_ps <= paths[1].delay_ps);
        assert!(!paths[0].shares_link_with(&paths[1]));
        for p in &paths {
            assert_eq!(p.nodes.first(), Some(&a));
            assert_eq!(p.nodes.last(), Some(&d));
            assert_eq!(p.links.len(), p.nodes.len() - 1);
        }
        assert_ne!(paths[0].nodes[1], paths[1].nodes[1], "distinct middles");
    }

    #[test]
    fn line_yields_one_path_ring_yields_two() {
        let line = Topology::line(3, 50.0);
        assert_eq!(k_disjoint_paths(&line, NodeId(0), NodeId(2), 3).len(), 1);
        let ring = Topology::ring(5, 50.0);
        let paths = k_disjoint_paths(&ring, NodeId(0), NodeId(2), 3);
        assert_eq!(paths.len(), 2);
        assert!(!paths[0].shares_link_with(&paths[1]));
        // Clockwise (2 hops) before counter-clockwise (3 hops).
        assert_eq!(paths[0].links.len(), 2);
        assert_eq!(paths[1].links.len(), 3);
    }

    #[test]
    fn parallel_spans_are_distinct_disjoint_paths() {
        // Two parallel fibers between the same pair: node-identical
        // paths, but link-disjoint — only link-aware enumeration finds
        // the second one.
        let mut t = Topology::new();
        let x = t.add_node("x");
        let y = t.add_node("y");
        let l0 = t.add_link(x, y, 10.0);
        let l1 = t.add_link(x, y, 20.0);
        let paths = k_disjoint_paths(&t, x, y, 4);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].links, vec![l0]);
        assert_eq!(paths[1].links, vec![l1]);
        assert_eq!(paths[0].nodes, paths[1].nodes);
    }

    #[test]
    fn disjoint_paths_respect_the_link_filter() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let b = t.find_node("B").unwrap();
        let d = t.find_node("D").unwrap();
        let b_links: Vec<LinkId> = t.neighbors(b).into_iter().map(|(l, _)| l).collect();
        let ok = |l: LinkId| !b_links.contains(&l);
        let paths = k_disjoint_paths_filtered(&t, a, d, 4, &ok);
        assert_eq!(paths.len(), 1, "only the C route survives the filter");
        assert!(!paths[0].nodes.contains(&b));
        assert!(paths[0].links.iter().all(|&l| ok(l)));
    }

    #[test]
    fn self_route_is_trivial() {
        let t = Topology::fig1();
        let a = t.find_node("A").unwrap();
        let paths = k_disjoint_paths(&t, a, a, 3);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].links.is_empty());
        assert_eq!(paths[0].delay_ps, 0);
        assert!(!paths[0].uses_any(&[LinkId(0)]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let x = t.add_node("x");
        let y = t.add_node("y");
        assert!(shortest_path_nodes(&t, x, y).is_none());
        assert!(!shortest_paths(&t, x).contains_key(&y));
    }

    #[test]
    fn lpm_prefers_longer_prefix() {
        let mut rt = RoutingTable::new();
        rt.install(
            "10.0.0.0/8".parse().unwrap(),
            RouteEntry {
                next_hop: Some(LinkId(1)),
                ..Default::default()
            },
        );
        rt.install(
            "10.1.0.0/16".parse().unwrap(),
            RouteEntry {
                next_hop: Some(LinkId(2)),
                ..Default::default()
            },
        );
        assert_eq!(
            rt.lookup("10.1.5.5".parse().unwrap(), None),
            Some(LinkId(2))
        );
        assert_eq!(
            rt.lookup("10.2.5.5".parse().unwrap(), None),
            Some(LinkId(1))
        );
        assert_eq!(rt.lookup("11.0.0.1".parse().unwrap(), None), None);
        assert!(!rt.has_route("11.0.0.1".parse().unwrap()));
    }

    #[test]
    fn dual_field_lookup_steers_compute_traffic() {
        let mut rt = RoutingTable::new();
        rt.install(
            "10.0.0.0/8".parse().unwrap(),
            RouteEntry {
                next_hop: Some(LinkId(1)),
                ..Default::default()
            },
        );
        rt.install_compute_override(
            "10.0.0.0/8".parse().unwrap(),
            Primitive::VectorDotProduct,
            LinkId(7),
        );
        let dst: Addr = "10.9.9.9".parse().unwrap();
        // Plain traffic: default hop.
        assert_eq!(rt.lookup(dst, None), Some(LinkId(1)));
        // Pending P1 compute: detour.
        assert_eq!(
            rt.lookup(dst, Some(Primitive::VectorDotProduct)),
            Some(LinkId(7))
        );
        // A different primitive without an override: default hop.
        assert_eq!(
            rt.lookup(dst, Some(Primitive::PatternMatching)),
            Some(LinkId(1))
        );
    }

    #[test]
    fn override_on_missing_prefix_creates_entry() {
        let mut rt = RoutingTable::new();
        rt.install_compute_override(
            "10.0.0.0/8".parse().unwrap(),
            Primitive::PatternMatching,
            LinkId(3),
        );
        let dst: Addr = "10.1.1.1".parse().unwrap();
        assert_eq!(
            rt.lookup(dst, Some(Primitive::PatternMatching)),
            Some(LinkId(3))
        );
        // Plain traffic has no next hop on that entry (local/no-route).
        assert_eq!(rt.lookup(dst, None), None);
    }

    #[test]
    fn reinstall_replaces_entry() {
        let mut rt = RoutingTable::new();
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        rt.install(
            p,
            RouteEntry {
                next_hop: Some(LinkId(1)),
                ..Default::default()
            },
        );
        rt.install(
            p,
            RouteEntry {
                next_hop: Some(LinkId(2)),
                ..Default::default()
            },
        );
        assert_eq!(rt.len(), 1);
        assert_eq!(
            rt.lookup("10.0.0.1".parse().unwrap(), None),
            Some(LinkId(2))
        );
    }
}
