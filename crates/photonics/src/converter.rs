//! Data converters: DAC and ADC.
//!
//! The boundary devices between the digital and analog domains (Fig. 3).
//! The paper's second §2.2 benefit — on-fiber computing skips the
//! constant DAC/ADC round-trips that conventional photonic accelerators
//! pay — is quantified with the energy model here: every conversion has a
//! per-sample energy cost, so experiment E3 can count exactly how many
//! joules the photonic-engine receive path saves.

use crate::rng::SimRng;
use crate::signal::AnalogWaveform;
use crate::units;

/// Configuration shared by both converter directions.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ConverterConfig {
    /// Nominal resolution in bits.
    pub bits: u32,
    /// Full-scale range: codes map to voltages in `[0, full_scale_v]`.
    pub full_scale_v: f64,
    /// Energy per conversion sample, joules. High-speed 8-bit converters
    /// run on the order of 1–10 pJ/sample.
    pub energy_per_sample_j: f64,
    /// Additive RMS noise referred to the output (DAC) or input (ADC),
    /// volts — models jitter + reference noise beyond quantization.
    pub noise_rms_v: f64,
}

impl ConverterConfig {
    /// Ideal converter: quantization only, zero energy.
    pub fn ideal(bits: u32) -> Self {
        ConverterConfig {
            bits,
            full_scale_v: 1.0,
            energy_per_sample_j: 0.0,
            noise_rms_v: 0.0,
        }
    }
}

impl Default for ConverterConfig {
    fn default() -> Self {
        ConverterConfig {
            bits: 8,
            full_scale_v: 1.0,
            energy_per_sample_j: 1.5e-12,
            noise_rms_v: 0.0005,
        }
    }
}

/// Digital-to-analog converter: code → voltage.
#[derive(Debug, Clone)]
pub struct Dac {
    pub config: ConverterConfig,
    rng: SimRng,
    pub samples_converted: u64,
}

impl Dac {
    pub fn new(config: ConverterConfig, rng: SimRng) -> Self {
        assert!(
            config.bits >= 1 && config.bits <= 24,
            "unreasonable DAC resolution"
        );
        Dac {
            config,
            rng,
            samples_converted: 0,
        }
    }

    pub fn ideal(bits: u32) -> Self {
        Dac::new(ConverterConfig::ideal(bits), SimRng::seed_from_u64(0))
    }

    /// Number of codes, `2^bits`.
    pub fn levels(&self) -> u64 {
        1u64 << self.config.bits
    }

    /// Convert a block of digital codes to voltages. Codes are clamped to
    /// the valid range (saturation, not wraparound).
    pub fn convert(&mut self, codes: &[u64], sample_rate_hz: f64) -> AnalogWaveform {
        let max_code = self.levels() - 1;
        let lsb = self.config.full_scale_v / max_code as f64;
        let mut out = AnalogWaveform::zeros(codes.len(), sample_rate_hz);
        for (o, &c) in out.samples.iter_mut().zip(codes.iter()) {
            let c = c.min(max_code);
            let mut v = c as f64 * lsb;
            if self.config.noise_rms_v > 0.0 {
                v += self.rng.normal(0.0, self.config.noise_rms_v);
            }
            *o = v;
        }
        self.samples_converted += codes.len() as u64;
        out
    }

    /// Encode a normalized value in `[0,1]` to the nearest code.
    pub fn encode_unit(&self, x: f64) -> u64 {
        let max_code = self.levels() - 1;
        (x.clamp(0.0, 1.0) * max_code as f64).round() as u64
    }

    pub fn energy_consumed_j(&self) -> f64 {
        self.samples_converted as f64 * self.config.energy_per_sample_j
    }
}

/// Analog-to-digital converter: voltage → code.
#[derive(Debug, Clone)]
pub struct Adc {
    pub config: ConverterConfig,
    rng: SimRng,
    pub samples_converted: u64,
}

impl Adc {
    pub fn new(config: ConverterConfig, rng: SimRng) -> Self {
        assert!(
            config.bits >= 1 && config.bits <= 24,
            "unreasonable ADC resolution"
        );
        Adc {
            config,
            rng,
            samples_converted: 0,
        }
    }

    pub fn ideal(bits: u32) -> Self {
        Adc::new(ConverterConfig::ideal(bits), SimRng::seed_from_u64(0))
    }

    pub fn levels(&self) -> u64 {
        1u64 << self.config.bits
    }

    /// Quantize a waveform to codes. Inputs outside `[0, full_scale_v]`
    /// saturate at the rails.
    pub fn convert(&mut self, input: &AnalogWaveform) -> Vec<u64> {
        let max_code = self.levels() - 1;
        let lsb = self.config.full_scale_v / max_code as f64;
        let mut out = Vec::with_capacity(input.len());
        for &v in &input.samples {
            let mut v = v;
            if self.config.noise_rms_v > 0.0 {
                v += self.rng.normal(0.0, self.config.noise_rms_v);
            }
            let code = (v / lsb).round().clamp(0.0, max_code as f64) as u64;
            out.push(code);
        }
        self.samples_converted += input.len() as u64;
        out
    }

    /// Decode a code back to the unit interval `[0,1]`.
    pub fn decode_unit(&self, code: u64) -> f64 {
        let max_code = self.levels() - 1;
        code.min(max_code) as f64 / max_code as f64
    }

    /// Ideal quantization SNR of this converter, dB.
    pub fn quantization_snr_db(&self) -> f64 {
        units::bits_to_snr_db(self.config.bits as f64)
    }

    pub fn energy_consumed_j(&self) -> f64 {
        self.samples_converted as f64 * self.config.energy_per_sample_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;

    #[test]
    fn dac_adc_round_trip_is_code_exact() {
        let mut dac = Dac::ideal(8);
        let mut adc = Adc::ideal(8);
        let codes: Vec<u64> = (0..256).collect();
        let wave = dac.convert(&codes, RATE);
        let back = adc.convert(&wave);
        assert_eq!(codes, back);
    }

    #[test]
    fn dac_clamps_out_of_range_codes() {
        let mut dac = Dac::ideal(4);
        let wave = dac.convert(&[100_000], RATE);
        assert!((wave.samples[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adc_saturates_at_rails() {
        let mut adc = Adc::ideal(8);
        let wave = AnalogWaveform::new(vec![-0.5, 2.0], RATE);
        let codes = adc.convert(&wave);
        assert_eq!(codes, vec![0, 255]);
    }

    #[test]
    fn encode_decode_unit_round_trip_within_half_lsb() {
        let dac = Dac::ideal(8);
        let adc = Adc::ideal(8);
        for i in 0..100 {
            let x = i as f64 / 99.0;
            let y = adc.decode_unit(dac.encode_unit(x));
            assert!((x - y).abs() <= 0.5 / 255.0 + 1e-12, "x {x} y {y}");
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let mut dac = Dac::ideal(6);
        let mut adc = Adc::ideal(6);
        let lsb = 1.0 / 63.0;
        for i in 0..200 {
            let x = i as f64 / 199.0;
            let code = dac.encode_unit(x);
            let wave = dac.convert(&[code], RATE);
            let back = adc.convert(&wave);
            let y = adc.decode_unit(back[0]);
            assert!((x - y).abs() <= 0.5 * lsb + 1e-12);
        }
    }

    #[test]
    fn converter_energy_accounting() {
        let mut dac = Dac::new(
            ConverterConfig {
                energy_per_sample_j: 2e-12,
                ..ConverterConfig::ideal(8)
            },
            SimRng::seed_from_u64(0),
        );
        dac.convert(&[0; 1000], RATE);
        assert!((dac.energy_consumed_j() - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn adc_noise_degrades_effective_bits() {
        // With noise at several LSBs, repeated conversion of the same
        // voltage spreads across codes.
        let mut adc = Adc::new(
            ConverterConfig {
                noise_rms_v: 4.0 / 255.0,
                ..ConverterConfig::ideal(8)
            },
            SimRng::seed_from_u64(5),
        );
        let wave = AnalogWaveform::new(vec![0.5; 1000], RATE);
        let codes = adc.convert(&wave);
        let distinct: std::collections::HashSet<u64> = codes.iter().copied().collect();
        assert!(distinct.len() > 5, "only {} codes", distinct.len());
    }

    #[test]
    fn quantization_snr_matches_formula() {
        let adc = Adc::ideal(8);
        assert!((adc.quantization_snr_db() - 49.92).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn rejects_zero_bit_converter() {
        Dac::new(ConverterConfig::ideal(0), SimRng::seed_from_u64(0));
    }
}
