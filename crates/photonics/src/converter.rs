//! Data converters: DAC and ADC.
//!
//! The boundary devices between the digital and analog domains (Fig. 3).
//! The paper's second §2.2 benefit — on-fiber computing skips the
//! constant DAC/ADC round-trips that conventional photonic accelerators
//! pay — is quantified with the energy model here: every conversion has a
//! per-sample energy cost, so experiment E3 can count exactly how many
//! joules the photonic-engine receive path saves.

use crate::rng::SimRng;
use crate::signal::AnalogWaveform;
use crate::units;

/// Configuration shared by both converter directions.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ConverterConfig {
    /// Nominal resolution in bits.
    pub bits: u32,
    /// Full-scale range: codes map to voltages in `[0, full_scale_v]`.
    pub full_scale_v: f64,
    /// Energy per conversion sample, joules. High-speed 8-bit converters
    /// run on the order of 1–10 pJ/sample.
    pub energy_per_sample_j: f64,
    /// Additive RMS noise referred to the output (DAC) or input (ADC),
    /// volts — models jitter + reference noise beyond quantization.
    pub noise_rms_v: f64,
    /// Maximum conversion rate, samples/s (`0` = unlimited). A converter
    /// asked to run faster emits/ingests at this rate instead, stretching
    /// symbol time — the sample-rate wall calibrated catalog parts hit.
    pub max_sample_rate_hz: f64,
}

impl ConverterConfig {
    /// Ideal converter: quantization only, zero energy, no rate wall.
    pub fn ideal(bits: u32) -> Self {
        ConverterConfig {
            bits,
            full_scale_v: 1.0,
            energy_per_sample_j: 0.0,
            noise_rms_v: 0.0,
            max_sample_rate_hz: 0.0,
        }
    }

    /// The rate the converter actually runs at when driven at
    /// `requested_hz`: clamped to the part's maximum when one is set.
    pub fn effective_sample_rate_hz(&self, requested_hz: f64) -> f64 {
        assert!(requested_hz > 0.0, "sample rate must be positive");
        if self.max_sample_rate_hz > 0.0 {
            requested_hz.min(self.max_sample_rate_hz)
        } else {
            requested_hz
        }
    }

    /// Symbol period at the effective rate, seconds — what a
    /// rate-limited part stretches the line's symbol timing to.
    pub fn symbol_time_s(&self, requested_hz: f64) -> f64 {
        1.0 / self.effective_sample_rate_hz(requested_hz)
    }
}

impl Default for ConverterConfig {
    fn default() -> Self {
        ConverterConfig {
            bits: 8,
            full_scale_v: 1.0,
            energy_per_sample_j: 1.5e-12,
            noise_rms_v: 0.0005,
            max_sample_rate_hz: 0.0,
        }
    }
}

/// Digital-to-analog converter: code → voltage.
#[derive(Debug, Clone)]
pub struct Dac {
    pub config: ConverterConfig,
    rng: SimRng,
    pub samples_converted: u64,
}

impl Dac {
    pub fn new(config: ConverterConfig, rng: SimRng) -> Self {
        assert!(
            config.bits >= 1 && config.bits <= 24,
            "unreasonable DAC resolution"
        );
        Dac {
            config,
            rng,
            samples_converted: 0,
        }
    }

    pub fn ideal(bits: u32) -> Self {
        Dac::new(ConverterConfig::ideal(bits), SimRng::seed_from_u64(0))
    }

    /// Build from a calibrated catalog part (see
    /// [`crate::parts::DacPart`]).
    pub fn from_part(part: &dyn crate::parts::DacPart, rng: SimRng) -> Self {
        Dac::new(part.converter_config(), rng)
    }

    /// Number of codes, `2^bits`.
    pub fn levels(&self) -> u64 {
        1u64 << self.config.bits
    }

    /// Convert a block of digital codes to voltages. Codes are clamped to
    /// the valid range (saturation, not wraparound). The output waveform
    /// runs at the part's effective rate: a DAC driven past its maximum
    /// sample rate stretches symbol time rather than dropping samples.
    pub fn convert(&mut self, codes: &[u64], sample_rate_hz: f64) -> AnalogWaveform {
        let max_code = self.levels() - 1;
        let lsb = self.config.full_scale_v / max_code as f64;
        let rate = self.config.effective_sample_rate_hz(sample_rate_hz);
        let mut out = AnalogWaveform::zeros(codes.len(), rate);
        for (o, &c) in out.samples.iter_mut().zip(codes.iter()) {
            let c = c.min(max_code);
            let mut v = c as f64 * lsb;
            if self.config.noise_rms_v > 0.0 {
                v += self.rng.normal(0.0, self.config.noise_rms_v);
            }
            *o = v;
        }
        self.samples_converted += codes.len() as u64;
        out
    }

    /// Account for `n` conversions without synthesizing the waveform.
    ///
    /// The scalar dot-product kernel converts every operand block and
    /// immediately discards the waveform (the decoded codes are what
    /// feed the drive synthesis). The vectorized kernel elides those
    /// dead conversions for speed but must still pay for them in the
    /// energy ledger — this bumps `samples_converted` exactly as
    /// [`Dac::convert`] would, without touching the noise RNG.
    pub fn charge_samples(&mut self, n: u64) {
        self.samples_converted += n;
    }

    /// Encode a normalized value in `[0,1]` to the nearest code.
    pub fn encode_unit(&self, x: f64) -> u64 {
        let max_code = self.levels() - 1;
        (x.clamp(0.0, 1.0) * max_code as f64).round() as u64
    }

    pub fn energy_consumed_j(&self) -> f64 {
        self.samples_converted as f64 * self.config.energy_per_sample_j
    }
}

/// Analog-to-digital converter: voltage → code.
#[derive(Debug, Clone)]
pub struct Adc {
    pub config: ConverterConfig,
    rng: SimRng,
    pub samples_converted: u64,
}

impl Adc {
    pub fn new(config: ConverterConfig, rng: SimRng) -> Self {
        assert!(
            config.bits >= 1 && config.bits <= 24,
            "unreasonable ADC resolution"
        );
        Adc {
            config,
            rng,
            samples_converted: 0,
        }
    }

    pub fn ideal(bits: u32) -> Self {
        Adc::new(ConverterConfig::ideal(bits), SimRng::seed_from_u64(0))
    }

    /// Build from a calibrated catalog part (see
    /// [`crate::parts::AdcPart`]).
    pub fn from_part(part: &dyn crate::parts::AdcPart, rng: SimRng) -> Self {
        Adc::new(part.converter_config(), rng)
    }

    pub fn levels(&self) -> u64 {
        1u64 << self.config.bits
    }

    /// Quantize a waveform to codes. Inputs outside `[0, full_scale_v]`
    /// saturate at the rails.
    pub fn convert(&mut self, input: &AnalogWaveform) -> Vec<u64> {
        let max_code = self.levels() - 1;
        let lsb = self.config.full_scale_v / max_code as f64;
        let mut out = Vec::with_capacity(input.len());
        for &v in &input.samples {
            let mut v = v;
            if self.config.noise_rms_v > 0.0 {
                v += self.rng.normal(0.0, self.config.noise_rms_v);
            }
            let code = (v / lsb).round().clamp(0.0, max_code as f64) as u64;
            out.push(code);
        }
        self.samples_converted += input.len() as u64;
        out
    }

    /// Decode a code back to the unit interval `[0,1]`.
    pub fn decode_unit(&self, code: u64) -> f64 {
        let max_code = self.levels() - 1;
        code.min(max_code) as f64 / max_code as f64
    }

    /// Ideal quantization SNR of this converter, dB.
    pub fn quantization_snr_db(&self) -> f64 {
        units::bits_to_snr_db(self.config.bits as f64)
    }

    pub fn energy_consumed_j(&self) -> f64 {
        self.samples_converted as f64 * self.config.energy_per_sample_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;

    #[test]
    fn dac_adc_round_trip_is_code_exact() {
        let mut dac = Dac::ideal(8);
        let mut adc = Adc::ideal(8);
        let codes: Vec<u64> = (0..256).collect();
        let wave = dac.convert(&codes, RATE);
        let back = adc.convert(&wave);
        assert_eq!(codes, back);
    }

    #[test]
    fn dac_clamps_out_of_range_codes() {
        let mut dac = Dac::ideal(4);
        let wave = dac.convert(&[100_000], RATE);
        assert!((wave.samples[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adc_saturates_at_rails() {
        let mut adc = Adc::ideal(8);
        let wave = AnalogWaveform::new(vec![-0.5, 2.0], RATE);
        let codes = adc.convert(&wave);
        assert_eq!(codes, vec![0, 255]);
    }

    #[test]
    fn encode_decode_unit_round_trip_within_half_lsb() {
        let dac = Dac::ideal(8);
        let adc = Adc::ideal(8);
        for i in 0..100 {
            let x = i as f64 / 99.0;
            let y = adc.decode_unit(dac.encode_unit(x));
            assert!((x - y).abs() <= 0.5 / 255.0 + 1e-12, "x {x} y {y}");
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let mut dac = Dac::ideal(6);
        let mut adc = Adc::ideal(6);
        let lsb = 1.0 / 63.0;
        for i in 0..200 {
            let x = i as f64 / 199.0;
            let code = dac.encode_unit(x);
            let wave = dac.convert(&[code], RATE);
            let back = adc.convert(&wave);
            let y = adc.decode_unit(back[0]);
            assert!((x - y).abs() <= 0.5 * lsb + 1e-12);
        }
    }

    #[test]
    fn converter_energy_accounting() {
        let mut dac = Dac::new(
            ConverterConfig {
                energy_per_sample_j: 2e-12,
                ..ConverterConfig::ideal(8)
            },
            SimRng::seed_from_u64(0),
        );
        dac.convert(&[0; 1000], RATE);
        assert!((dac.energy_consumed_j() - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn charge_samples_matches_convert_energy() {
        let cfg = ConverterConfig {
            energy_per_sample_j: 2e-12,
            ..ConverterConfig::ideal(8)
        };
        let mut converted = Dac::new(cfg.clone(), SimRng::seed_from_u64(0));
        let mut charged = Dac::new(cfg, SimRng::seed_from_u64(0));
        converted.convert(&[0; 1000], RATE);
        charged.charge_samples(1000);
        assert_eq!(converted.samples_converted, charged.samples_converted);
        assert_eq!(
            converted.energy_consumed_j().to_bits(),
            charged.energy_consumed_j().to_bits()
        );
    }

    #[test]
    fn adc_noise_degrades_effective_bits() {
        // With noise at several LSBs, repeated conversion of the same
        // voltage spreads across codes.
        let mut adc = Adc::new(
            ConverterConfig {
                noise_rms_v: 4.0 / 255.0,
                ..ConverterConfig::ideal(8)
            },
            SimRng::seed_from_u64(5),
        );
        let wave = AnalogWaveform::new(vec![0.5; 1000], RATE);
        let codes = adc.convert(&wave);
        let distinct: std::collections::HashSet<u64> = codes.iter().copied().collect();
        assert!(distinct.len() > 5, "only {} codes", distinct.len());
    }

    #[test]
    fn quantization_snr_matches_formula() {
        let adc = Adc::ideal(8);
        assert!((adc.quantization_snr_db() - 49.92).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn rejects_zero_bit_converter() {
        Dac::new(ConverterConfig::ideal(0), SimRng::seed_from_u64(0));
    }

    // ------------------------------------------------- library edge cases

    /// Full-scale clipping: inputs beyond either rail pin to the end
    /// codes, and the clipped codes decode back to exactly 0 or 1 —
    /// the saturation behavior the calibrated ADC parts rely on.
    #[test]
    fn adc_clips_symmetrically_beyond_full_scale() {
        let mut adc = Adc::new(
            ConverterConfig {
                full_scale_v: 0.8,
                ..ConverterConfig::ideal(8)
            },
            SimRng::seed_from_u64(0),
        );
        let wave = AnalogWaveform::new(vec![-10.0, -1e-9, 0.0, 0.8, 0.8 + 1e-9, 10.0], RATE);
        let codes = adc.convert(&wave);
        assert_eq!(codes, vec![0, 0, 0, 255, 255, 255]);
        assert_eq!(adc.decode_unit(codes[0]), 0.0);
        assert_eq!(adc.decode_unit(codes[5]), 1.0);
    }

    /// LSB rounding at precision boundaries: a value exactly between two
    /// codes rounds away from zero (`f64::round` semantics), values an
    /// epsilon to either side land on the adjacent codes, and the
    /// boundary moves with the resolution.
    #[test]
    fn dac_rounds_half_lsb_boundaries_per_resolution() {
        for bits in [4u32, 8, 12] {
            let dac = Dac::ideal(bits);
            let max_code = (1u64 << bits) - 1;
            for k in [0u64, max_code / 3, max_code - 1] {
                let boundary = (k as f64 + 0.5) / max_code as f64;
                assert_eq!(dac.encode_unit(boundary), k + 1, "bits {bits} code {k}");
                assert_eq!(dac.encode_unit(boundary - 1e-9), k, "bits {bits} code {k}");
                assert_eq!(
                    dac.encode_unit(boundary + 1e-9),
                    k + 1,
                    "bits {bits} code {k}"
                );
            }
            // The ends of the range are exact codes at every resolution.
            assert_eq!(dac.encode_unit(0.0), 0);
            assert_eq!(dac.encode_unit(1.0), max_code);
        }
    }

    /// Sample-rate-limited symbol timing: a slow part driven past its
    /// wall emits at its own rate, stretching the symbol period; a part
    /// with no wall (or driven below it) passes the requested rate
    /// through untouched.
    #[test]
    fn rate_limited_dac_stretches_symbol_time() {
        let slow = ConverterConfig {
            max_sample_rate_hz: 1e6,
            ..ConverterConfig::ideal(8)
        };
        let mut dac = Dac::new(slow.clone(), SimRng::seed_from_u64(0));
        let wave = dac.convert(&[0, 128, 255], 10e9);
        assert_eq!(wave.sample_rate_hz, 1e6);
        assert!((slow.symbol_time_s(10e9) - 1e-6).abs() < 1e-18);
        // Below the wall the requested rate wins.
        assert_eq!(slow.effective_sample_rate_hz(0.5e6), 0.5e6);
        // No wall: pass-through.
        let free = ConverterConfig::ideal(8);
        assert_eq!(free.effective_sample_rate_hz(10e9), 10e9);
        assert!((free.symbol_time_s(10e9) - 1e-10).abs() < 1e-22);
        let mut fast = Dac::new(free, SimRng::seed_from_u64(0));
        assert_eq!(fast.convert(&[1], 10e9).sample_rate_hz, 10e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_requested_rate_panics() {
        ConverterConfig::ideal(8).effective_sample_rate_hz(0.0);
    }
}
