//! Noise physics shared by the device models.
//!
//! The paper's §4 calls out "new algorithms to mitigate photonic noise
//! during computation" as a core challenge; this module provides the noise
//! processes that make that challenge real in simulation:
//!
//! * **Shot noise** — Poissonian photocurrent fluctuation, variance
//!   `σ² = 2 q I Δf`.
//! * **Thermal (Johnson–Nyquist) noise** — receiver load resistor noise,
//!   variance `σ² = 4 k T Δf / R`.
//! * **Relative intensity noise (RIN)** — laser power fluctuation,
//!   variance `σ² = P² · 10^(RIN_dB/10) · Δf`.
//! * **ASE** — amplified spontaneous emission added by EDFAs, power
//!   spectral density `S = (G − 1) · nsp · hν` per polarization.

use crate::rng::SimRng;
use crate::units;

/// Shot-noise standard deviation (amps) for mean photocurrent
/// `current_a` over bandwidth `bandwidth_hz`.
#[inline]
pub fn shot_noise_sigma_a(current_a: f64, bandwidth_hz: f64) -> f64 {
    (2.0 * units::ELEMENTARY_CHARGE * current_a.abs() * bandwidth_hz.max(0.0)).sqrt()
}

/// Thermal-noise standard deviation (amps) for load resistance
/// `load_ohms` over bandwidth `bandwidth_hz` at temperature `temp_k`.
#[inline]
pub fn thermal_noise_sigma_a(load_ohms: f64, bandwidth_hz: f64, temp_k: f64) -> f64 {
    assert!(load_ohms > 0.0, "load resistance must be positive");
    (4.0 * units::BOLTZMANN * temp_k * bandwidth_hz.max(0.0) / load_ohms).sqrt()
}

/// RIN-induced power standard deviation (watts) on mean optical power
/// `power_w` for a laser with relative intensity noise `rin_db_hz`
/// (dB/Hz, typically −145 to −160) over bandwidth `bandwidth_hz`.
#[inline]
pub fn rin_sigma_w(power_w: f64, rin_db_hz: f64, bandwidth_hz: f64) -> f64 {
    let rin_linear = units::db_to_linear(rin_db_hz);
    (power_w * power_w * rin_linear * bandwidth_hz.max(0.0)).sqrt()
}

/// ASE power (watts) added by an amplifier with linear gain `gain` and
/// spontaneous-emission factor `nsp` over optical bandwidth
/// `bandwidth_hz` at wavelength `wavelength_m`, both polarizations.
#[inline]
pub fn ase_power_w(gain: f64, nsp: f64, bandwidth_hz: f64, wavelength_m: f64) -> f64 {
    if gain <= 1.0 {
        return 0.0;
    }
    2.0 * (gain - 1.0) * nsp * units::photon_energy(wavelength_m) * bandwidth_hz.max(0.0)
}

/// A zero-mean additive Gaussian noise source with fixed sigma, drawing
/// from its own derived RNG stream.
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    pub sigma: f64,
    rng: SimRng,
}

impl GaussianNoise {
    pub fn new(sigma: f64, rng: SimRng) -> Self {
        GaussianNoise {
            sigma: sigma.max(0.0),
            rng,
        }
    }

    /// Draw one noise sample.
    #[inline]
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            0.0
        } else {
            self.rng.normal(0.0, self.sigma)
        }
    }

    /// Add noise in place to a slice of samples.
    pub fn corrupt(&mut self, samples: &mut [f64]) {
        if self.sigma == 0.0 {
            return;
        }
        for s in samples {
            *s += self.rng.normal(0.0, self.sigma);
        }
    }
}

/// Signal-to-noise ratio in dB given signal power and noise variance
/// (same units). Returns +∞ for zero noise.
#[inline]
pub fn snr_db(signal_power: f64, noise_power: f64) -> f64 {
    if noise_power <= 0.0 {
        f64::INFINITY
    } else {
        units::linear_to_db(signal_power / noise_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let s1 = shot_noise_sigma_a(1e-3, 10e9);
        let s4 = shot_noise_sigma_a(4e-3, 10e9);
        assert!((s4 / s1 - 2.0).abs() < 1e-12);
        // Textbook value: 2qIΔf with I=1mA, Δf=10GHz → σ ≈ 1.79 µA.
        assert!((s1 - 1.79e-6).abs() / 1.79e-6 < 0.01, "got {s1}");
    }

    #[test]
    fn shot_noise_zero_current_is_zero() {
        assert_eq!(shot_noise_sigma_a(0.0, 10e9), 0.0);
        // Negative bandwidth clamps rather than producing NaN.
        assert_eq!(shot_noise_sigma_a(1e-3, -1.0), 0.0);
    }

    #[test]
    fn thermal_noise_textbook_value() {
        // 4kTΔf/R with R=50Ω, Δf=10GHz, T=290K → σ ≈ 1.79 µA.
        let s = thermal_noise_sigma_a(50.0, 10e9, units::ROOM_TEMP_K);
        assert!((s - 1.79e-6).abs() / 1.79e-6 < 0.01, "got {s}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn thermal_noise_rejects_zero_resistance() {
        thermal_noise_sigma_a(0.0, 1e9, 290.0);
    }

    #[test]
    fn rin_scales_linearly_with_power() {
        let a = rin_sigma_w(1e-3, -150.0, 10e9);
        let b = rin_sigma_w(2e-3, -150.0, 10e9);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ase_zero_below_unity_gain() {
        assert_eq!(ase_power_w(1.0, 1.5, 50e9, units::C_BAND_WAVELENGTH_M), 0.0);
        assert_eq!(ase_power_w(0.5, 1.5, 50e9, units::C_BAND_WAVELENGTH_M), 0.0);
        assert!(ase_power_w(100.0, 1.5, 50e9, units::C_BAND_WAVELENGTH_M) > 0.0);
    }

    #[test]
    fn gaussian_noise_statistics() {
        let rng = SimRng::seed_from_u64(3);
        let mut n = GaussianNoise::new(0.5, rng);
        let mut v = vec![0.0f64; 20_000];
        n.corrupt(&mut v);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_noise_is_silent() {
        let rng = SimRng::seed_from_u64(3);
        let mut n = GaussianNoise::new(0.0, rng);
        let mut v = vec![1.0f64; 8];
        n.corrupt(&mut v);
        assert!(v.iter().all(|&x| x == 1.0));
        assert_eq!(n.sample(), 0.0);
    }

    #[test]
    fn negative_sigma_clamps_to_zero() {
        let rng = SimRng::seed_from_u64(3);
        let n = GaussianNoise::new(-1.0, rng);
        assert_eq!(n.sigma, 0.0);
    }

    #[test]
    fn snr_db_limits() {
        assert_eq!(snr_db(1.0, 0.0), f64::INFINITY);
        assert!((snr_db(100.0, 1.0) - 20.0).abs() < 1e-12);
    }
}
