//! # ofpc-photonics — analog optics substrate
//!
//! Numeric models of the photonic devices that the paper's computing
//! primitives are built from (Fig. 2 and Fig. 3 of *On-Fiber Photonic
//! Computing*, HotNets '23): lasers, Mach-Zehnder and phase modulators,
//! photodetectors, DACs/ADCs, couplers, fiber spans, EDFAs, and WDM
//! mux/demux.
//!
//! Every device is a pure transfer function over [`signal`] types plus a
//! calibrated noise process drawn from a caller-supplied seeded RNG, so the
//! whole substrate is deterministic and replayable. Physical constants and
//! unit conversions live in [`units`]; noise physics (shot, thermal, RIN,
//! ASE) in [`noise`]; per-device energy accounting in [`energy`].
//!
//! The substrate is *sans-IO*: nothing here touches the OS. Higher layers
//! (`ofpc-engine`, `ofpc-transponder`) compose these devices into the
//! paper's P1/P2/P3 computing primitives and into transponder TX/RX paths.

pub mod amplifier;
pub mod complex;
pub mod converter;
pub mod coupler;
pub mod energy;
pub mod fiber;
pub mod iq;
pub mod laser;
pub mod modulator;
pub mod noise;
pub mod parts;
pub mod photodetector;
pub mod rng;
pub mod signal;
pub mod simd;
pub mod tfcache;
pub mod units;
pub mod wdm;

pub use complex::Complex;
pub use rng::SimRng;
pub use signal::{AnalogWaveform, OpticalField};
