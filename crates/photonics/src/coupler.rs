//! Optical couplers and splitters.
//!
//! A 2×2 directional coupler is the interference element of the P2
//! pattern matcher (Fig. 2b): two phase-encoded fields combine, and the
//! output intensity encodes their phase agreement. The standard lossless
//! 2×2 coupler has the unitary transfer matrix
//!
//! ```text
//! [o1]   [ √(1−κ)    i√κ   ] [i1]
//! [o2] = [  i√κ     √(1−κ) ] [i2]
//! ```
//!
//! with κ the power coupling ratio (0.5 for a 3-dB coupler).

use crate::complex::Complex;
use crate::signal::OpticalField;
use crate::units;

/// A 2×2 directional coupler.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Coupler {
    /// Power coupling ratio κ in [0, 1]; 0.5 = 3-dB coupler.
    pub kappa: f64,
    /// Excess loss in dB (applied to both outputs).
    pub excess_loss_db: f64,
}

impl Coupler {
    /// Lossless 3-dB (50/50) coupler.
    pub fn three_db() -> Self {
        Coupler {
            kappa: 0.5,
            excess_loss_db: 0.0,
        }
    }

    pub fn new(kappa: f64, excess_loss_db: f64) -> Self {
        assert!((0.0..=1.0).contains(&kappa), "kappa must be in [0,1]");
        Coupler {
            kappa,
            excess_loss_db: excess_loss_db.abs(),
        }
    }

    /// Combine two sample-aligned fields. Returns the two output fields.
    ///
    /// Panics if the blocks differ in length or sample rate.
    pub fn combine(&self, a: &OpticalField, b: &OpticalField) -> (OpticalField, OpticalField) {
        assert_eq!(a.len(), b.len(), "coupler inputs must be sample-aligned");
        assert!(
            (a.sample_rate_hz - b.sample_rate_hz).abs() < 1e-6,
            "coupler inputs must share a sample rate"
        );
        let t = (1.0 - self.kappa).sqrt();
        let k = self.kappa.sqrt();
        let ik = Complex::new(0.0, k);
        let loss = units::db_to_linear(-self.excess_loss_db).sqrt();
        let mut o1 = a.clone();
        let mut o2 = b.clone();
        for i in 0..a.len() {
            let (ia, ib) = (a.samples[i], b.samples[i]);
            o1.samples[i] = (ia.scale(t) + ib * ik).scale(loss);
            o2.samples[i] = (ia * ik + ib.scale(t)).scale(loss);
        }
        (o1, o2)
    }

    /// Split one field into two (second input dark).
    pub fn split(&self, input: &OpticalField) -> (OpticalField, OpticalField) {
        let dark = OpticalField::dark(input.len(), input.sample_rate_hz, input.wavelength_m);
        self.combine(input, &dark)
    }
}

/// A lossless 1×N power splitter dividing input power evenly.
pub fn split_n(input: &OpticalField, n: usize) -> Vec<OpticalField> {
    assert!(n >= 1, "cannot split into zero outputs");
    let scale = (1.0 / n as f64).sqrt();
    (0..n)
        .map(|_| {
            let mut f = input.clone();
            for s in &mut f.samples {
                *s = s.scale(scale);
            }
            f
        })
        .collect()
}

/// Incoherent N×1 power combiner: sums the *fields* of sample-aligned
/// inputs. Used by WDM-parallel dot-product accumulation where each input
/// rides its own wavelength and the photodetector sums powers; for
/// same-wavelength inputs this models coherent combination.
pub fn combine_n(inputs: &[OpticalField]) -> OpticalField {
    assert!(!inputs.is_empty(), "cannot combine zero inputs");
    let n = inputs[0].len();
    let mut out = inputs[0].clone();
    for f in &inputs[1..] {
        assert_eq!(f.len(), n, "combiner inputs must be sample-aligned");
        for (o, s) in out.samples.iter_mut().zip(f.samples.iter()) {
            *o += *s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn three_db_coupler_conserves_power() {
        let c = Coupler::three_db();
        let a = OpticalField::cw(4, 1e-3, RATE, WL);
        let b = OpticalField::cw(4, 2e-3, RATE, WL);
        let (o1, o2) = c.combine(&a, &b);
        let p_in = a.mean_power_w() + b.mean_power_w();
        let p_out = o1.mean_power_w() + o2.mean_power_w();
        assert!((p_in - p_out).abs() / p_in < 1e-12);
    }

    #[test]
    fn in_phase_inputs_interfere() {
        // Equal in-phase fields through a 3-dB coupler: all power exits
        // one port (the classic interferometer null).
        let c = Coupler::three_db();
        let a = OpticalField::cw(1, 1e-3, RATE, WL);
        let (o1, o2) = c.combine(&a, &a);
        let total = o1.power_at(0) + o2.power_at(0);
        assert!((total - 2e-3).abs() < 1e-15);
        // Ports split by the relative π/2 the coupler imparts: equal here.
        assert!((o1.power_at(0) - o2.power_at(0)).abs() < 1e-15);
    }

    #[test]
    fn quadrature_inputs_route_to_one_port() {
        let c = Coupler::three_db();
        let a = OpticalField::cw(1, 1e-3, RATE, WL);
        let mut b = OpticalField::cw(1, 1e-3, RATE, WL);
        b.rotate_phase(std::f64::consts::FRAC_PI_2);
        let (o1, o2) = c.combine(&a, &b);
        // a + i·b with b = i·a gives o1 = (a + i²a)/√2 = 0.
        assert!(o1.power_at(0) < 1e-15, "o1 {}", o1.power_at(0));
        assert!((o2.power_at(0) - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn split_halves_power() {
        let c = Coupler::three_db();
        let input = OpticalField::cw(4, 1e-3, RATE, WL);
        let (o1, o2) = c.split(&input);
        assert!((o1.mean_power_w() - 0.5e-3).abs() < 1e-15);
        assert!((o2.mean_power_w() - 0.5e-3).abs() < 1e-15);
    }

    #[test]
    fn asymmetric_coupler_ratio() {
        let c = Coupler::new(0.1, 0.0);
        let input = OpticalField::cw(1, 1e-3, RATE, WL);
        let (o1, o2) = c.split(&input);
        assert!((o1.power_at(0) - 0.9e-3).abs() < 1e-15);
        assert!((o2.power_at(0) - 0.1e-3).abs() < 1e-15);
    }

    #[test]
    fn excess_loss_applies() {
        let c = Coupler::new(0.5, 3.0103);
        let input = OpticalField::cw(1, 1e-3, RATE, WL);
        let (o1, o2) = c.split(&input);
        assert!((o1.power_at(0) + o2.power_at(0) - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn split_n_conserves_power() {
        let input = OpticalField::cw(4, 1e-3, RATE, WL);
        let outs = split_n(&input, 7);
        let total: f64 = outs.iter().map(|f| f.mean_power_w()).sum();
        assert!((total - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn combine_n_adds_fields() {
        let a = OpticalField::cw(2, 1e-3, RATE, WL);
        let out = combine_n(&[a.clone(), a.clone()]);
        // Coherent in-phase combination quadruples power per the field sum.
        assert!((out.power_at(0) - 4e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn rejects_invalid_kappa() {
        Coupler::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "sample-aligned")]
    fn rejects_mismatched_lengths() {
        let c = Coupler::three_db();
        let a = OpticalField::cw(2, 1e-3, RATE, WL);
        let b = OpticalField::cw(3, 1e-3, RATE, WL);
        c.combine(&a, &b);
    }
}
