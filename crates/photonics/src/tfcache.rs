//! Quantized transfer-function caches for device curves.
//!
//! Batch workloads evaluate the same device curves — the MZM amplitude
//! transmission and the EDFA saturation gain — millions of times at
//! DAC-quantized operating points. These constructors wrap each curve in
//! an [`ofpc_par::TransferCache`], which snaps the operating point to a
//! quantization grid and memoizes the curve at the grid point. The cache
//! is shared read-only across workers behind an `Arc` and is
//! deterministic under concurrency (the stored value is a pure function
//! of the key — see the `ofpc-par` crate docs).
//!
//! Attaching a cache is **opt-in** and changes numeric results by at
//! most the quantization bound (`L·step/2` for a curve with Lipschitz
//! constant `L`); uncached devices are bit-for-bit what they always
//! were. A cache must be built from the *same config* as the device it
//! is attached to — the constructors here guarantee that by capturing a
//! clone of the config in the closure.

use std::sync::Arc;

use ofpc_par::TransferCache;

use crate::amplifier::EdfaConfig;
use crate::modulator::{MachZehnderModulator, MzmConfig};
use crate::units;

/// Default MZM drive-voltage quantization step, volts. 1 mV is far
/// below an 8-bit DAC's step over a ~3 V Vπ swing (~12 mV), so the
/// cache error is dominated by the DAC, not the grid.
pub const MZM_DRIVE_STEP_V: f64 = 1e-3;

/// Default EDFA input-power quantization step, watts. 10 nW resolves
/// the µW–mW powers seen at amplifier inputs to better than 1 %.
pub const EDFA_POWER_STEP_W: f64 = 1e-8;

/// A shared amplitude-transmission cache for MZMs with this `config`:
/// drive voltage → amplitude transmission `t(v)`. Attach with
/// [`MachZehnderModulator::set_amplitude_cache`].
pub fn mzm_amplitude_cache(config: &MzmConfig, step_v: f64) -> Arc<TransferCache> {
    let reference = MachZehnderModulator::new(config.clone());
    Arc::new(TransferCache::new(step_v, move |v| {
        reference.amplitude_transmission(v)
    }))
}

/// A shared *value-domain* cache of the fused MZM power transfer for
/// this `config`: target power transmission in `[0, 1]` → realized
/// power transmission after the extinction-ratio floor and insertion
/// loss ([`MachZehnderModulator::fused_power_transmission`]).
///
/// This is the lookup table behind the vectorized dot-product kernel:
/// keyed on the *dimensionless target* rather than the drive voltage,
/// so a grid step of `0.5/(ADC levels − 1)` makes the cache exact at
/// every code the converters can produce (each decoded code lands on a
/// grid point with zero quantization error). Only valid when the drive
/// low-pass is a passthrough — see
/// [`MachZehnderModulator::is_drive_passthrough`].
pub fn mzm_fused_power_cache(config: &MzmConfig, step: f64) -> Arc<TransferCache> {
    let reference = MachZehnderModulator::new(config.clone());
    Arc::new(TransferCache::new(step, move |target| {
        reference.fused_power_transmission(target)
    }))
}

/// A shared saturation-gain cache for EDFAs with this `config`: mean
/// input power (W) → effective linear gain after the saturation cap.
/// Attach with [`crate::amplifier::Edfa::set_gain_cache`].
pub fn edfa_gain_cache(config: &EdfaConfig, step_w: f64) -> Arc<TransferCache> {
    let gain_lin = units::db_to_linear(config.gain_db);
    let p_sat = if config.saturation_dbm.is_finite() {
        units::dbm_to_watts(config.saturation_dbm)
    } else {
        f64::INFINITY
    };
    Arc::new(TransferCache::new(step_w, move |p_in| {
        if p_in * gain_lin > p_sat && p_in > 0.0 {
            p_sat / p_in
        } else {
            gain_lin
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplifier::{Edfa, EdfaConfig};
    use crate::rng::SimRng;
    use crate::signal::{AnalogWaveform, OpticalField};

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn mzm_cache_matches_curve_within_grid_bound() {
        // Infinite extinction ratio: the finite-ER floor preserves the
        // transmission's sign and so jumps at the nulls, where a grid
        // bound cannot hold. The smooth curve is Lipschitz everywhere.
        let cfg = MzmConfig {
            extinction_ratio_db: f64::INFINITY,
            ..MzmConfig::default()
        };
        let m = MachZehnderModulator::new(cfg.clone());
        let cache = mzm_amplitude_cache(&cfg, MZM_DRIVE_STEP_V);
        // |dt/dv| ≤ π/(2Vπ) (times the ≤1 insertion-loss factor).
        let slope = std::f64::consts::PI / (2.0 * cfg.v_pi);
        for i in 0..500 {
            let v = -6.0 + i as f64 * 12.0 / 500.0;
            let err = (cache.eval(v) - m.amplitude_transmission(v)).abs();
            assert!(
                err <= slope * MZM_DRIVE_STEP_V / 2.0 + 1e-12,
                "v={v} err={err}"
            );
        }
    }

    #[test]
    fn cached_modulator_reuses_grid_points() {
        let cfg = MzmConfig::default();
        let mut m = MachZehnderModulator::new(cfg.clone());
        let cache = mzm_amplitude_cache(&cfg, MZM_DRIVE_STEP_V);
        m.set_amplitude_cache(Arc::clone(&cache));
        let input = OpticalField::cw(64, 1e-3, RATE, WL);
        let drive = AnalogWaveform::new(
            (0..64)
                .map(|i| if i % 2 == 0 { 1.5 } else { 0.5 })
                .collect(),
            RATE,
        );
        let first = m.modulate(&input, &drive);
        let again = m.modulate(&input, &drive);
        assert_eq!(first.samples, again.samples);
        // 64 samples but only 2 distinct drive levels → 2 grid points.
        assert_eq!(cache.len(), 2);
        assert!(cache.hits() >= 126);
    }

    #[test]
    fn fused_power_cache_is_exact_at_converter_codes() {
        // Grid step chosen so every 12-bit code decodes onto a grid
        // point: the cache then returns the fused curve with zero
        // quantization error at exactly the values the kernel feeds it.
        let cfg = MzmConfig::default();
        let m = MachZehnderModulator::new(cfg.clone());
        let levels = 1u64 << 12;
        let step = 0.5 / (levels - 1) as f64;
        let cache = mzm_fused_power_cache(&cfg, step);
        for code in (0..levels).step_by(37) {
            let target = code as f64 / (levels - 1) as f64;
            let got = cache.eval(target);
            let want = m.fused_power_transmission(target);
            let err = (got - want).abs();
            assert!(err <= 4.0 * f64::EPSILON, "code {code}: {got} vs {want}");
        }
    }

    #[test]
    fn edfa_cache_reproduces_saturation_kink() {
        let cfg = EdfaConfig {
            gain_db: 30.0,
            saturation_dbm: 10.0,
            ..EdfaConfig::default()
        };
        let cache = edfa_gain_cache(&cfg, EDFA_POWER_STEP_W);
        let gain_lin = units::db_to_linear(30.0);
        // Below the knee: full gain. Above: capped at p_sat/p_in.
        let low = cache.eval(1e-6);
        assert!((low - gain_lin).abs() / gain_lin < 1e-9);
        let p_in = 1e-3; // 0 dBm in, 30 dB gain → caps at 10 dBm
        let high = cache.eval(p_in);
        let want = units::dbm_to_watts(10.0) / cache.quantize(p_in);
        assert!((high - want).abs() / want < 1e-9, "got {high} want {want}");
    }

    #[test]
    fn cached_edfa_amplify_matches_uncached_within_grid_bound() {
        let cfg = EdfaConfig::default();
        let input = OpticalField::cw(256, 1e-5, RATE, WL);
        let mut plain = Edfa::new(cfg.clone(), SimRng::seed_from_u64(9));
        let mut cached = Edfa::new(cfg.clone(), SimRng::seed_from_u64(9));
        cached.set_gain_cache(edfa_gain_cache(&cfg, EDFA_POWER_STEP_W));
        let a = plain.amplify(&input);
        let b = cached.amplify(&input);
        // Unsaturated regime: gain is constant, so the cache grid has no
        // effect at all and both RNG streams line up sample for sample.
        assert_eq!(a.samples, b.samples);
    }
}
