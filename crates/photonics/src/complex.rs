//! Minimal complex-number type for optical field envelopes.
//!
//! The workspace deliberately avoids pulling in `num-complex` (the offline
//! dependency set is fixed); the handful of operations optical envelopes
//! need — add, scale, rotate, magnitude — fit in this module.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number `re + i·im`, used as the slowly-varying envelope of an
/// optical field sample. `|z|²` is instantaneous optical power.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct from polar form: `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn phasor(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Squared magnitude `|z|²` (optical power for a field envelope).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Rotate by angle `theta` (multiply by `e^{iθ}`).
    #[inline]
    pub fn rotate(self, theta: f64) -> Self {
        self * Complex::phasor(theta)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn multiplication_adds_phases_and_multiplies_magnitudes() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 0.5);
        let c = a * b;
        assert!((c.abs() - 6.0).abs() < 1e-10);
        assert!((c.arg() - 0.8).abs() < 1e-10);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex::from_polar(1.5, 1.0);
        assert!((z.conj().arg() + 1.0).abs() < EPS);
        // z * conj(z) is |z|² on the real axis.
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn interference_extremes() {
        // Constructive: |1 + 1|² = 4; destructive: |1 − 1|² = 0.
        let a = Complex::ONE;
        assert!(((a + a).norm_sqr() - 4.0).abs() < EPS);
        assert!((a - a).norm_sqr() < EPS);
        // Quadrature: |1 + i|² = 2.
        assert!(((a + Complex::new(0.0, 1.0)).norm_sqr() - 2.0).abs() < EPS);
    }

    #[test]
    fn rotate_by_pi_negates() {
        let z = Complex::new(1.0, 2.0);
        let r = z.rotate(std::f64::consts::PI);
        assert!((r.re + 1.0).abs() < EPS && (r.im + 2.0).abs() < EPS);
    }
}
