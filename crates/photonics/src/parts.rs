//! Swappable hardware parts: the trait layer of the component library.
//!
//! The paper's evaluation fixes one hardware design point, but its
//! energy/latency story hinges on converter, modulator, and laser
//! choices. These traits let calibrated catalog entries (see the
//! `ofpc-dse` crate) stand in wherever the transponder and engine
//! models previously hard-coded a part: a [`DacPart`]/[`AdcPart`]
//! produces the [`ConverterConfig`] the converter models consume, a
//! [`ModulatorPart`] an [`MzmConfig`], a [`LaserPart`] a
//! [`LaserConfig`]. Every part also carries the static power/area
//! numbers the form-factor budget checker needs, plus a provenance
//! string naming where its numbers were transcribed from.

use crate::converter::ConverterConfig;
use crate::laser::LaserConfig;
use crate::modulator::MzmConfig;

/// Common surface of every catalog part: identity, provenance, and the
/// static power/area demand the form-factor budget checker prices.
pub trait HardwarePart {
    /// Short catalog name, e.g. `"dac-12b-14g"`.
    fn part_name(&self) -> &str;
    /// Where the numbers come from (cited table, paper, or the repo
    /// default they mirror).
    fn provenance(&self) -> &str;
    /// Static power draw, W.
    fn power_w(&self) -> f64;
    /// Die area, mm².
    fn area_mm2(&self) -> f64;
}

/// A digital-to-analog converter part.
pub trait DacPart: HardwarePart {
    /// Nominal resolution, bits.
    fn bits(&self) -> u32;
    /// Maximum conversion rate, samples/s.
    fn sample_rate_hz(&self) -> f64;

    /// Energy per conversion at full rate, J — the part's power
    /// amortized over its sample stream.
    fn energy_per_sample_j(&self) -> f64 {
        self.power_w() / self.sample_rate_hz()
    }

    /// The behavioral config the converter models consume. Reference
    /// noise is a quarter LSB — good silicon, not an ideal part.
    fn converter_config(&self) -> ConverterConfig {
        ConverterConfig {
            bits: self.bits(),
            full_scale_v: 1.0,
            energy_per_sample_j: self.energy_per_sample_j(),
            noise_rms_v: 0.25 / ((1u64 << self.bits()) - 1) as f64,
            max_sample_rate_hz: self.sample_rate_hz(),
        }
    }
}

/// An analog-to-digital converter part.
pub trait AdcPart: HardwarePart {
    /// Nominal resolution, bits.
    fn bits(&self) -> u32;
    /// Maximum conversion rate, samples/s.
    fn sample_rate_hz(&self) -> f64;

    /// Energy per conversion at full rate, J.
    fn energy_per_sample_j(&self) -> f64 {
        self.power_w() / self.sample_rate_hz()
    }

    /// The behavioral config the converter models consume.
    fn converter_config(&self) -> ConverterConfig {
        ConverterConfig {
            bits: self.bits(),
            full_scale_v: 1.0,
            energy_per_sample_j: self.energy_per_sample_j(),
            noise_rms_v: 0.25 / ((1u64 << self.bits()) - 1) as f64,
            max_sample_rate_hz: self.sample_rate_hz(),
        }
    }
}

/// An intensity-modulator part (drives both the TX path and the P1
/// weight arm).
pub trait ModulatorPart: HardwarePart {
    /// The behavioral config the MZM model consumes.
    fn mzm_config(&self) -> MzmConfig;
}

/// A CW laser part.
pub trait LaserPart: HardwarePart {
    /// The behavioral config the laser model consumes.
    fn laser_config(&self) -> LaserConfig;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestDac;
    impl HardwarePart for TestDac {
        fn part_name(&self) -> &str {
            "test-dac"
        }
        fn provenance(&self) -> &str {
            "unit test"
        }
        fn power_w(&self) -> f64 {
            0.050
        }
        fn area_mm2(&self) -> f64 {
            0.011
        }
    }
    impl DacPart for TestDac {
        fn bits(&self) -> u32 {
            8
        }
        fn sample_rate_hz(&self) -> f64 {
            14e9
        }
    }

    #[test]
    fn default_energy_is_power_over_rate() {
        let d = TestDac;
        let want = 0.050 / 14e9;
        assert!((d.energy_per_sample_j() - want).abs() / want < 1e-12);
    }

    #[test]
    fn converter_config_carries_the_part_numbers() {
        let cfg = TestDac.converter_config();
        assert_eq!(cfg.bits, 8);
        assert_eq!(cfg.max_sample_rate_hz, 14e9);
        assert!((cfg.energy_per_sample_j - 0.050 / 14e9).abs() < 1e-18);
        // Quarter-LSB reference noise.
        assert!((cfg.noise_rms_v - 0.25 / 255.0).abs() < 1e-15);
    }
}
