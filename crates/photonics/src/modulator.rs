//! Optical modulators.
//!
//! Two device types drive all three of the paper's computing primitives
//! (Fig. 2a–c):
//!
//! * [`MachZehnderModulator`] — intensity modulator with the standard
//!   raised-cosine power transfer `T(v) = sin²(π v / (2 Vπ) + φ_bias)`.
//!   Two MZMs back-to-back implement the element-wise product of P1.
//! * [`PhaseModulator`] — pure phase encoder `E → E·e^{i π v / Vπ}`,
//!   used by the P2 pattern matcher's interference scheme.
//!
//! Both models include insertion loss, finite extinction ratio, and
//! drive-bandwidth limiting; all are configurable so tests can switch the
//! imperfections off and verify the ideal math first.

use crate::signal::{AnalogWaveform, OpticalField};
use crate::units;

/// Bias point of a Mach-Zehnder modulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BiasPoint {
    /// Null point: zero transmission at zero drive. Best contrast for
    /// amplitude encoding of non-negative values.
    Null,
    /// Quadrature: 50% transmission at zero drive, locally linear — the
    /// operating point used for analog computing (Fig. 2a) because the
    /// small-signal response is linear in the drive voltage.
    Quadrature,
    /// Peak: full transmission at zero drive.
    Peak,
}

impl BiasPoint {
    /// Static phase offset contributed by the bias, radians.
    fn phase_offset(self) -> f64 {
        match self {
            BiasPoint::Null => 0.0,
            BiasPoint::Quadrature => std::f64::consts::FRAC_PI_4,
            BiasPoint::Peak => std::f64::consts::FRAC_PI_2,
        }
    }
}

/// Configuration of a Mach-Zehnder intensity modulator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MzmConfig {
    /// Half-wave voltage Vπ (volts); typical silicon MZM: 2–6 V.
    pub v_pi: f64,
    /// Bias operating point.
    pub bias: BiasPoint,
    /// Insertion loss in dB (typical 3–5 dB).
    pub insertion_loss_db: f64,
    /// Extinction ratio in dB (finite leakage at the null; typical 20–30).
    pub extinction_ratio_db: f64,
    /// 3-dB electro-optic bandwidth in Hz (0 = unlimited).
    pub bandwidth_hz: f64,
    /// Drive energy per symbol transition, joules (for energy accounting;
    /// on the order of tens of fJ for integrated silicon MZMs).
    pub drive_energy_j: f64,
}

impl MzmConfig {
    /// An ideal, lossless, infinite-bandwidth MZM — calibration reference.
    pub fn ideal() -> Self {
        MzmConfig {
            v_pi: 3.0,
            bias: BiasPoint::Null,
            insertion_loss_db: 0.0,
            extinction_ratio_db: f64::INFINITY,
            bandwidth_hz: 0.0,
            drive_energy_j: 0.0,
        }
    }
}

impl Default for MzmConfig {
    fn default() -> Self {
        MzmConfig {
            v_pi: 3.0,
            bias: BiasPoint::Null,
            insertion_loss_db: 3.5,
            extinction_ratio_db: 25.0,
            bandwidth_hz: 40e9,
            drive_energy_j: 50e-15,
        }
    }
}

/// Mach-Zehnder intensity modulator.
#[derive(Debug, Clone)]
pub struct MachZehnderModulator {
    pub config: MzmConfig,
    /// Symbols modulated so far (drives energy accounting).
    pub symbols_modulated: u64,
    /// Optional shared memo of the amplitude-transmission curve
    /// (see [`crate::tfcache`]); `None` evaluates the curve directly.
    amplitude_cache: Option<std::sync::Arc<ofpc_par::TransferCache>>,
}

impl MachZehnderModulator {
    pub fn new(config: MzmConfig) -> Self {
        MachZehnderModulator {
            config,
            symbols_modulated: 0,
            amplitude_cache: None,
        }
    }

    /// Attach a shared quantized-key cache of this modulator's amplitude
    /// transmission. The cache must be built from the same [`MzmConfig`]
    /// (use [`crate::tfcache::mzm_amplitude_cache`]); per-sample lookups
    /// in [`MachZehnderModulator::modulate`] then go through the grid,
    /// changing results by at most the quantization bound.
    pub fn set_amplitude_cache(&mut self, cache: std::sync::Arc<ofpc_par::TransferCache>) {
        self.amplitude_cache = Some(cache);
    }

    /// Amplitude transmission via the attached cache, or the direct
    /// curve when no cache is attached.
    #[inline]
    fn cached_transmission(&self, v: f64) -> f64 {
        match &self.amplitude_cache {
            Some(cache) => cache.eval(v),
            None => self.amplitude_transmission(v),
        }
    }

    /// Amplitude transmission for drive voltage `v`:
    /// `t(v) = sin(π v / (2 Vπ) + φ_bias)`, floored by the extinction
    /// ratio and scaled by insertion loss. Power transmission is `t²`.
    pub fn amplitude_transmission(&self, v: f64) -> f64 {
        let theta =
            std::f64::consts::PI * v / (2.0 * self.config.v_pi) + self.config.bias.phase_offset();
        let t = theta.sin();
        let floor = if self.config.extinction_ratio_db.is_finite() {
            units::db_to_linear(-self.config.extinction_ratio_db).sqrt()
        } else {
            0.0
        };
        // Keep the sign of the ideal transmission but floor the magnitude
        // at the extinction-ratio leakage level.
        let sign = if t < 0.0 { -1.0 } else { 1.0 };
        let t = sign * t.abs().max(floor);
        let il = units::db_to_linear(-self.config.insertion_loss_db).sqrt();
        t * il
    }

    /// Power transmission `T(v) = t(v)²`.
    pub fn power_transmission(&self, v: f64) -> f64 {
        let t = self.amplitude_transmission(v);
        t * t
    }

    /// The drive voltage that produces (ideal, lossless) power
    /// transmission `target` in `[0, 1]` at the configured bias. Used by
    /// calibration to encode a known value onto the light.
    pub fn drive_for_transmission(&self, target: f64) -> f64 {
        let target = target.clamp(0.0, 1.0);
        let theta = target.sqrt().asin();
        (theta - self.config.bias.phase_offset()) * 2.0 * self.config.v_pi / std::f64::consts::PI
    }

    /// Whether the drive low-pass is a no-op at `sample_rate_hz`:
    /// either the bandwidth is unlimited (0) or it is at/above Nyquist,
    /// where [`AnalogWaveform::lowpass`] passes the waveform through
    /// unchanged. When true, encode→modulate→detect pipelines may fuse
    /// the transfer per sample (see
    /// [`MachZehnderModulator::fused_power_transmission`]).
    pub fn is_drive_passthrough(&self, sample_rate_hz: f64) -> bool {
        self.config.bandwidth_hz <= 0.0 || self.config.bandwidth_hz >= sample_rate_hz / 2.0
    }

    /// Fused encode→transmit amplitude transfer: the amplitude
    /// transmission this modulator produces when driven with
    /// [`MachZehnderModulator::drive_for_transmission`]`(target)` and the
    /// drive is not band-limited. The bias offset cancels in the
    /// round trip (`θ = asin(√target) ∈ [0, π/2]`), so this collapses to
    /// `max(√target, floor)·il` for every bias point — one `sqrt`
    /// instead of an `asin`/`sin` pair, equal to the scalar round trip
    /// within ~1 ulp.
    pub fn fused_amplitude_transmission(&self, target: f64) -> f64 {
        let (floor, il) = self.fused_amplitude_constants();
        target.clamp(0.0, 1.0).sqrt().max(floor) * il
    }

    /// The `(floor, il)` pair of the fused amplitude transfer —
    /// extinction-ratio leakage floor and insertion-loss amplitude
    /// scale — hoisted out for block loops: the fused amplitude
    /// transmission of `target` is `max(√target, floor)·il`. Both
    /// values cost a `powf` to derive, which block kernels must not
    /// pay per sample.
    pub fn fused_amplitude_constants(&self) -> (f64, f64) {
        let floor = if self.config.extinction_ratio_db.is_finite() {
            units::db_to_linear(-self.config.extinction_ratio_db).sqrt()
        } else {
            0.0
        };
        let il = units::db_to_linear(-self.config.insertion_loss_db).sqrt();
        (floor, il)
    }

    /// Fused encode→transmit *power* transfer (the square of
    /// [`MachZehnderModulator::fused_amplitude_transmission`]).
    pub fn fused_power_transmission(&self, target: f64) -> f64 {
        let t = self.fused_amplitude_transmission(target);
        t * t
    }

    /// Vectorized power-domain transfer for a block of target power
    /// transmissions: fills `out` with the power transmission each
    /// target actually experiences through encode (drive synthesis),
    /// the drive low-pass, and the transfer curve. Uses the fused
    /// one-`sqrt` path when the drive low-pass is a no-op at
    /// `sample_rate_hz`, and the general drive-filtered path otherwise.
    ///
    /// Pure with respect to device state: no RNG is consumed and no
    /// symbols are accounted (callers account symbols for the pass as a
    /// whole). Any attached amplitude cache is bypassed — the fused
    /// curve is evaluated directly (DESIGN.md §12).
    pub fn power_transmissions_into(
        &self,
        targets: &[f64],
        sample_rate_hz: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if self.is_drive_passthrough(sample_rate_hz) {
            let (floor, il) = self.fused_amplitude_constants();
            out.extend(targets.iter().map(|&t| {
                let amp = t.clamp(0.0, 1.0).sqrt().max(floor) * il;
                amp * amp
            }));
        } else {
            let mut drive = AnalogWaveform::new(
                targets
                    .iter()
                    .map(|&t| self.drive_for_transmission(t.clamp(0.0, 1.0)))
                    .collect(),
                sample_rate_hz,
            );
            drive.lowpass(self.config.bandwidth_hz);
            out.extend(drive.samples.iter().map(|&v| {
                let t = self.amplitude_transmission(v);
                t * t
            }));
        }
    }

    /// Modulate a struct-of-arrays block in place: every sample's field
    /// amplitude is scaled by `t(drive[i])`, exactly as
    /// [`MachZehnderModulator::modulate`] does for `OpticalField`, but
    /// without allocating an output block. Accounts the symbols.
    pub fn modulate_block(&mut self, block: &mut crate::simd::FieldBlock, drive: &AnalogWaveform) {
        assert_eq!(
            block.len(),
            drive.len(),
            "drive waveform length must match optical block"
        );
        let mut drive = drive.clone();
        if self.config.bandwidth_hz > 0.0 {
            drive.lowpass(self.config.bandwidth_hz);
        }
        for (k, &v) in drive.samples.iter().enumerate() {
            let t = self.cached_transmission(v);
            block.re[k] *= t;
            block.im[k] *= t;
        }
        self.symbols_modulated += block.len() as u64;
    }

    /// Modulate `input` with the drive waveform; sample `i` of the output
    /// is the input field scaled by `t(drive[i])`. The drive is bandwidth
    /// limited first if the config specifies a finite bandwidth.
    ///
    /// `drive.len()` must equal `input.len()`.
    pub fn modulate(&mut self, input: &OpticalField, drive: &AnalogWaveform) -> OpticalField {
        assert_eq!(
            input.len(),
            drive.len(),
            "drive waveform length must match optical block"
        );
        let mut drive = drive.clone();
        if self.config.bandwidth_hz > 0.0 {
            drive.lowpass(self.config.bandwidth_hz);
        }
        let mut out = input.clone();
        for (s, &v) in out.samples.iter_mut().zip(drive.samples.iter()) {
            *s = s.scale(self.cached_transmission(v));
        }
        self.symbols_modulated += input.len() as u64;
        out
    }

    /// Total drive energy consumed so far, joules.
    pub fn energy_consumed_j(&self) -> f64 {
        self.symbols_modulated as f64 * self.config.drive_energy_j
    }
}

/// Configuration of a phase modulator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PhaseModulatorConfig {
    /// Voltage for a π phase shift.
    pub v_pi: f64,
    /// Insertion loss in dB.
    pub insertion_loss_db: f64,
    /// 3-dB bandwidth in Hz (0 = unlimited).
    pub bandwidth_hz: f64,
    /// Drive energy per symbol, joules.
    pub drive_energy_j: f64,
}

impl PhaseModulatorConfig {
    pub fn ideal() -> Self {
        PhaseModulatorConfig {
            v_pi: 3.0,
            insertion_loss_db: 0.0,
            bandwidth_hz: 0.0,
            drive_energy_j: 0.0,
        }
    }
}

impl Default for PhaseModulatorConfig {
    fn default() -> Self {
        PhaseModulatorConfig {
            v_pi: 3.0,
            insertion_loss_db: 2.0,
            bandwidth_hz: 40e9,
            drive_energy_j: 30e-15,
        }
    }
}

/// Pure phase modulator: `E → E · e^{i π v / Vπ}` per sample.
#[derive(Debug, Clone)]
pub struct PhaseModulator {
    pub config: PhaseModulatorConfig,
    pub symbols_modulated: u64,
}

impl PhaseModulator {
    pub fn new(config: PhaseModulatorConfig) -> Self {
        PhaseModulator {
            config,
            symbols_modulated: 0,
        }
    }

    /// Phase shift for drive voltage `v`, radians.
    #[inline]
    pub fn phase_for(&self, v: f64) -> f64 {
        std::f64::consts::PI * v / self.config.v_pi
    }

    /// Drive voltage for a desired phase shift.
    #[inline]
    pub fn drive_for_phase(&self, phase: f64) -> f64 {
        phase * self.config.v_pi / std::f64::consts::PI
    }

    /// Apply per-sample phase modulation.
    pub fn modulate(&mut self, input: &OpticalField, drive: &AnalogWaveform) -> OpticalField {
        assert_eq!(
            input.len(),
            drive.len(),
            "drive waveform length must match optical block"
        );
        let mut drive = drive.clone();
        if self.config.bandwidth_hz > 0.0 {
            drive.lowpass(self.config.bandwidth_hz);
        }
        let il = units::db_to_linear(-self.config.insertion_loss_db).sqrt();
        let mut out = input.clone();
        for (s, &v) in out.samples.iter_mut().zip(drive.samples.iter()) {
            *s = s.rotate(self.phase_for(v)).scale(il);
        }
        self.symbols_modulated += input.len() as u64;
        out
    }

    pub fn energy_consumed_j(&self) -> f64 {
        self.symbols_modulated as f64 * self.config.drive_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::OpticalField;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    fn cw(n: usize) -> OpticalField {
        OpticalField::cw(n, 1e-3, RATE, WL)
    }

    #[test]
    fn ideal_mzm_null_bias_extremes() {
        let m = MachZehnderModulator::new(MzmConfig::ideal());
        // v = 0 → dark; v = Vπ → full transmission (sin(π/2) = 1).
        assert!(m.power_transmission(0.0) < 1e-20);
        assert!((m.power_transmission(3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadrature_bias_half_transmission_at_zero() {
        let m = MachZehnderModulator::new(MzmConfig {
            bias: BiasPoint::Quadrature,
            ..MzmConfig::ideal()
        });
        assert!((m.power_transmission(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drive_for_transmission_inverts_transfer() {
        let mut m = MachZehnderModulator::new(MzmConfig::ideal());
        for target in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let v = m.drive_for_transmission(target);
            let input = cw(1);
            let drive = AnalogWaveform::new(vec![v], RATE);
            let out = m.modulate(&input, &drive);
            let got = out.power_at(0) / input.power_at(0);
            assert!((got - target).abs() < 1e-9, "target {target} got {got}");
        }
    }

    #[test]
    fn two_mzms_back_to_back_multiply() {
        // This is the P1 primitive's core algebra (Fig. 2a): power
        // transmissions multiply, so encoding a then b yields a·b.
        let mut m1 = MachZehnderModulator::new(MzmConfig::ideal());
        let mut m2 = MachZehnderModulator::new(MzmConfig::ideal());
        let (a, b) = (0.6, 0.3);
        let input = cw(1);
        let d1 = AnalogWaveform::new(vec![m1.drive_for_transmission(a)], RATE);
        let d2 = AnalogWaveform::new(vec![m2.drive_for_transmission(b)], RATE);
        let out = m2.modulate(&m1.modulate(&input, &d1), &d2);
        let got = out.power_at(0) / input.power_at(0);
        assert!((got - a * b).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn insertion_loss_reduces_power() {
        let mut m = MachZehnderModulator::new(MzmConfig {
            insertion_loss_db: 3.0103,
            ..MzmConfig::ideal()
        });
        let input = cw(4);
        let drive = AnalogWaveform::new(vec![m.drive_for_transmission(1.0); 4], RATE);
        let out = m.modulate(&input, &drive);
        assert!((out.mean_power_w() / input.mean_power_w() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn finite_extinction_ratio_leaks_at_null() {
        let m = MachZehnderModulator::new(MzmConfig {
            extinction_ratio_db: 20.0,
            ..MzmConfig::ideal()
        });
        let t = m.power_transmission(0.0);
        assert!((t - 0.01).abs() < 1e-6, "leakage {t}");
    }

    #[test]
    fn mzm_energy_accounting() {
        let mut m = MachZehnderModulator::new(MzmConfig {
            drive_energy_j: 50e-15,
            ..MzmConfig::ideal()
        });
        let input = cw(100);
        let drive = AnalogWaveform::zeros(100, RATE);
        m.modulate(&input, &drive);
        assert!((m.energy_consumed_j() - 100.0 * 50e-15).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mzm_rejects_mismatched_lengths() {
        let mut m = MachZehnderModulator::new(MzmConfig::ideal());
        let input = cw(4);
        let drive = AnalogWaveform::zeros(3, RATE);
        m.modulate(&input, &drive);
    }

    #[test]
    fn phase_modulator_encodes_phase_not_power() {
        let mut pm = PhaseModulator::new(PhaseModulatorConfig::ideal());
        let input = cw(1);
        let drive = AnalogWaveform::new(vec![pm.drive_for_phase(1.1)], RATE);
        let out = pm.modulate(&input, &drive);
        assert!((out.samples[0].arg() - 1.1).abs() < 1e-12);
        assert!((out.power_at(0) - input.power_at(0)).abs() < 1e-18);
    }

    #[test]
    fn phase_modulator_pi_inverts_field() {
        let mut pm = PhaseModulator::new(PhaseModulatorConfig::ideal());
        let input = cw(1);
        let drive = AnalogWaveform::new(vec![pm.drive_for_phase(std::f64::consts::PI)], RATE);
        let out = pm.modulate(&input, &drive);
        // e^{iπ} = −1: destructive with the original.
        let sum = out.samples[0] + input.samples[0];
        assert!(sum.norm_sqr() < 1e-18);
    }

    #[test]
    fn fused_transfer_matches_scalar_round_trip() {
        // Every bias point, lossy and lossless, finite and infinite ER:
        // encode→transmit through the scalar pair must equal the fused
        // one-sqrt path up to the scalar path's own rounding. The scalar
        // round trip carries the operating point through asin/sin with
        // the bias added and subtracted, so its angle is off by a few
        // ulps *absolutely*; in power that is an error of order
        // EPS·√t + EPS², not EPS·t — the bound below mirrors that.
        for bias in [BiasPoint::Null, BiasPoint::Quadrature, BiasPoint::Peak] {
            for (il, er) in [(0.0, f64::INFINITY), (3.5, 25.0), (1.0, 20.0)] {
                let m = MachZehnderModulator::new(MzmConfig {
                    bias,
                    insertion_loss_db: il,
                    extinction_ratio_db: er,
                    ..MzmConfig::ideal()
                });
                for target in [0.0, 1e-300, 1e-6, 0.001, 0.25, 0.5, 0.999, 1.0, 1.5, -0.3] {
                    let scalar = {
                        let t = m.amplitude_transmission(m.drive_for_transmission(target));
                        t * t
                    };
                    let fused = m.fused_power_transmission(target);
                    let err = (scalar - fused).abs();
                    let tol = 4.0 * f64::EPSILON * scalar
                        + 8.0 * f64::EPSILON * scalar.sqrt()
                        + 32.0 * f64::EPSILON * f64::EPSILON;
                    assert!(
                        err <= tol,
                        "bias {bias:?} il {il} er {er} target {target}: \
                         scalar {scalar} fused {fused}"
                    );
                }
            }
        }
    }

    #[test]
    fn power_transmissions_into_matches_modulate_when_band_limited() {
        // The general (drive-filtered) vectorized path must reproduce
        // the scalar modulate pipeline exactly, IIR transient included.
        let cfg = MzmConfig {
            bandwidth_hz: 1e9, // well below Nyquist at 10 GS/s
            insertion_loss_db: 2.0,
            extinction_ratio_db: 22.0,
            ..MzmConfig::ideal()
        };
        let mut scalar_m = MachZehnderModulator::new(cfg.clone());
        let vec_m = MachZehnderModulator::new(cfg);
        assert!(!vec_m.is_drive_passthrough(RATE));
        let targets: Vec<f64> = (0..32).map(|i| (i as f64 / 31.0).powi(2)).collect();
        let input = cw(32);
        let drive = AnalogWaveform::new(
            targets
                .iter()
                .map(|&t| scalar_m.drive_for_transmission(t))
                .collect(),
            RATE,
        );
        let out = scalar_m.modulate(&input, &drive);
        let mut t2 = Vec::new();
        vec_m.power_transmissions_into(&targets, RATE, &mut t2);
        for (k, &t) in t2.iter().enumerate().take(32) {
            let want = out.power_at(k) / input.power_at(k);
            assert!(
                (t - want).abs() < 1e-12,
                "sample {k}: vector {t} scalar {want}"
            );
        }
    }

    #[test]
    fn passthrough_predicate_matches_lowpass_behavior() {
        let m = |bw: f64| {
            MachZehnderModulator::new(MzmConfig {
                bandwidth_hz: bw,
                ..MzmConfig::ideal()
            })
        };
        assert!(m(0.0).is_drive_passthrough(RATE)); // unlimited
        assert!(m(RATE / 2.0).is_drive_passthrough(RATE)); // at Nyquist
        assert!(m(40e9).is_drive_passthrough(RATE)); // above Nyquist
        assert!(!m(RATE / 2.0 - 1.0).is_drive_passthrough(RATE));
    }

    #[test]
    fn modulate_block_matches_modulate_bit_exactly() {
        let cfg = MzmConfig {
            bandwidth_hz: 3e9,
            insertion_loss_db: 3.5,
            extinction_ratio_db: 25.0,
            ..MzmConfig::ideal()
        };
        let mut aos = MachZehnderModulator::new(cfg.clone());
        let mut soa = MachZehnderModulator::new(cfg);
        let input = cw(64);
        let drive = AnalogWaveform::new((0..64).map(|i| (i % 5) as f64 * 0.7).collect(), RATE);
        let out = aos.modulate(&input, &drive);
        let mut block = crate::simd::FieldBlock::from_field(&input);
        soa.modulate_block(&mut block, &drive);
        for k in 0..64 {
            assert_eq!(out.samples[k].re.to_bits(), block.re[k].to_bits());
            assert_eq!(out.samples[k].im.to_bits(), block.im[k].to_bits());
        }
        assert_eq!(aos.symbols_modulated, soa.symbols_modulated);
    }

    #[test]
    fn bandwidth_limit_smears_fast_drive() {
        let mut fast = MachZehnderModulator::new(MzmConfig {
            bandwidth_hz: 1e9, // far below the 10 GHz sample rate
            ..MzmConfig::ideal()
        });
        let mut ideal = MachZehnderModulator::new(MzmConfig::ideal());
        let input = cw(64);
        let v_full = fast.drive_for_transmission(1.0);
        let drive = AnalogWaveform::new(
            (0..64)
                .map(|i| if i % 2 == 0 { v_full } else { 0.0 })
                .collect(),
            RATE,
        );
        let out_bw = fast.modulate(&input, &drive);
        let out_ideal = ideal.modulate(&input, &drive);
        // Band-limited drive can't reach the full on/off swing. Judge the
        // steady state (skip the filter's startup transient).
        let swing = |f: &OpticalField| {
            let tail: Vec<f64> = f.samples[32..].iter().map(|s| s.norm_sqr()).collect();
            tail.iter().fold(0.0f64, |m, &p| m.max(p))
                - tail.iter().fold(f64::MAX, |m, &p| m.min(p))
        };
        let (swing_bw, swing_ideal) = (swing(&out_bw), swing(&out_ideal));
        assert!(
            swing_bw < 0.5 * swing_ideal,
            "swing {swing_bw} vs {swing_ideal}"
        );
    }
}
