//! Energy accounting.
//!
//! The paper's §2.2 comparison is an energy argument: a photonic MAC costs
//! ~40 aJ (Sludds et al., Science 2022) while a TPU 8-bit MAC costs
//! ~70 fJ; and on-fiber computing additionally skips DAC/ADC conversions.
//! This module centralizes every energy constant with its provenance and
//! provides a ledger type that devices and pipelines append to, so
//! experiments E3–E5 can report per-stage joules.

use std::collections::BTreeMap;

/// Energy constants used across the workspace, with provenance.
pub mod constants {
    /// Photonic 8-bit multiply-accumulate, J. Paper §2.2, citing
    /// Sludds et al. "Delocalized Photonic Deep Learning on the
    /// Internet's Edge" (Science 2022): 40 × 10⁻¹⁸ J.
    pub const PHOTONIC_MAC_J: f64 = 40e-18;

    /// TPU 8-bit multiply, J. Paper §2.2: 7 × 10⁻¹⁴ J.
    pub const TPU_MAC_J: f64 = 7e-14;

    /// TPU v4i clock frequency, Hz. Paper §2.2 citing Jouppi et al.
    /// (ISCA 2021): ~1.05 GHz.
    pub const TPU_CLOCK_HZ: f64 = 1.05e9;

    /// NVIDIA A100 boost clock, Hz. Paper §2.2: ~1.41 GHz.
    pub const GPU_CLOCK_HZ: f64 = 1.41e9;

    /// Photonic compute rate per dot-product lane, Hz. Set by the
    /// modulator/detector bandwidth (tens of GHz); we use the transponder
    /// symbol rate as the per-lane MAC rate.
    pub const PHOTONIC_LANE_HZ: f64 = 32e9;

    /// High-speed DAC energy per sample, J (~pJ/sample class).
    pub const DAC_SAMPLE_J: f64 = 1.5e-12;

    /// High-speed ADC energy per sample, J. ADCs at coherent-transponder
    /// speeds are several times costlier than DACs.
    pub const ADC_SAMPLE_J: f64 = 4.0e-12;

    /// Coherent DSP ASIC energy per processed bit, J (~10 pJ/bit class).
    pub const DSP_BIT_J: f64 = 10e-12;

    /// Switch-ASIC in-network compute energy per 32-bit ALU op, J.
    pub const SWITCH_ALU_OP_J: f64 = 5e-12;

    /// General-purpose CPU energy per 8-bit-equivalent MAC, J
    /// (server-class, including memory traffic; order 1 pJ–10 pJ; we use
    /// a conservative mid value).
    pub const CPU_MAC_J: f64 = 5e-12;

    /// CPU sustained MAC rate for the server baseline, Hz.
    pub const CPU_MAC_HZ: f64 = 50e9;

    /// TPU sustained MAC rate used by the baseline model, MACs/s.
    /// (65k MACs/cycle at ~1 GHz is peak; we model a sustained fraction.)
    pub const TPU_MAC_HZ: f64 = 20e12;
}

/// A labelled energy ledger: joules per named stage, ordered by label.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyLedger {
    entries: BTreeMap<String, f64>,
}

impl EnergyLedger {
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Add `joules` to stage `label`. Negative contributions are rejected
    /// (energy is spent, never refunded).
    pub fn add(&mut self, label: &str, joules: f64) {
        assert!(
            joules >= 0.0 && joules.is_finite(),
            "energy contribution must be finite and non-negative, got {joules} for {label}"
        );
        *self.entries.entry(label.to_string()).or_insert(0.0) += joules;
    }

    /// Total joules across all stages.
    pub fn total_j(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Joules recorded for one stage (0 if absent).
    pub fn get(&self, label: &str) -> f64 {
        self.entries.get(label).copied().unwrap_or(0.0)
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (k, v) in &other.entries {
            *self.entries.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// Iterate `(stage, joules)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct stages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.entries {
            writeln!(f, "{k:>24}: {:.3e} J", v)?;
        }
        write!(f, "{:>24}: {:.3e} J", "total", self.total_j())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_energy_ratio_is_1750x() {
        // §2.2: photonic MAC vs TPU MAC — the headline energy advantage.
        let ratio = constants::TPU_MAC_J / constants::PHOTONIC_MAC_J;
        assert!((ratio - 1750.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn ledger_accumulates_and_totals() {
        let mut l = EnergyLedger::new();
        l.add("dac", 1e-12);
        l.add("dac", 1e-12);
        l.add("adc", 4e-12);
        assert!((l.get("dac") - 2e-12).abs() < 1e-24);
        assert!((l.total_j() - 6e-12).abs() < 1e-24);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn ledger_merge() {
        let mut a = EnergyLedger::new();
        a.add("x", 1.0);
        let mut b = EnergyLedger::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
        assert_eq!(a.total_j(), 6.0);
    }

    #[test]
    fn ledger_missing_stage_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.get("nothing"), 0.0);
        assert!(l.is_empty());
        assert_eq!(l.total_j(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ledger_rejects_negative_energy() {
        EnergyLedger::new().add("bad", -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn ledger_rejects_nan() {
        EnergyLedger::new().add("bad", f64::NAN);
    }

    #[test]
    fn display_includes_total() {
        let mut l = EnergyLedger::new();
        l.add("laser", 1e-3);
        let s = format!("{l}");
        assert!(s.contains("laser"));
        assert!(s.contains("total"));
    }
}
