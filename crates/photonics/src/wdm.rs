//! Wavelength-division multiplexing.
//!
//! WDM gives the photonic engine its parallelism: a matrix-vector multiply
//! runs one dot product per wavelength through the same modulator chain
//! (the Fig. 2a primitive replicated across the C-band grid). This module
//! provides the ITU-style channel grid plus mux/demux with configurable
//! insertion loss and inter-channel crosstalk.

use crate::signal::OpticalField;
use crate::units;

/// An ITU-like DWDM channel grid centered on the C-band.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WdmGrid {
    /// Center frequency of channel 0, Hz (193.1 THz for the ITU anchor).
    pub anchor_hz: f64,
    /// Channel spacing, Hz (50 or 100 GHz typical).
    pub spacing_hz: f64,
    /// Number of channels.
    pub channels: usize,
}

impl WdmGrid {
    /// Standard 100-GHz C-band grid with `channels` channels.
    pub fn c_band(channels: usize) -> Self {
        assert!(channels >= 1, "grid needs at least one channel");
        WdmGrid {
            anchor_hz: 193.1e12,
            spacing_hz: 100e9,
            channels,
        }
    }

    /// Center frequency of channel `ch`, Hz.
    pub fn frequency_hz(&self, ch: usize) -> f64 {
        assert!(ch < self.channels, "channel {ch} out of range");
        self.anchor_hz + ch as f64 * self.spacing_hz
    }

    /// Center wavelength of channel `ch`, m.
    pub fn wavelength_m(&self, ch: usize) -> f64 {
        units::C_VACUUM / self.frequency_hz(ch)
    }

    /// Total grid capacity given per-channel data rate.
    pub fn total_capacity_bps(&self, per_channel_bps: f64) -> f64 {
        self.channels as f64 * per_channel_bps
    }
}

/// A WDM multiplexer/demultiplexer pair with loss and crosstalk.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WdmMux {
    pub grid: WdmGrid,
    /// Insertion loss per pass, dB.
    pub insertion_loss_db: f64,
    /// Adjacent-channel crosstalk, dB (power leaking between neighbors;
    /// −30 dB typical AWG). `NEG_INFINITY` disables crosstalk.
    pub crosstalk_db: f64,
}

impl WdmMux {
    pub fn ideal(grid: WdmGrid) -> Self {
        WdmMux {
            grid,
            insertion_loss_db: 0.0,
            crosstalk_db: f64::NEG_INFINITY,
        }
    }

    pub fn new(grid: WdmGrid, insertion_loss_db: f64, crosstalk_db: f64) -> Self {
        WdmMux {
            grid,
            insertion_loss_db: insertion_loss_db.abs(),
            crosstalk_db,
        }
    }

    /// Multiplex per-channel fields onto the grid. Each input keeps its
    /// own envelope; the mux retags wavelengths to grid centers and
    /// applies insertion loss. Inputs must be sample-aligned.
    pub fn mux(&self, channels: &[OpticalField]) -> Vec<OpticalField> {
        assert!(
            channels.len() <= self.grid.channels,
            "more inputs than grid channels"
        );
        channels
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut out = f.clone();
                out.wavelength_m = self.grid.wavelength_m(i);
                out.attenuate_db(self.insertion_loss_db);
                out
            })
            .collect()
    }

    /// Demultiplex: apply insertion loss and mix in adjacent-channel
    /// crosstalk at the configured level.
    pub fn demux(&self, channels: &[OpticalField]) -> Vec<OpticalField> {
        let xt_amp = if self.crosstalk_db.is_finite() {
            units::db_to_linear(self.crosstalk_db).sqrt()
        } else {
            0.0
        };
        let mut out: Vec<OpticalField> = channels.to_vec();
        if xt_amp > 0.0 {
            for i in 0..channels.len() {
                let n = channels[i].len();
                for j in [i.wrapping_sub(1), i + 1] {
                    if j < channels.len() && channels[j].len() == n {
                        for k in 0..n {
                            let leak = channels[j].samples[k].scale(xt_amp);
                            out[i].samples[k] += leak;
                        }
                    }
                }
            }
        }
        for f in &mut out {
            f.attenuate_db(self.insertion_loss_db);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;

    #[test]
    fn grid_frequencies_are_spaced() {
        let g = WdmGrid::c_band(8);
        assert_eq!(g.frequency_hz(0), 193.1e12);
        assert_eq!(g.frequency_hz(1) - g.frequency_hz(0), 100e9);
        // C-band wavelengths near 1550 nm.
        let wl = g.wavelength_m(0);
        assert!((wl - 1552.5e-9).abs() < 1e-9, "wl {wl}");
    }

    #[test]
    fn capacity_scales_with_channels() {
        let g = WdmGrid::c_band(80);
        // The paper's §5 headline: 800 Gbps on one wavelength.
        assert_eq!(g.total_capacity_bps(800e9), 64e12);
    }

    #[test]
    fn ideal_mux_demux_round_trip() {
        let g = WdmGrid::c_band(4);
        let mux = WdmMux::ideal(g);
        let inputs: Vec<OpticalField> = (0..4)
            .map(|i| OpticalField::cw(8, (i + 1) as f64 * 1e-4, RATE, 1550e-9))
            .collect();
        let muxed = mux.mux(&inputs);
        let out = mux.demux(&muxed);
        for (i, f) in out.iter().enumerate() {
            assert!((f.mean_power_w() - (i + 1) as f64 * 1e-4).abs() < 1e-15);
            assert_eq!(f.wavelength_m, mux.grid.wavelength_m(i));
        }
    }

    #[test]
    fn insertion_loss_applies_per_pass() {
        let g = WdmGrid::c_band(2);
        let mux = WdmMux::new(g, 3.0103, f64::NEG_INFINITY);
        let inputs = vec![OpticalField::cw(4, 1e-3, RATE, 1550e-9)];
        let muxed = mux.mux(&inputs);
        assert!((muxed[0].mean_power_w() - 0.5e-3).abs() < 1e-9);
        let out = mux.demux(&muxed);
        assert!((out[0].mean_power_w() - 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn crosstalk_leaks_between_neighbors() {
        let g = WdmGrid::c_band(3);
        let mux = WdmMux::new(g, 0.0, -20.0);
        // Channel 1 dark, neighbors lit: leakage shows up on channel 1.
        let inputs = vec![
            OpticalField::cw(4, 1e-3, RATE, 1550e-9),
            OpticalField::dark(4, RATE, 1550e-9),
            OpticalField::cw(4, 1e-3, RATE, 1550e-9),
        ];
        let out = mux.demux(&inputs);
        let leaked = out[1].mean_power_w();
        assert!(leaked > 1e-6, "leaked {leaked}");
        assert!(leaked < 1e-4, "leaked {leaked}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grid_rejects_out_of_range_channel() {
        WdmGrid::c_band(4).frequency_hz(4);
    }

    #[test]
    #[should_panic(expected = "more inputs")]
    fn mux_rejects_too_many_inputs() {
        let mux = WdmMux::ideal(WdmGrid::c_band(1));
        let inputs = vec![
            OpticalField::dark(1, RATE, 1550e-9),
            OpticalField::dark(1, RATE, 1550e-9),
        ];
        mux.mux(&inputs);
    }
}
