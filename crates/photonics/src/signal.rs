//! Signal types flowing between devices.
//!
//! Two representations cross device boundaries:
//!
//! * [`OpticalField`] — a block of complex envelope samples on one
//!   wavelength. `|sample|²` is instantaneous optical power in watts.
//! * [`AnalogWaveform`] — an electrical voltage/current sample block, the
//!   input of DACs/modulator drivers and the output of photodetectors.
//!
//! Both carry their sample rate so devices can apply bandwidth-dependent
//! noise correctly.

use crate::complex::Complex;
use crate::units;

/// A block of complex optical envelope samples on a single wavelength.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalField {
    /// Envelope samples; `|e|²` = instantaneous power (W).
    pub samples: Vec<Complex>,
    /// Sample rate in Hz (symbol rate of the block).
    pub sample_rate_hz: f64,
    /// Carrier wavelength in meters.
    pub wavelength_m: f64,
}

impl OpticalField {
    /// A dark (all-zero) field of `n` samples.
    pub fn dark(n: usize, sample_rate_hz: f64, wavelength_m: f64) -> Self {
        OpticalField {
            samples: vec![Complex::ZERO; n],
            sample_rate_hz,
            wavelength_m,
        }
    }

    /// Continuous-wave field: every sample at amplitude `sqrt(power_w)`.
    pub fn cw(n: usize, power_w: f64, sample_rate_hz: f64, wavelength_m: f64) -> Self {
        let amp = power_w.max(0.0).sqrt();
        OpticalField {
            samples: vec![Complex::new(amp, 0.0); n],
            sample_rate_hz,
            wavelength_m,
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Instantaneous power of sample `i`, W.
    #[inline]
    pub fn power_at(&self, i: usize) -> f64 {
        self.samples[i].norm_sqr()
    }

    /// Mean optical power over the block, W. Zero for an empty block.
    pub fn mean_power_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak instantaneous power, W.
    pub fn peak_power_w(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.norm_sqr())
            .fold(0.0, f64::max)
    }

    /// Total energy in the block, J (mean power × duration).
    pub fn energy_j(&self) -> f64 {
        if self.sample_rate_hz <= 0.0 {
            return 0.0;
        }
        self.samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / self.sample_rate_hz
    }

    /// Mean power in dBm.
    pub fn mean_power_dbm(&self) -> f64 {
        units::watts_to_dbm(self.mean_power_w())
    }

    /// Apply a flat power loss of `loss_db` ≥ 0 dB (amplitude scaling).
    pub fn attenuate_db(&mut self, loss_db: f64) {
        let amp_scale = units::db_to_linear(-loss_db.abs()).sqrt();
        for s in &mut self.samples {
            *s = s.scale(amp_scale);
        }
    }

    /// Apply a uniform phase rotation to every sample.
    pub fn rotate_phase(&mut self, theta: f64) {
        let ph = Complex::phasor(theta);
        for s in &mut self.samples {
            *s *= ph;
        }
    }

    /// Block duration in seconds.
    pub fn duration_s(&self) -> f64 {
        if self.sample_rate_hz <= 0.0 {
            0.0
        } else {
            self.samples.len() as f64 / self.sample_rate_hz
        }
    }
}

/// A block of electrical samples (volts by convention; photodetector output
/// is a current that a transimpedance stage maps to volts).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogWaveform {
    pub samples: Vec<f64>,
    pub sample_rate_hz: f64,
}

impl AnalogWaveform {
    pub fn new(samples: Vec<f64>, sample_rate_hz: f64) -> Self {
        AnalogWaveform {
            samples,
            sample_rate_hz,
        }
    }

    pub fn zeros(n: usize, sample_rate_hz: f64) -> Self {
        AnalogWaveform::new(vec![0.0; n], sample_rate_hz)
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Root-mean-square value.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.samples.iter().map(|s| s * s).sum::<f64>() / self.samples.len() as f64).sqrt()
    }

    /// Peak absolute value.
    pub fn peak_abs(&self) -> f64 {
        self.samples.iter().fold(0.0, |m, s| m.max(s.abs()))
    }

    /// Scale every sample by `gain` (e.g. a transimpedance gain).
    pub fn scale(&mut self, gain: f64) {
        for s in &mut self.samples {
            *s *= gain;
        }
    }

    /// Single-pole low-pass filter with 3-dB cutoff `cutoff_hz`, modelling
    /// device bandwidth limits (modulator drivers, photodetector front
    /// ends). First-order IIR: `y[n] = y[n-1] + α (x[n] − y[n-1])`.
    pub fn lowpass(&mut self, cutoff_hz: f64) {
        if self.samples.is_empty() || cutoff_hz <= 0.0 || self.sample_rate_hz <= 0.0 {
            return;
        }
        // α from the bilinear-ish RC mapping; cutoff ≥ Nyquist ⇒ passthrough.
        if cutoff_hz >= self.sample_rate_hz / 2.0 {
            return;
        }
        let dt = 1.0 / self.sample_rate_hz;
        let rc = 1.0 / (std::f64::consts::TAU * cutoff_hz);
        let alpha = dt / (rc + dt);
        // Filter starts at rest (y = 0), like an RC network before the
        // signal arrives.
        let mut y = 0.0;
        for s in &mut self.samples {
            y += alpha * (*s - y);
            *s = y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn cw_power_is_uniform() {
        let f = OpticalField::cw(64, 2e-3, RATE, WL);
        assert!((f.mean_power_w() - 2e-3).abs() < 1e-15);
        assert!((f.peak_power_w() - 2e-3).abs() < 1e-15);
        assert!((f.mean_power_dbm() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn dark_field_has_no_energy() {
        let f = OpticalField::dark(16, RATE, WL);
        assert_eq!(f.mean_power_w(), 0.0);
        assert_eq!(f.energy_j(), 0.0);
        assert_eq!(f.mean_power_dbm(), f64::NEG_INFINITY);
    }

    #[test]
    fn attenuation_halves_power_at_3db() {
        let mut f = OpticalField::cw(8, 1e-3, RATE, WL);
        f.attenuate_db(3.0103);
        assert!((f.mean_power_w() - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn attenuation_is_loss_even_for_negative_input() {
        // Sign mistakes must not create gain.
        let mut f = OpticalField::cw(8, 1e-3, RATE, WL);
        f.attenuate_db(-3.0);
        assert!(f.mean_power_w() < 1e-3);
    }

    #[test]
    fn phase_rotation_preserves_power() {
        let mut f = OpticalField::cw(8, 1e-3, RATE, WL);
        f.rotate_phase(1.234);
        assert!((f.mean_power_w() - 1e-3).abs() < 1e-18);
        assert!((f.samples[0].arg() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_duration() {
        let f = OpticalField::cw(1000, 1e-3, RATE, WL);
        let expect = 1e-3 * 1000.0 / RATE;
        assert!((f.energy_j() - expect).abs() < 1e-18);
        assert!((f.duration_s() - 1000.0 / RATE).abs() < 1e-18);
    }

    #[test]
    fn waveform_stats() {
        let w = AnalogWaveform::new(vec![1.0, -1.0, 1.0, -1.0], RATE);
        assert_eq!(w.mean(), 0.0);
        assert!((w.rms() - 1.0).abs() < 1e-15);
        assert_eq!(w.peak_abs(), 1.0);
    }

    #[test]
    fn lowpass_attenuates_alternating_signal() {
        // Nyquist-rate square wave should be heavily attenuated by a
        // cutoff far below the sample rate.
        let samples: Vec<f64> = (0..512)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut w = AnalogWaveform::new(samples, RATE);
        w.lowpass(RATE / 100.0);
        // Judge the steady state (skip the startup transient).
        let tail = &w.samples[256..];
        let rms = (tail.iter().map(|s| s * s).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(rms < 0.1, "rms {rms}");
    }

    #[test]
    fn lowpass_passes_dc() {
        let mut w = AnalogWaveform::new(vec![0.7; 256], RATE);
        w.lowpass(RATE / 100.0);
        assert!((w.samples[255] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn lowpass_above_nyquist_is_identity() {
        let orig: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let mut w = AnalogWaveform::new(orig.clone(), RATE);
        w.lowpass(RATE);
        assert_eq!(w.samples, orig);
    }

    #[test]
    fn empty_blocks_are_safe() {
        let f = OpticalField::dark(0, RATE, WL);
        assert!(f.is_empty());
        assert_eq!(f.mean_power_w(), 0.0);
        let mut w = AnalogWaveform::zeros(0, RATE);
        w.lowpass(1e9);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rms(), 0.0);
    }
}
