//! Fiber spans.
//!
//! The medium of Fig. 1's WAN links: standard single-mode fiber with
//! 0.2 dB/km attenuation, group delay at `c / n_g`, and (optionally)
//! chromatic-dispersion-induced intersymbol interference modeled as a
//! symbol-rate-dependent low-pass on the envelope. The discrete-event
//! network simulator consumes [`FiberSpan::delay_ps`]; the physical-layer
//! experiments push [`OpticalField`] blocks through [`FiberSpan::propagate`].

use crate::signal::OpticalField;
use crate::units;

/// A span of standard single-mode fiber.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FiberSpan {
    /// Span length, km.
    pub length_km: f64,
    /// Attenuation, dB/km.
    pub attenuation_db_per_km: f64,
    /// Dispersion parameter D, ps/(nm·km); 17 for SMF-28 at 1550 nm.
    pub dispersion_ps_nm_km: f64,
}

impl FiberSpan {
    /// Standard SMF-28 span of the given length.
    pub fn smf(length_km: f64) -> Self {
        assert!(length_km >= 0.0, "negative fiber length");
        FiberSpan {
            length_km,
            attenuation_db_per_km: units::SMF_ATTENUATION_DB_PER_KM,
            dispersion_ps_nm_km: 17.0,
        }
    }

    /// A dispersion-compensated span: same loss and delay as SMF, zero
    /// residual dispersion. Deployed WAN links are dispersion-managed
    /// (DCF spools or coherent-DSP equalization), so frame transport in
    /// the network simulator uses this variant; the uncompensated
    /// [`FiberSpan::smf`] stays available for physical-layer experiments.
    pub fn compensated(length_km: f64) -> Self {
        FiberSpan {
            dispersion_ps_nm_km: 0.0,
            ..FiberSpan::smf(length_km)
        }
    }

    /// Total span loss, dB.
    pub fn total_loss_db(&self) -> f64 {
        self.length_km * self.attenuation_db_per_km
    }

    /// One-way propagation delay, seconds.
    pub fn delay_s(&self) -> f64 {
        units::fiber_delay_s(self.length_km)
    }

    /// One-way propagation delay in integer picoseconds (DES timestamps).
    pub fn delay_ps(&self) -> u64 {
        units::fiber_delay_ps(self.length_km)
    }

    /// Accumulated dispersion, ps/nm.
    pub fn accumulated_dispersion_ps_nm(&self) -> f64 {
        self.dispersion_ps_nm_km * self.length_km
    }

    /// Dispersion-limited bandwidth for on-off envelopes, Hz.
    ///
    /// Uses the engineering rule that pulse broadening `Δt = D·L·Δλ` with
    /// signal spectral width `Δλ ≈ λ²·B/c` limits usable symbol rate to
    /// roughly `B ≤ sqrt(c / (2 D L λ²))` — the classic dispersion-length
    /// trade-off. Returns `f64::INFINITY` for a zero-dispersion span.
    pub fn dispersion_limited_bandwidth_hz(&self, wavelength_m: f64) -> f64 {
        let d_total = self.accumulated_dispersion_ps_nm() * 1e-12 / 1e-9; // s/m
        if d_total <= 0.0 {
            return f64::INFINITY;
        }
        (units::C_VACUUM / (2.0 * d_total * wavelength_m * wavelength_m)).sqrt()
    }

    /// Propagate a field through the span: attenuate, rotate by the
    /// carrier phase accumulated over the length, and apply the
    /// dispersion-limited low-pass to the envelope when the block's
    /// sample rate exceeds the dispersion limit.
    pub fn propagate(&self, input: &OpticalField) -> OpticalField {
        let mut out = input.clone();
        out.attenuate_db(self.total_loss_db());
        // Carrier phase modulo 2π (physically exact phase is enormous;
        // only the modulo matters for interference downstream).
        let phase = (std::f64::consts::TAU * self.length_km * 1e3 / input.wavelength_m)
            % std::f64::consts::TAU;
        out.rotate_phase(phase);
        let disp_bw = self.dispersion_limited_bandwidth_hz(input.wavelength_m);
        if disp_bw.is_finite() && disp_bw < input.sample_rate_hz / 2.0 {
            // Apply the band limit to I and Q envelopes independently.
            let mut re: Vec<f64> = out.samples.iter().map(|s| s.re).collect();
            let mut im: Vec<f64> = out.samples.iter().map(|s| s.im).collect();
            let mut wre = crate::signal::AnalogWaveform::new(re.clone(), out.sample_rate_hz);
            let mut wim = crate::signal::AnalogWaveform::new(im.clone(), out.sample_rate_hz);
            wre.lowpass(disp_bw);
            wim.lowpass(disp_bw);
            re = wre.samples;
            im = wim.samples;
            for (i, s) in out.samples.iter_mut().enumerate() {
                *s = crate::Complex::new(re[i], im[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn loss_is_02_db_per_km() {
        let span = FiberSpan::smf(100.0);
        assert!((span.total_loss_db() - 20.0).abs() < 1e-12);
        let input = OpticalField::cw(4, 1e-3, RATE, WL);
        let out = span.propagate(&input);
        assert!((out.mean_power_w() - 1e-5).abs() / 1e-5 < 1e-9);
    }

    #[test]
    fn delay_matches_group_index() {
        let span = FiberSpan::smf(1000.0);
        // ~4.9 ms for 1000 km.
        assert!((span.delay_s() - 4.9e-3).abs() < 0.1e-3);
        assert_eq!(span.delay_ps(), (span.delay_s() * 1e12).round() as u64);
    }

    #[test]
    fn zero_length_span_is_identity() {
        let span = FiberSpan::smf(0.0);
        let input = OpticalField::cw(4, 1e-3, RATE, WL);
        let out = span.propagate(&input);
        assert_eq!(out.samples, input.samples);
        assert_eq!(span.delay_ps(), 0);
    }

    #[test]
    fn dispersion_limit_shrinks_with_length() {
        let short = FiberSpan::smf(10.0);
        let long = FiberSpan::smf(1000.0);
        let b_short = short.dispersion_limited_bandwidth_hz(WL);
        let b_long = long.dispersion_limited_bandwidth_hz(WL);
        assert!(b_short > b_long);
        // 1000 km uncompensated SMF supports only a few GHz OOK.
        assert!(b_long < 10e9, "limit {b_long}");
        assert!(b_long > 1e9, "limit {b_long}");
    }

    #[test]
    fn zero_dispersion_is_unlimited() {
        let mut span = FiberSpan::smf(100.0);
        span.dispersion_ps_nm_km = 0.0;
        assert_eq!(span.dispersion_limited_bandwidth_hz(WL), f64::INFINITY);
    }

    #[test]
    fn long_span_smears_fast_envelope() {
        let span = FiberSpan::smf(2000.0);
        // Alternating on/off at 10 GHz over 2000 km: dispersion limit is
        // ~2 GHz, so the pattern must be heavily smeared.
        let amp = 1e-3f64.sqrt();
        let samples: Vec<crate::Complex> = (0..256)
            .map(|i| {
                if i % 2 == 0 {
                    crate::Complex::new(amp, 0.0)
                } else {
                    crate::Complex::ZERO
                }
            })
            .collect();
        let input = OpticalField {
            samples,
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let out = span.propagate(&input);
        // Contrast between even and odd samples collapses.
        let even: f64 = out.samples.iter().step_by(2).map(|s| s.norm_sqr()).sum();
        let odd: f64 = out
            .samples
            .iter()
            .skip(1)
            .step_by(2)
            .map(|s| s.norm_sqr())
            .sum();
        let contrast = (even - odd).abs() / (even + odd).max(1e-30);
        assert!(contrast < 0.2, "contrast {contrast}");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_length() {
        FiberSpan::smf(-1.0);
    }
}
