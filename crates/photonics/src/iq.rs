//! IQ modulation and coherent detection.
//!
//! The devices that make a transponder *coherent* (the 100G+ systems the
//! paper's Fig. 3 cites): an [`IqModulator`] — two null-biased
//! Mach-Zehnder children writing the in-phase and quadrature field
//! amplitudes — and a [`CoherentReceiver`] — a 90° optical hybrid mixing
//! the signal with a local oscillator onto two balanced photodetector
//! pairs, recovering both field quadratures (and thus phase, which
//! square-law direct detection discards).

use crate::complex::Complex;
use crate::laser::{Laser, LaserConfig};
use crate::modulator::{MachZehnderModulator, MzmConfig};
use crate::photodetector::{Photodetector, PhotodetectorConfig};
use crate::signal::{AnalogWaveform, OpticalField};
use crate::SimRng;

/// An IQ (nested Mach-Zehnder) modulator.
#[derive(Debug, Clone)]
pub struct IqModulator {
    mzm_i: MachZehnderModulator,
    mzm_q: MachZehnderModulator,
}

impl IqModulator {
    /// Both children share `config` and must be null-biased (the IQ
    /// structure needs signed amplitude transmission around zero).
    pub fn new(config: MzmConfig) -> Self {
        assert!(
            config.bias == crate::modulator::BiasPoint::Null,
            "IQ children must be null-biased"
        );
        IqModulator {
            mzm_i: MachZehnderModulator::new(config.clone()),
            mzm_q: MachZehnderModulator::new(config),
        }
    }

    pub fn ideal() -> Self {
        IqModulator::new(MzmConfig::ideal())
    }

    /// Drive voltage that produces signed amplitude transmission
    /// `a ∈ [-1, 1]` in a null-biased child: `v = (2Vπ/π)·asin(a)`.
    pub fn drive_for_amplitude(&self, a: f64) -> f64 {
        let a = a.clamp(-1.0, 1.0);
        2.0 * self.mzm_i.config.v_pi / std::f64::consts::PI * a.asin()
    }

    /// Modulate per-sample complex amplitudes `(i, q)` (each in
    /// `[-1, 1]`) onto the carrier: output envelope
    /// `E·(tᵢ + i·t_q)/2` (the 1/2 is the split/combine loss inherent to
    /// the nested structure).
    pub fn modulate(
        &mut self,
        carrier: &OpticalField,
        drive_i: &AnalogWaveform,
        drive_q: &AnalogWaveform,
    ) -> OpticalField {
        assert_eq!(carrier.len(), drive_i.len(), "I drive length mismatch");
        assert_eq!(carrier.len(), drive_q.len(), "Q drive length mismatch");
        let arm_i = self.mzm_i.modulate(carrier, drive_i);
        let arm_q = self.mzm_q.modulate(carrier, drive_q);
        let mut out = carrier.clone();
        for k in 0..out.len() {
            let i = arm_i.samples[k];
            let q = arm_q.samples[k] * Complex::new(0.0, 1.0);
            out.samples[k] = (i + q).scale(0.5);
        }
        out
    }

    /// Total drive energy spent, J.
    pub fn energy_consumed_j(&self) -> f64 {
        self.mzm_i.energy_consumed_j() + self.mzm_q.energy_consumed_j()
    }
}

/// Configuration of a coherent receiver front end.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CoherentRxConfig {
    /// Local-oscillator laser.
    pub lo: LaserConfig,
    /// The four hybrid photodetectors share this config.
    pub pd: PhotodetectorConfig,
}

impl CoherentRxConfig {
    pub fn ideal() -> Self {
        CoherentRxConfig {
            lo: LaserConfig {
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                wall_plug_w: 0.0,
                ..LaserConfig::default()
            },
            pd: PhotodetectorConfig::ideal(),
        }
    }

    pub fn realistic() -> Self {
        CoherentRxConfig {
            lo: LaserConfig::default(),
            pd: PhotodetectorConfig::default(),
        }
    }
}

/// A phase- and polarization-ideal coherent receiver: 90° hybrid + two
/// balanced pairs. Carrier recovery (the DSP's job in a real
/// transponder) is assumed ideal: the LO is co-phased with the carrier.
#[derive(Debug)]
pub struct CoherentReceiver {
    lo: Laser,
    pd_ip: Photodetector,
    pd_in: Photodetector,
    pd_qp: Photodetector,
    pd_qn: Photodetector,
}

impl CoherentReceiver {
    pub fn new(config: CoherentRxConfig, rng: &mut SimRng) -> Self {
        CoherentReceiver {
            lo: Laser::new(config.lo.clone(), rng.derive("coh-lo")),
            pd_ip: Photodetector::new(config.pd.clone(), rng.derive("coh-pd-ip")),
            pd_in: Photodetector::new(config.pd.clone(), rng.derive("coh-pd-in")),
            pd_qp: Photodetector::new(config.pd.clone(), rng.derive("coh-pd-qp")),
            pd_qn: Photodetector::new(config.pd.clone(), rng.derive("coh-pd-qn")),
        }
    }

    pub fn ideal() -> Self {
        let mut rng = SimRng::seed_from_u64(0);
        CoherentReceiver::new(CoherentRxConfig::ideal(), &mut rng)
    }

    /// Detect both quadratures of `signal`. Returns `(i, q)` balanced
    /// photocurrent waveforms: `i ∝ Re(S·L*)`, `q ∝ Im(S·L*)`.
    pub fn detect(&mut self, signal: &OpticalField) -> (AnalogWaveform, AnalogWaveform) {
        let n = signal.len();
        let lo = self.lo.emit(n, signal.sample_rate_hz);
        // 90° hybrid outputs (each port carries (S ± L)/2 or (S ± iL)/2).
        let mut p_ip = signal.clone();
        let mut p_in = signal.clone();
        let mut p_qp = signal.clone();
        let mut p_qn = signal.clone();
        for k in 0..n {
            let s = signal.samples[k];
            let l = lo.samples[k];
            let il = l * Complex::new(0.0, 1.0);
            p_ip.samples[k] = (s + l).scale(0.5);
            p_in.samples[k] = (s - l).scale(0.5);
            p_qp.samples[k] = (s + il).scale(0.5);
            p_qn.samples[k] = (s - il).scale(0.5);
        }
        let i_p = self.pd_ip.detect(&p_ip);
        let i_n = self.pd_in.detect(&p_in);
        let q_p = self.pd_qp.detect(&p_qp);
        let q_n = self.pd_qn.detect(&p_qn);
        let diff = |a: &AnalogWaveform, b: &AnalogWaveform| {
            AnalogWaveform::new(
                a.samples
                    .iter()
                    .zip(&b.samples)
                    .map(|(x, y)| x - y)
                    .collect(),
                signal.sample_rate_hz,
            )
        };
        (diff(&i_p, &i_n), diff(&q_p, &q_n))
    }

    /// LO power (sets the coherent gain).
    pub fn lo_power_w(&self) -> f64 {
        self.lo.power_w()
    }

    /// Vectorized [`CoherentReceiver::detect`]: same hybrid + balanced
    /// pairs, operating on a struct-of-arrays block.
    ///
    /// Instead of materializing four intermediate [`OpticalField`] clones
    /// (one per hybrid port), the port *powers* are computed directly into
    /// flat `f64` buffers and fed through
    /// [`Photodetector::detect_power_block`], which converts them to
    /// photocurrents in place. The LO emission and every photodetector
    /// noise draw consume the device RNGs in the same order as the scalar
    /// path, so noiseless configurations are bit-identical to `detect`
    /// (pinned by a test below); noisy configurations share distributions
    /// but not streams (DESIGN.md §12).
    pub fn detect_block(
        &mut self,
        signal: &crate::simd::FieldBlock,
    ) -> (AnalogWaveform, AnalogWaveform) {
        let n = signal.len();
        let rate = signal.sample_rate_hz;
        let lo = self.lo.emit(n, rate);
        let mut p_ip = vec![0.0; n];
        let mut p_in = vec![0.0; n];
        let mut p_qp = vec![0.0; n];
        let mut p_qn = vec![0.0; n];
        for k in 0..n {
            let (sr, si) = (signal.re[k], signal.im[k]);
            let (lr, li) = (lo.samples[k].re, lo.samples[k].im);
            // Port fields are (S ± L)/2 and (S ± iL)/2 with iL = (−Lᵢ, Lᵣ);
            // square each half-amplitude exactly as scale(0.5) + norm_sqr
            // would, to keep the noiseless path bit-identical.
            let (a, b) = ((sr + lr) * 0.5, (si + li) * 0.5);
            p_ip[k] = a * a + b * b;
            let (a, b) = ((sr - lr) * 0.5, (si - li) * 0.5);
            p_in[k] = a * a + b * b;
            let (a, b) = ((sr - li) * 0.5, (si + lr) * 0.5);
            p_qp[k] = a * a + b * b;
            let (a, b) = ((sr + li) * 0.5, (si - lr) * 0.5);
            p_qn[k] = a * a + b * b;
        }
        self.pd_ip.detect_power_block(&mut p_ip, rate);
        self.pd_in.detect_power_block(&mut p_in, rate);
        self.pd_qp.detect_power_block(&mut p_qp, rate);
        self.pd_qn.detect_power_block(&mut p_qn, rate);
        for (x, y) in p_ip.iter_mut().zip(&p_in) {
            *x -= y;
        }
        for (x, y) in p_qp.iter_mut().zip(&p_qn) {
            *x -= y;
        }
        (
            AnalogWaveform::new(p_ip, rate),
            AnalogWaveform::new(p_qp, rate),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    const RATE: f64 = 32e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn iq_modulator_writes_both_quadratures() {
        let mut iq = IqModulator::ideal();
        let carrier = OpticalField::cw(4, 1e-3, RATE, WL);
        let amps = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.7, -0.7)];
        let di = AnalogWaveform::new(
            amps.iter()
                .map(|&(i, _)| iq.drive_for_amplitude(i))
                .collect(),
            RATE,
        );
        let dq = AnalogWaveform::new(
            amps.iter()
                .map(|&(_, q)| iq.drive_for_amplitude(q))
                .collect(),
            RATE,
        );
        let out = iq.modulate(&carrier, &di, &dq);
        let e0 = 1e-3f64.sqrt() / 2.0;
        for (k, &(i, q)) in amps.iter().enumerate() {
            let s = out.samples[k];
            assert!((s.re - i * e0).abs() < 1e-9, "sample {k} re {}", s.re);
            assert!((s.im - q * e0).abs() < 1e-9, "sample {k} im {}", s.im);
        }
    }

    #[test]
    fn coherent_detection_recovers_phase() {
        // Direct detection cannot distinguish ±E; coherent detection can.
        let mut rx = CoherentReceiver::ideal();
        let amp = 1e-3f64.sqrt();
        let field = OpticalField {
            samples: vec![
                Complex::new(amp, 0.0),
                Complex::new(-amp, 0.0),
                Complex::new(0.0, amp),
                Complex::new(0.0, -amp),
            ],
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let (i, q) = rx.detect(&field);
        assert!(i.samples[0] > 0.0 && i.samples[1] < 0.0, "I signs");
        assert!((i.samples[0] + i.samples[1]).abs() < 1e-12, "balanced");
        assert!(q.samples[2] > 0.0 && q.samples[3] < 0.0, "Q signs");
        // I channel silent for pure-Q symbols and vice versa.
        assert!(i.samples[2].abs() < 1e-12);
        assert!(q.samples[0].abs() < 1e-12);
    }

    #[test]
    fn coherent_gain_scales_with_lo_power() {
        // The balanced output ∝ √(P_sig·P_lo): a stronger LO amplifies a
        // weak signal above the thermal floor — coherent sensitivity.
        let weak = OpticalField::cw(1, 1e-9, RATE, WL); // -60 dBm
        let mut rng = SimRng::seed_from_u64(1);
        let mut cfg = CoherentRxConfig::ideal();
        cfg.lo.power_dbm = 0.0;
        let mut rx_low = CoherentReceiver::new(cfg.clone(), &mut rng);
        cfg.lo.power_dbm = 13.0;
        let mut rx_high = CoherentReceiver::new(cfg, &mut rng);
        let (i_low, _) = rx_low.detect(&weak);
        let (i_high, _) = rx_high.detect(&weak);
        let gain = i_high.samples[0] / i_low.samples[0];
        // 13 dB more LO power → √(20×) ≈ 4.5× more photocurrent.
        assert!((gain - 20f64.sqrt()).abs() < 0.1, "gain {gain}");
    }

    #[test]
    fn round_trip_iq_to_coherent() {
        let mut iq = IqModulator::ideal();
        let mut rx = CoherentReceiver::ideal();
        let carrier = OpticalField::cw(8, 1e-3, RATE, WL);
        let symbols: Vec<(f64, f64)> = (0..8)
            .map(|k| {
                let a = 0.7;
                match k % 4 {
                    0 => (a, a),
                    1 => (-a, a),
                    2 => (-a, -a),
                    _ => (a, -a),
                }
            })
            .collect();
        let di = AnalogWaveform::new(
            symbols
                .iter()
                .map(|&(i, _)| iq.drive_for_amplitude(i))
                .collect(),
            RATE,
        );
        let dq = AnalogWaveform::new(
            symbols
                .iter()
                .map(|&(_, q)| iq.drive_for_amplitude(q))
                .collect(),
            RATE,
        );
        let field = iq.modulate(&carrier, &di, &dq);
        let (i, q) = rx.detect(&field);
        for (k, &(si, sq)) in symbols.iter().enumerate() {
            assert_eq!(i.samples[k] > 0.0, si > 0.0, "I sign at {k}");
            assert_eq!(q.samples[k] > 0.0, sq > 0.0, "Q sign at {k}");
        }
    }

    #[test]
    #[should_panic(expected = "null-biased")]
    fn iq_rejects_quadrature_bias() {
        IqModulator::new(MzmConfig {
            bias: crate::modulator::BiasPoint::Quadrature,
            ..MzmConfig::ideal()
        });
    }

    #[test]
    fn noiseless_detect_block_matches_detect_bit_exactly() {
        let amp = 1e-3f64.sqrt();
        let field = OpticalField {
            samples: (0..64)
                .map(|k| {
                    let th = k as f64 * 0.37;
                    Complex::new(amp * th.cos(), amp * th.sin())
                })
                .collect(),
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let mut rx_scalar = CoherentReceiver::ideal();
        let mut rx_block = CoherentReceiver::ideal();
        let (i_s, q_s) = rx_scalar.detect(&field);
        let block = crate::simd::FieldBlock::from_field(&field);
        let (i_b, q_b) = rx_block.detect_block(&block);
        for (a, b) in i_s.samples.iter().zip(&i_b.samples) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in q_s.samples.iter().zip(&q_b.samples) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn noisy_detect_block_stays_balanced() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut rx = CoherentReceiver::new(CoherentRxConfig::realistic(), &mut rng);
        // A dark signal through a balanced receiver: both quadratures must
        // average to ~0 (dark + noise cancels in the pair difference).
        let block = crate::simd::FieldBlock::dark(8192, RATE, WL);
        let (i, q) = rx.detect_block(&block);
        let mi = i.samples.iter().sum::<f64>() / i.samples.len() as f64;
        let mq = q.samples.iter().sum::<f64>() / q.samples.len() as f64;
        assert!(mi.abs() < 1e-6, "I mean {mi}");
        assert!(mq.abs() < 1e-6, "Q mean {mq}");
    }
}
