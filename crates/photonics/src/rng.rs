//! Deterministic randomness for the whole simulation.
//!
//! Every stochastic process in the substrate (shot noise, thermal noise,
//! RIN, ASE, traffic arrivals, workload synthesis) draws from a [`SimRng`]
//! seeded by the experiment harness. Two runs with the same seed produce
//! bit-identical results, which the replay tests in `tests/` rely on.

/// A seeded random-number generator with the Gaussian sampler the noise
/// models need. The generator is an inline xoshiro256** (public-domain
/// algorithm by Blackman & Vigna) seeded through SplitMix64, so the whole
/// workspace builds with no external RNG crate and the stream is stable
/// across toolchains — the replay tests pin exact output bytes.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, as the
        // xoshiro authors recommend (never yields the all-zero state).
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derive an independent child generator for a named subsystem.
    ///
    /// Deriving (rather than sharing) keeps subsystems' noise streams
    /// independent of each other's sample counts: adding a device to one
    /// path does not perturb another path's noise.
    pub fn derive(&mut self, label: &str) -> SimRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed ^= self.next_u64();
        SimRng::seed_from_u64(seed)
    }

    /// Uniform sample in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's widening-multiply
    /// reduction (unbiased to ~2^-64, deterministic). Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Raw 64-bit sample (xoshiro256** output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Standard normal sample via Box–Muller (no `rand_distr` offline).
    pub fn standard_normal(&mut self) -> f64 {
        // Reject u1 == 0 so ln() stays finite.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (events per unit time).
    /// Used by Poisson traffic generators. Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        -u.ln() / rate
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.derive("shot");
        let mut c2 = parent2.derive("shot");
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut c3 = parent3.derive("thermal");
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut c4 = parent4.derive("shot");
        assert_ne!(c3.next_u64(), c4.next_u64());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(5);
        let rate = 4.0;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not UB.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
