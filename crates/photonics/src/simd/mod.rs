//! Vectorized (struct-of-arrays) photonics kernels.
//!
//! The scalar device models walk one `Complex` sample at a time and pay
//! for physics nobody downstream observes: the P1 dot-product chain is
//! *power-domain end to end* (MZM transmission is a real scale, the
//! photodetector is square-law), yet the scalar path synthesizes phase
//! walks, discarded DAC waveforms, and per-stage `OpticalField` clones
//! for every sample. This module holds the data-parallel counterparts:
//!
//! - [`FieldBlock`] — struct-of-arrays optical field buffers (separate
//!   re/im lanes) that convert losslessly to/from
//!   [`OpticalField`](crate::signal::OpticalField);
//! - [`gauss`] — a 256-layer ziggurat Gaussian sampler over [`SimRng`]
//!   (several times cheaper per draw than the Box–Muller path in
//!   [`SimRng::standard_normal`]), used by the fused block kernels;
//! - [`KernelBackend`] — the selection contract between the scalar
//!   reference implementations and the vectorized kernels.
//!
//! # Backend contract (DESIGN.md §12)
//!
//! `Scalar` is the reference implementation and the default everywhere:
//! its RNG draw sequence and arithmetic are pinned by the golden-replay
//! fixtures and must never change. `Vectorized` computes the *same
//! physics* — identical deterministic-per-seed noise distributions,
//! identical energy accounting — but draws its noise from a different
//! (still seeded, still replay-stable) stream and fuses transfer
//! functions, so its outputs agree with the scalar path exactly in
//! noiseless configs (to converter quantization) and statistically in
//! noisy ones. The differential suite in `tests/kernels.rs` enforces
//! both bounds forever.
//!
//! [`SimRng`]: crate::SimRng
//! [`SimRng::standard_normal`]: crate::SimRng::standard_normal

pub mod field;
pub mod gauss;

pub use field::FieldBlock;

/// Which kernel implementation a photonic unit runs.
///
/// The scalar path is the bit-stable reference: every golden fixture is
/// pinned against it. The vectorized path is opt-in, deterministic per
/// seed, and differentially tested against the scalar path (see the
/// module docs for the exact equivalence contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// Per-sample reference implementation; byte-stable RNG streams.
    #[default]
    Scalar,
    /// Struct-of-arrays fused kernels; same physics, own noise stream.
    Vectorized,
}

// Hand-rolled serde impls (not derived) so that a config document
// written before the backend existed deserializes as `Scalar`: the
// `missing()` hook is what gives the field `#[serde(default)]`
// semantics under the vendored value-based serde.
impl serde::Serialize for KernelBackend {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(String::from(match self {
            KernelBackend::Scalar => "Scalar",
            KernelBackend::Vectorized => "Vectorized",
        }))
    }
}

impl serde::Deserialize for KernelBackend {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s == "Scalar" => Ok(KernelBackend::Scalar),
            serde::Value::Str(s) if s == "Vectorized" => Ok(KernelBackend::Vectorized),
            _ => Err(serde::Error::expected("a KernelBackend variant name")),
        }
    }

    fn missing() -> Result<Self, serde::Error> {
        Ok(KernelBackend::Scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_round_trips_and_defaults_to_scalar_when_missing() {
        for b in [KernelBackend::Scalar, KernelBackend::Vectorized] {
            let v = serde::Serialize::to_value(&b);
            let back: KernelBackend = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(b, back);
        }
        let missing: KernelBackend = <KernelBackend as serde::Deserialize>::missing().unwrap();
        assert_eq!(missing, KernelBackend::Scalar);
    }
}
