//! Ziggurat sampler for the standard normal distribution.
//!
//! The scalar device models draw Gaussians through
//! [`SimRng::standard_normal`] (Box–Muller: one `ln`, one `sqrt`, one
//! `cos` per draw) — fine at one draw per device event, far too slow at
//! two draws per sample in the fused block kernels. This is the classic
//! 256-layer ziggurat (Marsaglia & Tsang): one `u64` from the generator
//! covers layer index, sign, and a 53-bit uniform, and ~98.8% of draws
//! finish with a table lookup and one compare. Wedge and tail cases fall
//! back to exact rejection sampling, so the produced distribution is the
//! standard normal, not an approximation.
//!
//! Determinism: the sampler consumes a *variable* number of generator
//! words per draw, but the count depends only on the generator's output
//! sequence — replays are byte-stable per seed. The stream differs from
//! Box–Muller's, which is why the vectorized kernels that use this
//! sampler are a distinct [`KernelBackend`](super::KernelBackend) rather
//! than a drop-in swap.
//!
//! [`SimRng::standard_normal`]: crate::SimRng::standard_normal

use crate::rng::SimRng;
use std::sync::OnceLock;

/// Right edge of the topmost ziggurat layer (the tail split point).
const R: f64 = 3.654_152_885_361_009;

/// Number of layers.
const LAYERS: usize = 256;

/// Precomputed layer tables: `x[i]` is the right edge of layer `i`
/// (descending, `x[1] == R`, `x[256] == 0`), `f[i] = exp(-x[i]²/2)`.
struct Tables {
    x: [f64; LAYERS + 1],
    f: [f64; LAYERS + 1],
}

fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Walk the layer recursion for candidate strip area `v`, returning the
/// pdf height reached above the topmost strip. The correct `v` makes
/// that exactly 1 (the peak of the unnormalized pdf); the height is
/// monotone increasing in `v`, so it bisects cleanly.
fn final_height(v: f64) -> f64 {
    let mut x = R;
    let mut y = pdf(R);
    for i in 1..LAYERS {
        y += v / x;
        if i < LAYERS - 1 {
            if y >= 1.0 {
                return 2.0; // overshot before the last layer: v too large
            }
            x = (-2.0 * y.ln()).sqrt();
        }
    }
    y
}

fn build_tables() -> Tables {
    // Solve for the common strip area V given R: 60 bisection steps pin
    // it to the last ulp. (Runs once per process; pure float ops, so the
    // tables are identical on every build and every replay.)
    let (mut lo, mut hi) = (0.0045_f64, 0.0055_f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if final_height(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let v = 0.5 * (lo + hi);

    let mut x = [0.0_f64; LAYERS + 1];
    let mut f = [0.0_f64; LAYERS + 1];
    // Layer 0 is the base strip: rectangle [0, R]×[0, f(R)] plus the
    // tail beyond R, total area V, represented as a virtual rectangle of
    // width V/f(R).
    x[0] = v / pdf(R);
    x[1] = R;
    let mut y = pdf(R);
    for i in 1..LAYERS {
        y += v / x[i];
        x[i + 1] = if i == LAYERS - 1 {
            0.0
        } else {
            (-2.0 * y.min(1.0).ln()).max(0.0).sqrt()
        };
    }
    for i in 0..=LAYERS {
        f[i] = pdf(x[i]);
    }
    Tables { x, f }
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Uniform in (0, 1] — rejects the exact-zero output so `ln` is finite.
fn uniform_positive(rng: &mut SimRng) -> f64 {
    loop {
        let u = rng.uniform();
        if u > 0.0 {
            return u;
        }
    }
}

/// One standard-normal draw via the ziggurat.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let t = tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize; // 8 bits: layer
        let sign = if bits & 0x100 != 0 { -1.0 } else { 1.0 }; // 1 bit: sign
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // 53 bits: position
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            // Entirely inside the layer's inscribed rectangle.
            return sign * x;
        }
        if i == 0 {
            // Base strip, beyond R: exact Marsaglia tail sample.
            loop {
                let xt = -uniform_positive(rng).ln() / R;
                let yt = -uniform_positive(rng).ln();
                if 2.0 * yt > xt * xt {
                    return sign * (R + xt);
                }
            }
        }
        // Wedge: uniform height between the layer's bounding pdf values.
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.uniform() < pdf(x) {
            return sign * x;
        }
    }
}

/// Fill `out` with standard-normal draws.
pub fn fill_standard_normal(rng: &mut SimRng, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_close_the_ziggurat() {
        let t = tables();
        assert_eq!(t.x[1], R);
        assert_eq!(t.x[LAYERS], 0.0);
        assert!((t.f[LAYERS] - 1.0).abs() < 1e-15, "peak {}", t.f[LAYERS]);
        // Strictly descending edges, ascending heights.
        for i in 1..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "x not descending at {i}");
            assert!(t.f[i] < t.f[i + 1], "f not ascending at {i}");
        }
        // Every rectangle layer has (nearly) the same area as the base.
        let base = t.x[0] * t.f[1];
        for i in 1..LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - base).abs() / base < 1e-9, "layer {i} area {area}");
        }
    }

    #[test]
    fn moments_match_the_standard_normal() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 400_000;
        let (mut sum, mut sum2, mut sum4) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sum2 += z * z;
            sum4 += z * z * z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let kurt = sum4 / n as f64 / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.01, "var {var}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn tail_probabilities_are_right() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 400_000;
        let (mut beyond_2, mut beyond_r) = (0u32, 0u32);
        for _ in 0..n {
            let z = standard_normal(&mut rng).abs();
            if z > 2.0 {
                beyond_2 += 1;
            }
            if z > R {
                beyond_r += 1;
            }
        }
        // P(|Z| > 2) = 0.04550; P(|Z| > 3.654) = 2.58e-4.
        let p2 = beyond_2 as f64 / n as f64;
        assert!((0.043..0.048).contains(&p2), "P(|Z|>2) = {p2}");
        assert!(beyond_r > 0, "tail beyond R never exercised");
        let pr = beyond_r as f64 / n as f64;
        assert!((1e-4..6e-4).contains(&pr), "P(|Z|>R) = {pr}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let mut xs = [0.0; 257];
        let mut ys = [0.0; 257];
        fill_standard_normal(&mut a, &mut xs);
        fill_standard_normal(&mut b, &mut ys);
        assert_eq!(xs.map(f64::to_bits), ys.map(f64::to_bits));
        // And a different seed gives a different stream.
        let mut c = SimRng::seed_from_u64(10);
        let mut zs = [0.0; 257];
        fill_standard_normal(&mut c, &mut zs);
        assert_ne!(xs.map(f64::to_bits), zs.map(f64::to_bits));
    }
}
