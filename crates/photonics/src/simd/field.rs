//! Struct-of-arrays optical field buffers.
//!
//! [`OpticalField`] stores an array of `Complex` structs — natural for
//! per-sample device walks, hostile to data-parallel loops (every power
//! computation strides over interleaved re/im pairs, and fused pipelines
//! end up cloning whole fields per stage). [`FieldBlock`] is the same
//! sample block laid out as two contiguous `f64` lanes. Conversion is
//! lossless in both directions (bit-exact per component, including
//! denormals, signed zeros, and infinities), which the property tests in
//! `tests/kernels.rs` pin.

use crate::complex::Complex;
use crate::signal::OpticalField;

/// A block of optical field samples in struct-of-arrays layout:
/// separate real and imaginary lanes plus the block metadata carried by
/// [`OpticalField`].
#[derive(Debug, Clone, PartialEq)]
pub struct FieldBlock {
    /// Real lane of the envelope samples.
    pub re: Vec<f64>,
    /// Imaginary lane of the envelope samples.
    pub im: Vec<f64>,
    /// Sample rate in Hz (symbol rate of the block).
    pub sample_rate_hz: f64,
    /// Carrier wavelength in meters.
    pub wavelength_m: f64,
}

impl FieldBlock {
    /// An all-dark (zero-field) block.
    pub fn dark(n: usize, sample_rate_hz: f64, wavelength_m: f64) -> Self {
        FieldBlock {
            re: vec![0.0; n],
            im: vec![0.0; n],
            sample_rate_hz,
            wavelength_m,
        }
    }

    /// Convert from the array-of-structs representation. Lossless:
    /// every component is copied bit-for-bit.
    pub fn from_field(field: &OpticalField) -> Self {
        FieldBlock {
            re: field.samples.iter().map(|s| s.re).collect(),
            im: field.samples.iter().map(|s| s.im).collect(),
            sample_rate_hz: field.sample_rate_hz,
            wavelength_m: field.wavelength_m,
        }
    }

    /// Convert back to the array-of-structs representation. Lossless.
    pub fn to_field(&self) -> OpticalField {
        OpticalField {
            samples: self
                .re
                .iter()
                .zip(&self.im)
                .map(|(&re, &im)| Complex::new(re, im))
                .collect(),
            sample_rate_hz: self.sample_rate_hz,
            wavelength_m: self.wavelength_m,
        }
    }

    /// Number of samples in the block.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Whether the block holds no samples.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Instantaneous power `|e|²` of sample `k`, watts.
    pub fn power_at(&self, k: usize) -> f64 {
        self.re[k] * self.re[k] + self.im[k] * self.im[k]
    }

    /// Fill `out` with the per-sample instantaneous powers.
    pub fn powers_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.re
                .iter()
                .zip(&self.im)
                .map(|(&re, &im)| re * re + im * im),
        );
    }

    /// Mean optical power over the block, watts (0 for an empty block).
    pub fn mean_power_w(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| re * re + im * im)
            .sum();
        total / self.len() as f64
    }

    /// Scale every sample's field amplitude by `s` (power by `s²`).
    pub fn scale_all(&mut self, s: f64) {
        for v in &mut self.re {
            *v *= s;
        }
        for v in &mut self.im {
            *v *= s;
        }
    }

    /// Duration of the block in seconds.
    pub fn duration_s(&self) -> f64 {
        if self.sample_rate_hz <= 0.0 {
            return 0.0;
        }
        self.len() as f64 / self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    const RATE: f64 = 32e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn round_trip_is_bit_exact() {
        // Include the awkward values: denormals, ±0, infinities.
        let samples = vec![
            Complex::new(1.5e-3, -2.5e-4),
            Complex::new(1e-310, -1e-310), // denormal
            Complex::new(0.0, -0.0),
            Complex::new(f64::INFINITY, f64::MIN_POSITIVE),
        ];
        let field = OpticalField {
            samples,
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let block = FieldBlock::from_field(&field);
        let back = block.to_field();
        assert_eq!(field.samples.len(), back.samples.len());
        for (a, b) in field.samples.iter().zip(&back.samples) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(field.sample_rate_hz, back.sample_rate_hz);
        assert_eq!(field.wavelength_m, back.wavelength_m);
    }

    #[test]
    fn power_matches_complex_norm_sqr() {
        let field = OpticalField::cw(16, 1e-3, RATE, WL);
        let block = FieldBlock::from_field(&field);
        for k in 0..block.len() {
            assert_eq!(
                block.power_at(k).to_bits(),
                field.samples[k].norm_sqr().to_bits()
            );
        }
        assert!((block.mean_power_w() - field.mean_power_w()).abs() < 1e-18);
    }

    #[test]
    fn scale_all_scales_power_quadratically() {
        let mut block = FieldBlock::from_field(&OpticalField::cw(4, 1e-3, RATE, WL));
        let before = block.mean_power_w();
        block.scale_all(0.5);
        assert!((block.mean_power_w() - 0.25 * before).abs() < 1e-18);
    }

    #[test]
    fn dark_block_is_dark() {
        let block = FieldBlock::dark(8, RATE, WL);
        assert_eq!(block.len(), 8);
        assert!(!block.is_empty());
        assert_eq!(block.mean_power_w(), 0.0);
        assert!((block.duration_s() - 8.0 / RATE).abs() < 1e-24);
    }
}
