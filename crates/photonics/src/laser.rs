//! Continuous-wave laser source.
//!
//! The transponder's light source (Fig. 3/4 "Laser" block): a CW laser
//! with configurable output power, wavelength, relative intensity noise
//! (RIN), and phase noise from a Lorentzian linewidth.

use crate::noise;
use crate::rng::SimRng;
use crate::signal::OpticalField;
use crate::units;

/// Configuration of a CW laser.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LaserConfig {
    /// Output power in dBm. Typical integrated DFB: 10–16 dBm.
    pub power_dbm: f64,
    /// Emission wavelength in meters.
    pub wavelength_m: f64,
    /// Relative intensity noise in dB/Hz (e.g. −150).
    pub rin_db_hz: f64,
    /// Lorentzian linewidth in Hz (phase-noise strength, e.g. 100 kHz).
    pub linewidth_hz: f64,
    /// Electrical wall-plug power draw in watts (for energy accounting).
    pub wall_plug_w: f64,
}

impl Default for LaserConfig {
    fn default() -> Self {
        LaserConfig {
            power_dbm: 13.0,
            wavelength_m: units::C_BAND_WAVELENGTH_M,
            rin_db_hz: -150.0,
            linewidth_hz: 100e3,
            wall_plug_w: 1.5,
        }
    }
}

/// A CW laser emitting blocks of optical field samples.
#[derive(Debug, Clone)]
pub struct Laser {
    pub config: LaserConfig,
    rng: SimRng,
    /// Running phase of the random-walk phase noise, carried across blocks.
    phase: f64,
}

impl Laser {
    pub fn new(config: LaserConfig, rng: SimRng) -> Self {
        Laser {
            config,
            rng,
            phase: 0.0,
        }
    }

    /// Ideal (noiseless) laser — useful for calibration and unit tests.
    pub fn ideal(power_dbm: f64) -> Self {
        Laser::new(
            LaserConfig {
                power_dbm,
                rin_db_hz: f64::NEG_INFINITY,
                linewidth_hz: 0.0,
                ..LaserConfig::default()
            },
            SimRng::seed_from_u64(0),
        )
    }

    /// Mean emitted power in watts.
    pub fn power_w(&self) -> f64 {
        units::dbm_to_watts(self.config.power_dbm)
    }

    /// Emit `n` samples at `sample_rate_hz`.
    ///
    /// RIN perturbs instantaneous power; the Lorentzian linewidth drives a
    /// Wiener phase walk with per-sample variance `2πΔν·dt`.
    pub fn emit(&mut self, n: usize, sample_rate_hz: f64) -> OpticalField {
        let p0 = self.power_w();
        let mut field = OpticalField::dark(n, sample_rate_hz, self.config.wavelength_m);
        let rin_sigma = if self.config.rin_db_hz.is_finite() {
            noise::rin_sigma_w(p0, self.config.rin_db_hz, sample_rate_hz / 2.0)
        } else {
            0.0
        };
        let phase_sigma = if self.config.linewidth_hz > 0.0 && sample_rate_hz > 0.0 {
            (std::f64::consts::TAU * self.config.linewidth_hz / sample_rate_hz).sqrt()
        } else {
            0.0
        };
        for s in &mut field.samples {
            let p = if rin_sigma > 0.0 {
                (p0 + self.rng.normal(0.0, rin_sigma)).max(0.0)
            } else {
                p0
            };
            if phase_sigma > 0.0 {
                self.phase += self.rng.normal(0.0, phase_sigma);
            }
            *s = crate::Complex::from_polar(p.sqrt(), self.phase);
        }
        field
    }

    /// Vectorized *power-domain* emission: fill `out` with `n`
    /// instantaneous power samples (W), RIN applied.
    ///
    /// The P1 chain is power-domain end to end (real MZM transmissions,
    /// square-law detection), so the phase walk the scalar
    /// [`Laser::emit`] synthesizes is provably invisible there:
    /// `|√p·e^{iφ}|² = p` to the ulp. This path skips the walk entirely
    /// — no phase normals are drawn and `self.phase` is left untouched —
    /// and draws RIN through the ziggurat sampler, so its noise stream
    /// differs from `emit`'s while staying deterministic per seed
    /// (DESIGN.md §12). Do **not** use it where phase matters (coherent
    /// detection, interference); use [`Laser::emit_block`] there.
    pub fn emit_power_block(&mut self, n: usize, sample_rate_hz: f64, out: &mut Vec<f64>) {
        let p0 = self.power_w();
        let rin_sigma = if self.config.rin_db_hz.is_finite() {
            noise::rin_sigma_w(p0, self.config.rin_db_hz, sample_rate_hz / 2.0)
        } else {
            0.0
        };
        out.clear();
        out.resize(n, p0);
        if rin_sigma > 0.0 {
            for v in out.iter_mut() {
                *v = (p0 + rin_sigma * crate::simd::gauss::standard_normal(&mut self.rng)).max(0.0);
            }
        }
    }

    /// Emit `n` samples straight into a struct-of-arrays block. Full
    /// physics — RIN *and* the phase walk — with draw-for-draw the same
    /// RNG consumption as [`Laser::emit`], so the two are bit-identical
    /// per seed; only the output layout differs.
    pub fn emit_block(&mut self, n: usize, sample_rate_hz: f64) -> crate::simd::FieldBlock {
        let field = self.emit(n, sample_rate_hz);
        crate::simd::FieldBlock::from_field(&field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_laser_emits_constant_power() {
        let mut l = Laser::ideal(10.0);
        let f = l.emit(256, 10e9);
        let p = units::dbm_to_watts(10.0);
        for s in &f.samples {
            assert!((s.norm_sqr() - p).abs() < 1e-15);
            assert_eq!(s.arg(), 0.0);
        }
    }

    #[test]
    fn rin_perturbs_power_with_correct_scale() {
        let cfg = LaserConfig {
            power_dbm: 10.0,
            rin_db_hz: -140.0,
            linewidth_hz: 0.0,
            ..LaserConfig::default()
        };
        let mut l = Laser::new(cfg, SimRng::seed_from_u64(1));
        let f = l.emit(20_000, 10e9);
        let p0 = units::dbm_to_watts(10.0);
        let mean = f.mean_power_w();
        assert!((mean - p0).abs() / p0 < 0.01, "mean {mean}");
        let var = f
            .samples
            .iter()
            .map(|s| (s.norm_sqr() - mean).powi(2))
            .sum::<f64>()
            / f.len() as f64;
        let expect = noise::rin_sigma_w(p0, -140.0, 5e9);
        assert!(
            (var.sqrt() - expect).abs() / expect < 0.05,
            "sigma {} vs {expect}",
            var.sqrt()
        );
    }

    #[test]
    fn linewidth_produces_phase_walk() {
        let cfg = LaserConfig {
            linewidth_hz: 1e6,
            rin_db_hz: f64::NEG_INFINITY,
            ..LaserConfig::default()
        };
        let mut l = Laser::new(cfg, SimRng::seed_from_u64(2));
        let f = l.emit(4096, 10e9);
        // Phase must actually move...
        let first = f.samples[0].arg();
        let last = f.samples[4095].arg();
        assert!((first - last).abs() > 1e-6);
        // ...without disturbing power.
        let p0 = units::dbm_to_watts(13.0);
        assert!((f.mean_power_w() - p0).abs() / p0 < 1e-9);
    }

    #[test]
    fn phase_is_continuous_across_blocks() {
        let cfg = LaserConfig {
            linewidth_hz: 1e6,
            rin_db_hz: f64::NEG_INFINITY,
            ..LaserConfig::default()
        };
        let mut l = Laser::new(cfg.clone(), SimRng::seed_from_u64(3));
        let a = l.emit(10, 10e9);
        let b = l.emit(1, 10e9);
        // The next block starts near where the previous ended (one step of
        // the walk), not back at zero.
        let step = (b.samples[0].arg() - a.samples[9].arg()).abs();
        assert!(step < 0.1, "phase jumped by {step}");
    }

    #[test]
    fn emission_is_deterministic_per_seed() {
        let cfg = LaserConfig::default();
        let mut l1 = Laser::new(cfg.clone(), SimRng::seed_from_u64(7));
        let mut l2 = Laser::new(cfg, SimRng::seed_from_u64(7));
        assert_eq!(l1.emit(64, 10e9).samples, l2.emit(64, 10e9).samples);
    }

    #[test]
    fn power_block_matches_emit_distribution() {
        let cfg = LaserConfig {
            power_dbm: 10.0,
            rin_db_hz: -140.0,
            linewidth_hz: 0.0,
            ..LaserConfig::default()
        };
        let mut l = Laser::new(cfg, SimRng::seed_from_u64(11));
        let mut powers = Vec::new();
        l.emit_power_block(40_000, 10e9, &mut powers);
        let p0 = units::dbm_to_watts(10.0);
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        assert!((mean - p0).abs() / p0 < 0.01, "mean {mean}");
        let var = powers.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / powers.len() as f64;
        let expect = noise::rin_sigma_w(p0, -140.0, 5e9);
        assert!(
            (var.sqrt() - expect).abs() / expect < 0.05,
            "sigma {} vs {expect}",
            var.sqrt()
        );
    }

    #[test]
    fn noiseless_power_block_is_exact_and_skips_the_rng() {
        let mut l = Laser::ideal(10.0);
        let mut before = l.rng.clone();
        let mut powers = Vec::new();
        l.emit_power_block(64, 10e9, &mut powers);
        let p0 = units::dbm_to_watts(10.0);
        assert!(powers.iter().all(|p| p.to_bits() == p0.to_bits()));
        // No RIN, no phase walk: the stream must be untouched.
        assert_eq!(l.rng.next_u64(), before.next_u64());
    }

    #[test]
    fn power_block_is_deterministic_per_seed() {
        let cfg = LaserConfig::default();
        let mut l1 = Laser::new(cfg.clone(), SimRng::seed_from_u64(9));
        let mut l2 = Laser::new(cfg, SimRng::seed_from_u64(9));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        l1.emit_power_block(128, 10e9, &mut a);
        l2.emit_power_block(128, 10e9, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn emit_block_matches_emit_bit_exactly() {
        let cfg = LaserConfig::default();
        let mut l1 = Laser::new(cfg.clone(), SimRng::seed_from_u64(5));
        let mut l2 = Laser::new(cfg, SimRng::seed_from_u64(5));
        let field = l1.emit(64, 10e9);
        let block = l2.emit_block(64, 10e9);
        for (s, (&re, &im)) in field.samples.iter().zip(block.re.iter().zip(&block.im)) {
            assert_eq!(s.re.to_bits(), re.to_bits());
            assert_eq!(s.im.to_bits(), im.to_bits());
        }
    }
}
