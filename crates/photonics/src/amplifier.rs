//! Erbium-doped fiber amplifier (EDFA).
//!
//! WAN spans are amplified every ~80 km; amplification matters to on-fiber
//! computing because each EDFA adds ASE noise that eats into the analog
//! precision budget of the photonic engine downstream (experiment E2a
//! sweeps span count for exactly this reason).

use crate::noise;
use crate::rng::SimRng;
use crate::signal::OpticalField;
use crate::units;

/// Configuration of an EDFA.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EdfaConfig {
    /// Gain in dB.
    pub gain_db: f64,
    /// Noise figure in dB (typical 4–6).
    pub noise_figure_db: f64,
    /// Output saturation power in dBm.
    pub saturation_dbm: f64,
    /// Electrical power draw, W.
    pub wall_plug_w: f64,
}

impl Default for EdfaConfig {
    fn default() -> Self {
        EdfaConfig {
            gain_db: 16.0,
            noise_figure_db: 5.0,
            saturation_dbm: 20.0,
            wall_plug_w: 8.0,
        }
    }
}

/// An EDFA adding gain and ASE noise.
#[derive(Debug, Clone)]
pub struct Edfa {
    pub config: EdfaConfig,
    rng: SimRng,
    /// Optional shared memo of the saturation-gain curve (input power →
    /// effective linear gain; see [`crate::tfcache`]).
    gain_cache: Option<std::sync::Arc<ofpc_par::TransferCache>>,
}

impl Edfa {
    pub fn new(config: EdfaConfig, rng: SimRng) -> Self {
        assert!(config.gain_db >= 0.0, "EDFA gain must be non-negative");
        Edfa {
            config,
            rng,
            gain_cache: None,
        }
    }

    /// Attach a shared quantized-key cache of the saturation-gain curve.
    /// Build it from the same [`EdfaConfig`] with
    /// [`crate::tfcache::edfa_gain_cache`].
    pub fn set_gain_cache(&mut self, cache: std::sync::Arc<ofpc_par::TransferCache>) {
        self.gain_cache = Some(cache);
    }

    /// Ideal noiseless amplifier (for algebra tests).
    pub fn ideal(gain_db: f64) -> Self {
        Edfa::new(
            EdfaConfig {
                gain_db,
                noise_figure_db: 3.0, // quantum limit; noise disabled below
                saturation_dbm: f64::INFINITY,
                wall_plug_w: 0.0,
            },
            SimRng::seed_from_u64(0),
        )
    }

    /// Spontaneous-emission factor derived from the noise figure:
    /// `NF ≈ 2·nsp/G·(G−1) ≈ 2·nsp` for large gain, so `nsp = NF/2`.
    pub fn nsp(&self) -> f64 {
        (units::db_to_linear(self.config.noise_figure_db) / 2.0).max(1.0)
    }

    /// ASE power added over the block's bandwidth, W.
    pub fn ase_power_w(&self, sample_rate_hz: f64, wavelength_m: f64) -> f64 {
        let gain = units::db_to_linear(self.config.gain_db);
        noise::ase_power_w(gain, self.nsp(), sample_rate_hz / 2.0, wavelength_m)
    }

    /// Effective linear gain for a block of mean input power `p_in`:
    /// the configured gain capped by output saturation, served from the
    /// attached [`crate::tfcache`] memo when present.
    pub fn effective_gain(&self, p_in: f64) -> f64 {
        match &self.gain_cache {
            Some(cache) => cache.eval(p_in),
            None => {
                let gain_lin = units::db_to_linear(self.config.gain_db);
                let p_sat = if self.config.saturation_dbm.is_finite() {
                    units::dbm_to_watts(self.config.saturation_dbm)
                } else {
                    f64::INFINITY
                };
                if p_in * gain_lin > p_sat && p_in > 0.0 {
                    p_sat / p_in
                } else {
                    gain_lin
                }
            }
        }
    }

    /// Amplify a field block: gain (with output saturation) plus complex
    /// Gaussian ASE noise distributed over the samples.
    pub fn amplify(&mut self, input: &OpticalField) -> OpticalField {
        // Saturation: cap mean output power at the saturation level.
        let p_in = input.mean_power_w();
        let amp = self.effective_gain(p_in).sqrt();
        let ase_total = self.ase_power_w(input.sample_rate_hz, input.wavelength_m);
        // Each quadrature gets half the ASE power.
        let sigma = (ase_total / 2.0).sqrt();
        let mut out = input.clone();
        for s in &mut out.samples {
            let mut v = s.scale(amp);
            if sigma > 0.0 {
                v += crate::Complex::new(self.rng.normal(0.0, sigma), self.rng.normal(0.0, sigma));
            }
            *s = v;
        }
        out
    }

    /// Vectorized [`Edfa::amplify`] operating on a struct-of-arrays
    /// block in place: same saturation-capped gain (including the
    /// [`crate::tfcache`] seam) and the same ASE statistics, with the
    /// quadrature noise drawn through the ziggurat sampler lane by lane.
    /// Noiseless (zero-ASE) configurations are bit-identical to
    /// `amplify`; noisy ones share distributions but not streams
    /// (DESIGN.md §12).
    pub fn amplify_block(&mut self, block: &mut crate::simd::FieldBlock) {
        let p_in = block.mean_power_w();
        let amp = self.effective_gain(p_in).sqrt();
        let ase_total = self.ase_power_w(block.sample_rate_hz, block.wavelength_m);
        let sigma = (ase_total / 2.0).sqrt();
        block.scale_all(amp);
        if sigma > 0.0 {
            for v in &mut block.re {
                *v += sigma * crate::simd::gauss::standard_normal(&mut self.rng);
            }
            for v in &mut block.im {
                *v += sigma * crate::simd::gauss::standard_normal(&mut self.rng);
            }
        }
    }

    /// Output OSNR (dB) for a given input power, assuming this is the
    /// only noise source — the per-span OSNR building block of link
    /// budgets.
    pub fn output_osnr_db(
        &self,
        input_power_w: f64,
        sample_rate_hz: f64,
        wavelength_m: f64,
    ) -> f64 {
        let gain = units::db_to_linear(self.config.gain_db);
        let p_sig = input_power_w * gain;
        let p_ase = self.ase_power_w(sample_rate_hz, wavelength_m);
        noise::snr_db(p_sig, p_ase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn ideal_gain_is_exact() {
        let mut e = Edfa::ideal(10.0);
        // Quantum-limited ASE is tiny but non-zero; check gain dominates.
        let input = OpticalField::cw(1000, 1e-6, RATE, WL);
        let out = e.amplify(&input);
        assert!((out.mean_power_w() / 1e-5 - 1.0).abs() < 0.01);
    }

    #[test]
    fn saturation_caps_output() {
        let mut e = Edfa::new(
            EdfaConfig {
                gain_db: 30.0,
                saturation_dbm: 10.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(1),
        );
        let input = OpticalField::cw(100, 1e-3, RATE, WL); // 0 dBm in, 30 dB gain
        let out = e.amplify(&input);
        let p_out_dbm = out.mean_power_dbm();
        assert!(p_out_dbm < 10.5, "output {p_out_dbm} dBm");
    }

    #[test]
    fn ase_matches_formula() {
        let e = Edfa::new(EdfaConfig::default(), SimRng::seed_from_u64(2));
        let gain = units::db_to_linear(16.0);
        let expect = noise::ase_power_w(gain, e.nsp(), RATE / 2.0, WL);
        assert!((e.ase_power_w(RATE, WL) - expect).abs() < 1e-20);
        assert!(expect > 0.0);
    }

    #[test]
    fn osnr_degrades_with_noise_figure() {
        let quiet = Edfa::new(
            EdfaConfig {
                noise_figure_db: 4.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(3),
        );
        let loud = Edfa::new(
            EdfaConfig {
                noise_figure_db: 7.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(3),
        );
        let p = units::dbm_to_watts(-20.0);
        assert!(quiet.output_osnr_db(p, RATE, WL) > loud.output_osnr_db(p, RATE, WL));
    }

    #[test]
    fn cascade_accumulates_noise() {
        // A chain of gain-balanced spans: OSNR must fall monotonically.
        let mut rng = SimRng::seed_from_u64(4);
        let mut field = OpticalField::cw(5000, units::dbm_to_watts(0.0), RATE, WL);
        let clean_power = field.mean_power_w();
        let mut last_var = 0.0;
        for i in 0..5 {
            let span = crate::fiber::FiberSpan::smf(80.0);
            field = span.propagate(&field);
            let mut edfa = Edfa::new(EdfaConfig::default(), rng.derive(&format!("edfa{i}")));
            field = edfa.amplify(&field);
            let mean = field.mean_power_w();
            let var = field
                .samples
                .iter()
                .map(|s| (s.norm_sqr() - mean).powi(2))
                .sum::<f64>()
                / field.len() as f64;
            assert!(var > last_var, "variance must grow per span (span {i})");
            last_var = var;
        }
        // Power stays near launch (gain 16 dB balances 16 dB span loss).
        assert!((field.mean_power_w() / clean_power - 1.0).abs() < 0.2);
    }

    #[test]
    fn amplify_block_matches_gain_and_ase_statistics() {
        let cfg = EdfaConfig::default();
        let mut e = Edfa::new(cfg.clone(), SimRng::seed_from_u64(6));
        let input = OpticalField::cw(40_000, units::dbm_to_watts(-10.0), RATE, WL);
        let mut block = crate::simd::FieldBlock::from_field(&input);
        e.amplify_block(&mut block);
        let gain = units::db_to_linear(16.0);
        let p_expect = units::dbm_to_watts(-10.0) * gain;
        let p_out = block.mean_power_w();
        assert!((p_out / p_expect - 1.0).abs() < 0.01, "power {p_out}");
        // Per-quadrature ASE variance = ase_total / 2.
        let sigma2 = e.ase_power_w(RATE, WL) / 2.0;
        let amp_mean = block.re.iter().sum::<f64>() / block.len() as f64;
        let var = block
            .re
            .iter()
            .map(|&r| (r - amp_mean).powi(2))
            .sum::<f64>()
            / block.len() as f64;
        assert!((var / sigma2 - 1.0).abs() < 0.05, "re-lane var {var}");
    }

    #[test]
    fn effective_gain_agrees_with_and_without_cache() {
        let cfg = EdfaConfig {
            gain_db: 30.0,
            saturation_dbm: 10.0,
            ..EdfaConfig::default()
        };
        let mut cached = Edfa::new(cfg.clone(), SimRng::seed_from_u64(7));
        cached.set_gain_cache(crate::tfcache::edfa_gain_cache(&cfg, 1e-6));
        let plain = Edfa::new(cfg, SimRng::seed_from_u64(7));
        for p_in in [0.0, 1e-6, 1e-4, 1e-3, 1e-2] {
            let a = plain.effective_gain(p_in);
            let b = cached.effective_gain(p_in);
            assert!(
                (a - b).abs() / a.max(1e-12) < 1e-3,
                "p_in {p_in}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn amplify_block_is_deterministic_per_seed() {
        let input = OpticalField::cw(64, 1e-4, RATE, WL);
        let mut e1 = Edfa::new(EdfaConfig::default(), SimRng::seed_from_u64(8));
        let mut e2 = Edfa::new(EdfaConfig::default(), SimRng::seed_from_u64(8));
        let mut b1 = crate::simd::FieldBlock::from_field(&input);
        let mut b2 = crate::simd::FieldBlock::from_field(&input);
        e1.amplify_block(&mut b1);
        e2.amplify_block(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_gain() {
        Edfa::new(
            EdfaConfig {
                gain_db: -3.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(0),
        );
    }
}
