//! Erbium-doped fiber amplifier (EDFA).
//!
//! WAN spans are amplified every ~80 km; amplification matters to on-fiber
//! computing because each EDFA adds ASE noise that eats into the analog
//! precision budget of the photonic engine downstream (experiment E2a
//! sweeps span count for exactly this reason).

use crate::noise;
use crate::rng::SimRng;
use crate::signal::OpticalField;
use crate::units;

/// Configuration of an EDFA.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EdfaConfig {
    /// Gain in dB.
    pub gain_db: f64,
    /// Noise figure in dB (typical 4–6).
    pub noise_figure_db: f64,
    /// Output saturation power in dBm.
    pub saturation_dbm: f64,
    /// Electrical power draw, W.
    pub wall_plug_w: f64,
}

impl Default for EdfaConfig {
    fn default() -> Self {
        EdfaConfig {
            gain_db: 16.0,
            noise_figure_db: 5.0,
            saturation_dbm: 20.0,
            wall_plug_w: 8.0,
        }
    }
}

/// An EDFA adding gain and ASE noise.
#[derive(Debug, Clone)]
pub struct Edfa {
    pub config: EdfaConfig,
    rng: SimRng,
    /// Optional shared memo of the saturation-gain curve (input power →
    /// effective linear gain; see [`crate::tfcache`]).
    gain_cache: Option<std::sync::Arc<ofpc_par::TransferCache>>,
}

impl Edfa {
    pub fn new(config: EdfaConfig, rng: SimRng) -> Self {
        assert!(config.gain_db >= 0.0, "EDFA gain must be non-negative");
        Edfa {
            config,
            rng,
            gain_cache: None,
        }
    }

    /// Attach a shared quantized-key cache of the saturation-gain curve.
    /// Build it from the same [`EdfaConfig`] with
    /// [`crate::tfcache::edfa_gain_cache`].
    pub fn set_gain_cache(&mut self, cache: std::sync::Arc<ofpc_par::TransferCache>) {
        self.gain_cache = Some(cache);
    }

    /// Ideal noiseless amplifier (for algebra tests).
    pub fn ideal(gain_db: f64) -> Self {
        Edfa::new(
            EdfaConfig {
                gain_db,
                noise_figure_db: 3.0, // quantum limit; noise disabled below
                saturation_dbm: f64::INFINITY,
                wall_plug_w: 0.0,
            },
            SimRng::seed_from_u64(0),
        )
    }

    /// Spontaneous-emission factor derived from the noise figure:
    /// `NF ≈ 2·nsp/G·(G−1) ≈ 2·nsp` for large gain, so `nsp = NF/2`.
    pub fn nsp(&self) -> f64 {
        (units::db_to_linear(self.config.noise_figure_db) / 2.0).max(1.0)
    }

    /// ASE power added over the block's bandwidth, W.
    pub fn ase_power_w(&self, sample_rate_hz: f64, wavelength_m: f64) -> f64 {
        let gain = units::db_to_linear(self.config.gain_db);
        noise::ase_power_w(gain, self.nsp(), sample_rate_hz / 2.0, wavelength_m)
    }

    /// Amplify a field block: gain (with output saturation) plus complex
    /// Gaussian ASE noise distributed over the samples.
    pub fn amplify(&mut self, input: &OpticalField) -> OpticalField {
        let gain_lin = units::db_to_linear(self.config.gain_db);
        // Saturation: cap mean output power at the saturation level.
        let p_in = input.mean_power_w();
        let effective_gain = match &self.gain_cache {
            Some(cache) => cache.eval(p_in),
            None => {
                let p_sat = if self.config.saturation_dbm.is_finite() {
                    units::dbm_to_watts(self.config.saturation_dbm)
                } else {
                    f64::INFINITY
                };
                if p_in * gain_lin > p_sat && p_in > 0.0 {
                    p_sat / p_in
                } else {
                    gain_lin
                }
            }
        };
        let amp = effective_gain.sqrt();
        let ase_total = self.ase_power_w(input.sample_rate_hz, input.wavelength_m);
        // Each quadrature gets half the ASE power.
        let sigma = (ase_total / 2.0).sqrt();
        let mut out = input.clone();
        for s in &mut out.samples {
            let mut v = s.scale(amp);
            if sigma > 0.0 {
                v += crate::Complex::new(self.rng.normal(0.0, sigma), self.rng.normal(0.0, sigma));
            }
            *s = v;
        }
        out
    }

    /// Output OSNR (dB) for a given input power, assuming this is the
    /// only noise source — the per-span OSNR building block of link
    /// budgets.
    pub fn output_osnr_db(
        &self,
        input_power_w: f64,
        sample_rate_hz: f64,
        wavelength_m: f64,
    ) -> f64 {
        let gain = units::db_to_linear(self.config.gain_db);
        let p_sig = input_power_w * gain;
        let p_ase = self.ase_power_w(sample_rate_hz, wavelength_m);
        noise::snr_db(p_sig, p_ase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn ideal_gain_is_exact() {
        let mut e = Edfa::ideal(10.0);
        // Quantum-limited ASE is tiny but non-zero; check gain dominates.
        let input = OpticalField::cw(1000, 1e-6, RATE, WL);
        let out = e.amplify(&input);
        assert!((out.mean_power_w() / 1e-5 - 1.0).abs() < 0.01);
    }

    #[test]
    fn saturation_caps_output() {
        let mut e = Edfa::new(
            EdfaConfig {
                gain_db: 30.0,
                saturation_dbm: 10.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(1),
        );
        let input = OpticalField::cw(100, 1e-3, RATE, WL); // 0 dBm in, 30 dB gain
        let out = e.amplify(&input);
        let p_out_dbm = out.mean_power_dbm();
        assert!(p_out_dbm < 10.5, "output {p_out_dbm} dBm");
    }

    #[test]
    fn ase_matches_formula() {
        let e = Edfa::new(EdfaConfig::default(), SimRng::seed_from_u64(2));
        let gain = units::db_to_linear(16.0);
        let expect = noise::ase_power_w(gain, e.nsp(), RATE / 2.0, WL);
        assert!((e.ase_power_w(RATE, WL) - expect).abs() < 1e-20);
        assert!(expect > 0.0);
    }

    #[test]
    fn osnr_degrades_with_noise_figure() {
        let quiet = Edfa::new(
            EdfaConfig {
                noise_figure_db: 4.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(3),
        );
        let loud = Edfa::new(
            EdfaConfig {
                noise_figure_db: 7.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(3),
        );
        let p = units::dbm_to_watts(-20.0);
        assert!(quiet.output_osnr_db(p, RATE, WL) > loud.output_osnr_db(p, RATE, WL));
    }

    #[test]
    fn cascade_accumulates_noise() {
        // A chain of gain-balanced spans: OSNR must fall monotonically.
        let mut rng = SimRng::seed_from_u64(4);
        let mut field = OpticalField::cw(5000, units::dbm_to_watts(0.0), RATE, WL);
        let clean_power = field.mean_power_w();
        let mut last_var = 0.0;
        for i in 0..5 {
            let span = crate::fiber::FiberSpan::smf(80.0);
            field = span.propagate(&field);
            let mut edfa = Edfa::new(EdfaConfig::default(), rng.derive(&format!("edfa{i}")));
            field = edfa.amplify(&field);
            let mean = field.mean_power_w();
            let var = field
                .samples
                .iter()
                .map(|s| (s.norm_sqr() - mean).powi(2))
                .sum::<f64>()
                / field.len() as f64;
            assert!(var > last_var, "variance must grow per span (span {i})");
            last_var = var;
        }
        // Power stays near launch (gain 16 dB balances 16 dB span loss).
        assert!((field.mean_power_w() / clean_power - 1.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_gain() {
        Edfa::new(
            EdfaConfig {
                gain_db: -3.0,
                ..EdfaConfig::default()
            },
            SimRng::seed_from_u64(0),
        );
    }
}
