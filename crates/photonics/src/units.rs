//! Physical constants and unit conversions used across the substrate.
//!
//! All internal computation is in SI base units (watts, seconds, hertz,
//! meters, joules). Conversions to the units optical engineers actually
//! quote (dBm, dB, nm, ps) live here so they appear exactly once.

/// Planck constant, J·s.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Speed of light in vacuum, m/s.
pub const C_VACUUM: f64 = 299_792_458.0;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Room temperature used for thermal-noise calculations, K.
pub const ROOM_TEMP_K: f64 = 290.0;

/// Group-velocity factor of standard single-mode fiber (n_g ≈ 1.468),
/// i.e. light travels at `C_VACUUM / FIBER_GROUP_INDEX` inside fiber.
/// This is the 2/3·c rule of thumb used in the paper's WAN latency story.
pub const FIBER_GROUP_INDEX: f64 = 1.468;

/// Conventional C-band center wavelength, m (1550 nm).
pub const C_BAND_WAVELENGTH_M: f64 = 1550e-9;

/// Standard SMF attenuation at 1550 nm, dB/km.
pub const SMF_ATTENUATION_DB_PER_KM: f64 = 0.2;

/// Convert optical power in dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

/// Convert optical power in watts to dBm.
///
/// Returns `f64::NEG_INFINITY` for non-positive power, matching the
/// convention that "no light" is −∞ dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    if watts <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (watts / 1e-3).log10()
    }
}

/// Convert a dB ratio to a linear ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear ratio to dB.
#[inline]
pub fn linear_to_db(linear: f64) -> f64 {
    if linear <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * linear.log10()
    }
}

/// Photon energy at a given wavelength, J.
#[inline]
pub fn photon_energy(wavelength_m: f64) -> f64 {
    PLANCK * C_VACUUM / wavelength_m
}

/// Optical frequency for a given wavelength, Hz.
#[inline]
pub fn wavelength_to_frequency(wavelength_m: f64) -> f64 {
    C_VACUUM / wavelength_m
}

/// Propagation delay through `km` kilometers of standard fiber, seconds.
#[inline]
pub fn fiber_delay_s(km: f64) -> f64 {
    km * 1e3 * FIBER_GROUP_INDEX / C_VACUUM
}

/// Propagation delay through `km` kilometers of standard fiber, integer
/// picoseconds — the timestamp unit of the discrete-event simulator.
#[inline]
pub fn fiber_delay_ps(km: f64) -> u64 {
    (fiber_delay_s(km) * 1e12).round() as u64
}

/// Effective number of bits for a given signal-to-noise ratio (dB),
/// using the standard `ENOB = (SNR − 1.76) / 6.02` relation.
#[inline]
pub fn snr_db_to_enob(snr_db: f64) -> f64 {
    ((snr_db - 1.76) / 6.02).max(0.0)
}

/// SNR in dB that a quantizer with `bits` bits achieves on a full-scale
/// sinusoid: `SNR = 6.02·bits + 1.76`.
#[inline]
pub fn bits_to_snr_db(bits: f64) -> f64 {
    6.02 * bits + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn dbm_round_trip() {
        for dbm in [-30.0, -10.0, 0.0, 3.0, 10.0, 17.0] {
            assert!(close(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-12));
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!(close(dbm_to_watts(0.0), 1e-3, 1e-12));
        assert!(close(dbm_to_watts(3.0), 2e-3, 1e-2));
    }

    #[test]
    fn negative_power_is_neg_infinity_dbm() {
        assert_eq!(watts_to_dbm(0.0), f64::NEG_INFINITY);
        assert_eq!(watts_to_dbm(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn db_linear_round_trip() {
        for db in [-20.0, -3.0, 0.0, 3.0, 10.0] {
            assert!(close(linear_to_db(db_to_linear(db)), db, 1e-12));
        }
    }

    #[test]
    fn photon_energy_at_1550nm() {
        // hc/λ at 1550 nm ≈ 1.28e-19 J (≈ 0.8 eV).
        let e = photon_energy(C_BAND_WAVELENGTH_M);
        assert!(close(e, 1.28e-19, 0.01), "got {e}");
    }

    #[test]
    fn fiber_delay_is_about_5us_per_km() {
        // n_g/c ≈ 4.9 µs per km.
        let d = fiber_delay_s(1.0);
        assert!(close(d, 4.9e-6, 0.01), "got {d}");
        assert_eq!(fiber_delay_ps(0.0), 0);
        assert!(fiber_delay_ps(1000.0) > 4_800_000_000);
    }

    #[test]
    fn enob_matches_quantizer_snr() {
        for bits in [4.0, 8.0, 12.0] {
            let snr = bits_to_snr_db(bits);
            assert!(close(snr_db_to_enob(snr), bits, 1e-12));
        }
        // Hopeless SNR clamps at zero bits rather than going negative.
        assert_eq!(snr_db_to_enob(-40.0), 0.0);
    }
}
