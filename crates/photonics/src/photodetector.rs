//! PIN photodetector.
//!
//! The summation device of the P1 primitive (Fig. 2a) and the receive-path
//! front end of every transponder (Fig. 3/4). Converts optical power to
//! photocurrent `I = R·P`, then adds the receiver noise triplet: shot
//! noise on the instantaneous current, thermal noise of the load, and
//! dark current. Square-law detection is what discards phase — tests
//! verify that phase-only modulation is invisible to a photodetector,
//! which is exactly why the P2 matcher needs interference *before* the
//! detector.

use crate::noise;
use crate::rng::SimRng;
use crate::signal::{AnalogWaveform, OpticalField};
use crate::units;

/// Configuration of a PIN photodetector front end.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PhotodetectorConfig {
    /// Responsivity, A/W (InGaAs at 1550 nm: ~0.9–1.1).
    pub responsivity_a_w: f64,
    /// Electrical 3-dB bandwidth, Hz (0 = track the sample rate).
    pub bandwidth_hz: f64,
    /// Load resistance for thermal noise, ohms.
    pub load_ohms: f64,
    /// Dark current, A.
    pub dark_current_a: f64,
    /// Receiver temperature, K.
    pub temperature_k: f64,
    /// Enable shot noise.
    pub shot_noise: bool,
    /// Enable thermal noise.
    pub thermal_noise: bool,
    /// Static power draw of the TIA stage, W (energy accounting).
    pub tia_power_w: f64,
}

impl PhotodetectorConfig {
    /// Noiseless detector for calibration and algebra tests.
    pub fn ideal() -> Self {
        PhotodetectorConfig {
            responsivity_a_w: 1.0,
            bandwidth_hz: 0.0,
            load_ohms: 50.0,
            dark_current_a: 0.0,
            temperature_k: units::ROOM_TEMP_K,
            shot_noise: false,
            thermal_noise: false,
            tia_power_w: 0.0,
        }
    }
}

impl Default for PhotodetectorConfig {
    fn default() -> Self {
        PhotodetectorConfig {
            responsivity_a_w: 1.0,
            bandwidth_hz: 40e9,
            load_ohms: 50.0,
            dark_current_a: 5e-9,
            temperature_k: units::ROOM_TEMP_K,
            shot_noise: true,
            thermal_noise: true,
            tia_power_w: 0.5,
        }
    }
}

/// A PIN photodetector with its receiver noise processes.
#[derive(Debug, Clone)]
pub struct Photodetector {
    pub config: PhotodetectorConfig,
    rng: SimRng,
    /// Seconds of signal detected so far (drives TIA energy accounting).
    pub seconds_active: f64,
}

impl Photodetector {
    pub fn new(config: PhotodetectorConfig, rng: SimRng) -> Self {
        Photodetector {
            config,
            rng,
            seconds_active: 0.0,
        }
    }

    /// Ideal noiseless detector.
    pub fn ideal() -> Self {
        Photodetector::new(PhotodetectorConfig::ideal(), SimRng::seed_from_u64(0))
    }

    /// Effective noise bandwidth for a block at `sample_rate_hz`.
    fn noise_bandwidth(&self, sample_rate_hz: f64) -> f64 {
        if self.config.bandwidth_hz > 0.0 {
            self.config.bandwidth_hz.min(sample_rate_hz / 2.0)
        } else {
            sample_rate_hz / 2.0
        }
    }

    /// Detect an optical field block, producing a photocurrent waveform
    /// (amps). Square-law: `i[n] = R·|e[n]|² + I_dark + noise`.
    pub fn detect(&mut self, input: &OpticalField) -> AnalogWaveform {
        let bw = self.noise_bandwidth(input.sample_rate_hz);
        let mut out = AnalogWaveform::zeros(input.len(), input.sample_rate_hz);
        let thermal_sigma = if self.config.thermal_noise {
            noise::thermal_noise_sigma_a(self.config.load_ohms, bw, self.config.temperature_k)
        } else {
            0.0
        };
        for (o, s) in out.samples.iter_mut().zip(input.samples.iter()) {
            let mut i = self.config.responsivity_a_w * s.norm_sqr() + self.config.dark_current_a;
            if self.config.shot_noise {
                let sigma = noise::shot_noise_sigma_a(i, bw);
                i += self.rng.normal(0.0, sigma);
            }
            if thermal_sigma > 0.0 {
                i += self.rng.normal(0.0, thermal_sigma);
            }
            *o = i;
        }
        if self.config.bandwidth_hz > 0.0 {
            out.lowpass(self.config.bandwidth_hz);
        }
        self.seconds_active += input.duration_s();
        out
    }

    /// Fused power-domain detection for the vectorized kernels: on
    /// entry, `samples` holds instantaneous optical powers (W); on
    /// return it holds photocurrent samples (A), band-limited exactly as
    /// [`Photodetector::detect`] would. No intermediate waveform is
    /// allocated.
    ///
    /// Shot and thermal noise are folded into a *single* Gaussian draw
    /// per sample — independent Gaussian variances add, so the
    /// distribution is identical to the scalar two-draw path — taken
    /// from the ziggurat sampler over this detector's own RNG. The draw
    /// stream therefore differs from [`Photodetector::detect`]'s while
    /// staying deterministic per seed (DESIGN.md §12).
    pub fn detect_power_block(&mut self, samples: &mut [f64], sample_rate_hz: f64) {
        let bw = self.noise_bandwidth(sample_rate_hz);
        let thermal_var = if self.config.thermal_noise {
            let sigma =
                noise::thermal_noise_sigma_a(self.config.load_ohms, bw, self.config.temperature_k);
            sigma * sigma
        } else {
            0.0
        };
        // 2q·bw: shot variance per amp of photocurrent.
        let shot_coeff = if self.config.shot_noise {
            let unit = noise::shot_noise_sigma_a(1.0, bw);
            unit * unit
        } else {
            0.0
        };
        let noisy = shot_coeff > 0.0 || thermal_var > 0.0;
        for s in samples.iter_mut() {
            let mut i = self.config.responsivity_a_w * *s + self.config.dark_current_a;
            if noisy {
                let var = shot_coeff * i.abs() + thermal_var;
                if var > 0.0 {
                    i += var.sqrt() * crate::simd::gauss::standard_normal(&mut self.rng);
                }
            }
            *s = i;
        }
        if self.config.bandwidth_hz > 0.0 && self.config.bandwidth_hz < sample_rate_hz / 2.0 {
            // Single-pole IIR, mirroring `AnalogWaveform::lowpass` on the
            // non-passthrough branch.
            let dt = 1.0 / sample_rate_hz;
            let rc = 1.0 / (std::f64::consts::TAU * self.config.bandwidth_hz);
            let alpha = dt / (rc + dt);
            let mut y = 0.0;
            for s in samples.iter_mut() {
                y += alpha * (*s - y);
                *s = y;
            }
        }
        if sample_rate_hz > 0.0 {
            self.seconds_active += samples.len() as f64 / sample_rate_hz;
        }
    }

    /// Mean photocurrent that a CW input of `power_w` would produce, A.
    pub fn expected_current_a(&self, power_w: f64) -> f64 {
        self.config.responsivity_a_w * power_w + self.config.dark_current_a
    }

    /// Receiver SNR (dB) for a CW optical input of `power_w` over the
    /// configured bandwidth — used by precision analysis to predict the
    /// effective bit width of P1 results.
    pub fn snr_db(&self, power_w: f64, sample_rate_hz: f64) -> f64 {
        let bw = self.noise_bandwidth(sample_rate_hz);
        let i_sig = self.config.responsivity_a_w * power_w;
        let mut noise_var = 0.0;
        if self.config.shot_noise {
            noise_var += noise::shot_noise_sigma_a(i_sig + self.config.dark_current_a, bw).powi(2);
        }
        if self.config.thermal_noise {
            noise_var +=
                noise::thermal_noise_sigma_a(self.config.load_ohms, bw, self.config.temperature_k)
                    .powi(2);
        }
        noise::snr_db(i_sig * i_sig, noise_var)
    }

    /// TIA energy consumed so far, J.
    pub fn energy_consumed_j(&self) -> f64 {
        self.seconds_active * self.config.tia_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    const RATE: f64 = 10e9;
    const WL: f64 = units::C_BAND_WAVELENGTH_M;

    #[test]
    fn ideal_detection_is_linear_in_power() {
        let mut pd = Photodetector::ideal();
        let f1 = OpticalField::cw(8, 1e-3, RATE, WL);
        let f2 = OpticalField::cw(8, 2e-3, RATE, WL);
        let i1 = pd.detect(&f1).mean();
        let i2 = pd.detect(&f2).mean();
        assert!((i1 - 1e-3).abs() < 1e-15);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_law_discards_phase() {
        // Phase-modulated light at constant power is indistinguishable
        // from unmodulated light — the motivation for interference-based
        // pattern matching (Fig. 2b).
        let mut pd = Photodetector::ideal();
        let mut f = OpticalField::cw(16, 1e-3, RATE, WL);
        for (i, s) in f.samples.iter_mut().enumerate() {
            *s = s.rotate(i as f64 * 0.7);
        }
        let out = pd.detect(&f);
        for &i in &out.samples {
            assert!((i - 1e-3).abs() < 1e-15);
        }
    }

    #[test]
    fn interference_is_visible_after_combining() {
        let mut pd = Photodetector::ideal();
        let a = Complex::new(1e-3f64.sqrt(), 0.0);
        let constructive = OpticalField {
            samples: vec![a + a],
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let destructive = OpticalField {
            samples: vec![a - a],
            sample_rate_hz: RATE,
            wavelength_m: WL,
        };
        let ic = pd.detect(&constructive).samples[0];
        let id = pd.detect(&destructive).samples[0];
        assert!((ic - 4e-3).abs() < 1e-15);
        assert!(id < 1e-15);
    }

    #[test]
    fn dark_current_adds_offset() {
        let mut pd = Photodetector::new(
            PhotodetectorConfig {
                dark_current_a: 1e-6,
                ..PhotodetectorConfig::ideal()
            },
            SimRng::seed_from_u64(0),
        );
        let f = OpticalField::dark(4, RATE, WL);
        let out = pd.detect(&f);
        for &i in &out.samples {
            assert!((i - 1e-6).abs() < 1e-18);
        }
    }

    #[test]
    fn shot_noise_variance_tracks_theory() {
        let mut pd = Photodetector::new(
            PhotodetectorConfig {
                shot_noise: true,
                thermal_noise: false,
                bandwidth_hz: 0.0,
                ..PhotodetectorConfig::ideal()
            },
            SimRng::seed_from_u64(1),
        );
        let f = OpticalField::cw(40_000, 1e-3, RATE, WL);
        let out = pd.detect(&f);
        let mean = out.mean();
        let var = out.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / out.len() as f64;
        let expect = noise::shot_noise_sigma_a(1e-3, RATE / 2.0);
        assert!(
            (var.sqrt() - expect).abs() / expect < 0.05,
            "sigma {} expect {expect}",
            var.sqrt()
        );
    }

    #[test]
    fn thermal_noise_dominates_at_low_power() {
        let cfg = PhotodetectorConfig {
            shot_noise: true,
            thermal_noise: true,
            bandwidth_hz: 0.0,
            ..PhotodetectorConfig::ideal()
        };
        let pd = Photodetector::new(cfg, SimRng::seed_from_u64(2));
        // At -40 dBm the thermal term should dwarf shot noise.
        let p = units::dbm_to_watts(-40.0);
        let shot = noise::shot_noise_sigma_a(p, RATE / 2.0);
        let thermal = noise::thermal_noise_sigma_a(50.0, RATE / 2.0, units::ROOM_TEMP_K);
        assert!(thermal > 5.0 * shot);
        // And the predicted SNR should be finite and modest.
        let snr = pd.snr_db(p, RATE);
        assert!(snr < 30.0, "snr {snr}");
    }

    #[test]
    fn snr_improves_with_power() {
        let pd = Photodetector::new(PhotodetectorConfig::default(), SimRng::seed_from_u64(3));
        let lo = pd.snr_db(units::dbm_to_watts(-30.0), RATE);
        let hi = pd.snr_db(units::dbm_to_watts(0.0), RATE);
        assert!(hi > lo + 20.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn energy_accounting_accumulates() {
        let mut pd = Photodetector::new(
            PhotodetectorConfig {
                tia_power_w: 0.5,
                ..PhotodetectorConfig::ideal()
            },
            SimRng::seed_from_u64(0),
        );
        let f = OpticalField::cw(10_000, 1e-3, RATE, WL);
        pd.detect(&f);
        let expect = 0.5 * 10_000.0 / RATE;
        assert!((pd.energy_consumed_j() - expect).abs() < 1e-12);
    }

    #[test]
    fn noiseless_power_block_matches_detect_bit_exactly() {
        // With noise off, the fused power-domain path is algebraically
        // identical to the scalar path (same adds, same IIR) — require
        // bit equality, band-limited case included.
        for bw in [0.0, 3e9, 40e9] {
            let cfg = PhotodetectorConfig {
                bandwidth_hz: bw,
                dark_current_a: 5e-9,
                ..PhotodetectorConfig::ideal()
            };
            let mut aos = Photodetector::new(cfg.clone(), SimRng::seed_from_u64(4));
            let mut soa = Photodetector::new(cfg, SimRng::seed_from_u64(4));
            let mut f = OpticalField::cw(32, 1e-3, RATE, WL);
            for (i, s) in f.samples.iter_mut().enumerate() {
                *s = s.scale(((i % 7) as f64 + 1.0) / 7.0);
            }
            let want = aos.detect(&f);
            let mut powers: Vec<f64> = f.samples.iter().map(|s| s.norm_sqr()).collect();
            soa.detect_power_block(&mut powers, RATE);
            for (k, &p) in powers.iter().enumerate().take(32) {
                assert_eq!(want.samples[k].to_bits(), p.to_bits(), "bw {bw} sample {k}");
            }
            assert!((aos.seconds_active - soa.seconds_active).abs() < 1e-24);
        }
    }

    #[test]
    fn combined_noise_draw_has_the_right_variance() {
        // One fused Gaussian draw per sample must carry the *sum* of the
        // shot and thermal variances.
        let cfg = PhotodetectorConfig {
            shot_noise: true,
            thermal_noise: true,
            bandwidth_hz: 0.0,
            ..PhotodetectorConfig::ideal()
        };
        let mut pd = Photodetector::new(cfg, SimRng::seed_from_u64(5));
        let p = 1e-3;
        let mut samples = vec![p; 40_000];
        pd.detect_power_block(&mut samples, RATE);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let shot = noise::shot_noise_sigma_a(p, RATE / 2.0);
        let thermal = noise::thermal_noise_sigma_a(50.0, RATE / 2.0, units::ROOM_TEMP_K);
        let expect = (shot * shot + thermal * thermal).sqrt();
        assert!((mean - p).abs() < 5.0 * expect / 200.0, "mean {mean}");
        assert!(
            (var.sqrt() - expect).abs() / expect < 0.05,
            "sigma {} expect {expect}",
            var.sqrt()
        );
    }

    #[test]
    fn detection_is_deterministic_per_seed() {
        let cfg = PhotodetectorConfig::default();
        let mut a = Photodetector::new(cfg.clone(), SimRng::seed_from_u64(9));
        let mut b = Photodetector::new(cfg, SimRng::seed_from_u64(9));
        let f = OpticalField::cw(64, 1e-3, RATE, WL);
        assert_eq!(a.detect(&f).samples, b.detect(&f).samples);
    }
}
