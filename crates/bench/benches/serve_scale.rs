//! Bench gate: ingest front-end determinism, epoch-parallel scaling,
//! and throughput-per-core regression.
//!
//! Three checks, run as a `harness = false` binary so it can fail CI
//! with a nonzero exit:
//!
//! 1. **Determinism** — the mini-E21 report at 4 workers must be
//!    byte-identical to the 1-worker bytes (always checked; threads
//!    exist even when cores do not).
//! 2. **Epoch-parallel scaling** — on ≥ 4 cores, an 8-shard ingest run
//!    must finish at least [`MIN_SPEEDUP`]× faster on 4 workers than on
//!    1 (best of [`TIMING_REPS`] trials each); shard epochs are
//!    independent, so this measures the ofpc-par scatter over the real
//!    admission → batch → dispatch loop. Skipped with a notice on
//!    narrower machines.
//! 3. **Throughput-per-core regression** — sequential parsed-requests
//!    per wall-second must stay within [`MAX_REGRESSION`] of the
//!    `serve_scale_krps_per_core` figure pinned in
//!    `BENCH_BASELINE.json`. The file is shared with the other gates,
//!    so this one reads/writes it as a value tree preserving keys it
//!    does not own, with its own core stamp (`serve_scale_cores`). A
//!    missing file, missing key, core mismatch, or
//!    `OFPC_BENCH_RECORD=1` re-records instead of failing.

use ofpc_bench::ingest::{e21_mini, mini_config, run_e21};
use ofpc_ingest::IngestConfig;
use ofpc_par::WorkerPool;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Gate: 4 workers must beat 1 worker by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;
/// Gate: throughput may drop at most this factor below the baseline
/// (measured ≥ baseline / MAX_REGRESSION).
const MAX_REGRESSION: f64 = 1.50;
/// Trials per timing; the best (max throughput / min time) is reported.
const TIMING_REPS: usize = 5;
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn best_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The timing workload: the mini class mix spread over 8 shards with a
/// longer horizon, so per-epoch shard work dwarfs the sequential
/// rebalance barrier.
fn scaling_config() -> IngestConfig {
    let mut c = mini_config();
    c.shards = 8;
    c.epochs = 2;
    c.epoch_ps = 30_000_000_000;
    for class in &mut c.classes {
        class.population *= 4;
    }
    // 8 shards need >= 8 slots (split_slots' one-slot-per-shard floor).
    c.sites[0].slots = 5;
    c.sites[1].slots = 3;
    c
}

fn check_determinism() {
    let reference = e21_mini(&WorkerPool::new(1));
    let wide = e21_mini(&WorkerPool::new(4));
    assert!(
        reference == wide,
        "serve_scale: 4-worker mini-E21 report diverged from the 1-worker bytes"
    );
    println!(
        "serve_scale: determinism OK (1-worker and 4-worker reports byte-identical, {} bytes)",
        reference.len()
    );
}

fn check_parallel_speedup() {
    if cores() < 4 {
        println!(
            "serve_scale: speedup check skipped ({} core(s) < 4); \
             determinism and throughput gates still apply",
            cores()
        );
        return;
    }
    let time_run = |workers: usize| {
        let pool = WorkerPool::new(workers);
        best_time(TIMING_REPS, || {
            black_box(run_e21(scaling_config(), &pool));
        })
    };
    let t1 = time_run(1);
    let t4 = time_run(4);
    let speedup = t1 / t4;
    println!(
        "serve_scale: 8-shard ingest run {:.1} ms @1w, {:.1} ms @4w ({speedup:.2}×, gate {MIN_SPEEDUP:.1}×)",
        t1 * 1e3,
        t4 * 1e3
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "serve_scale: epoch-parallel speedup {speedup:.2}× below the {MIN_SPEEDUP:.1}× gate"
    );
}

fn get_num(map: &[(String, Value)], key: &str) -> Option<f64> {
    map.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

fn set_key(map: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match map.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => map.push((key.to_string(), value)),
    }
}

/// Sequential front-end throughput: parsed requests per wall-second on
/// one worker — the per-core figure the baseline pins.
fn throughput_krps_per_core() -> f64 {
    let pool = WorkerPool::sequential();
    let parsed = run_e21(scaling_config(), &pool).parsed;
    let secs = best_time(TIMING_REPS, || {
        black_box(run_e21(scaling_config(), &pool));
    });
    parsed as f64 / secs / 1e3
}

fn check_throughput_regression() {
    let measured_krps = throughput_krps_per_core();
    let measured_cores = cores();

    let mut map: Vec<(String, Value)> = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Map(m)) => m,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    let record_reason = if std::env::var_os("OFPC_BENCH_RECORD").is_some() {
        Some("OFPC_BENCH_RECORD set".to_string())
    } else {
        match (
            get_num(&map, "serve_scale_cores"),
            get_num(&map, "serve_scale_krps_per_core"),
        ) {
            (Some(c), Some(want)) if c as usize == measured_cores => {
                println!(
                    "serve_scale: throughput {measured_krps:.0} kreq/s/core vs baseline \
                     {want:.0} (gate {:.0})",
                    want / MAX_REGRESSION
                );
                assert!(
                    measured_krps >= want / MAX_REGRESSION,
                    "serve_scale: throughput regressed: {measured_krps:.0} kreq/s/core vs \
                     baseline {want:.0} (÷{MAX_REGRESSION:.1} allowed); if intentional, \
                     re-pin with OFPC_BENCH_RECORD=1"
                );
                None
            }
            (Some(c), Some(_)) => Some(format!(
                "baseline is from a {}-core machine, this one has {measured_cores}",
                c as usize
            )),
            _ => Some("no serve_scale baseline keys".to_string()),
        }
    };

    if let Some(reason) = record_reason {
        set_key(
            &mut map,
            "serve_scale_cores",
            Value::UInt(measured_cores as u64),
        );
        set_key(
            &mut map,
            "serve_scale_krps_per_core",
            Value::Float(measured_krps),
        );
        let json = serde_json::to_string_pretty(&Value::Map(map)).expect("serialize baseline");
        std::fs::write(BASELINE_PATH, json + "\n").expect("write BENCH_BASELINE.json");
        println!(
            "serve_scale: recorded new baseline ({reason}): {measured_krps:.0} kreq/s/core on \
             {measured_cores} core(s)"
        );
    }
}

fn main() {
    check_determinism();
    check_parallel_speedup();
    check_throughput_regression();
    println!("serve_scale: all gates passed");
}
