//! Criterion bench: controller allocation solvers on a mid-size WAN —
//! the §5 scalability story in wall-clock terms.

use criterion::{criterion_group, criterion_main, Criterion};
use ofpc_controller::demand::{Demand, TaskDag};
use ofpc_controller::greedy::solve_greedy;
use ofpc_controller::ilp::solve_exact;
use ofpc_controller::lp::{round_lp, solve_lp};
use ofpc_controller::options::{enumerate_options, ProblemInstance};
use ofpc_engine::Primitive;
use ofpc_net::{NodeId, Topology};
use ofpc_photonics::SimRng;
use std::hint::black_box;

fn build_instance(nodes: usize, demands: usize) -> ProblemInstance {
    let mut rng = SimRng::seed_from_u64(42);
    let topo = Topology::random_geometric(nodes, 2000.0, 700.0, &mut rng);
    let slots: Vec<usize> = (0..nodes).map(|i| if i % 3 == 0 { 2 } else { 0 }).collect();
    let prims = [
        Primitive::VectorDotProduct,
        Primitive::PatternMatching,
        Primitive::NonlinearFunction,
    ];
    let demands: Vec<Demand> = (0..demands)
        .map(|i| {
            let src = NodeId(rng.below(nodes) as u32);
            let mut dst = src;
            while dst == src {
                dst = NodeId(rng.below(nodes) as u32);
            }
            Demand::new(i as u32, src, dst, TaskDag::single(prims[rng.below(3)]))
        })
        .collect();
    enumerate_options(&topo, &slots, &demands, 8)
}

fn bench_solvers(c: &mut Criterion) {
    let instance = build_instance(16, 12);
    c.bench_function("solver_exact_16n_12d", |b| {
        b.iter(|| black_box(solve_exact(black_box(&instance), 500_000)));
    });
    c.bench_function("solver_lp_rounding_16n_12d", |b| {
        b.iter(|| {
            let lp = solve_lp(black_box(&instance));
            let mut rng = SimRng::seed_from_u64(1);
            black_box(round_lp(&instance, &lp, 10, &mut rng))
        });
    });
    c.bench_function("solver_greedy_16n_12d", |b| {
        b.iter(|| black_box(solve_greedy(black_box(&instance))));
    });
    let big = build_instance(48, 40);
    c.bench_function("solver_lp_rounding_48n_40d", |b| {
        b.iter(|| {
            let lp = solve_lp(black_box(&big));
            let mut rng = SimRng::seed_from_u64(1);
            black_box(round_lp(&big, &lp, 10, &mut rng))
        });
    });
    c.bench_function("solver_greedy_48n_40d", |b| {
        b.iter(|| black_box(solve_greedy(black_box(&big))));
    });
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
